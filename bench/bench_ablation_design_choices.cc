// Ablations for the design choices called out in DESIGN.md §4:
//   (1) SRK's greedy pick rule vs a random valid pick;
//   (2) the cost of OSRK's coherence constraint (online key size vs a
//       from-scratch SRK over the same stream);
//   (3) sliding-window key-resolution policies (last-wins vs union-key);
//   (4) Xreason's deletion order (widest-domain-first vs natural order).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/cce.h"
#include "core/conformity.h"
#include "core/osrk.h"
#include "core/srk.h"
#include "data/drift.h"
#include "data/generators.h"
#include "explain/xreason.h"
#include "ml/gbdt.h"
#include "tests/test_util.h"

namespace cce::bench {
namespace {

// A random-pick variant of SRK: picks any feature that removes at least one
// violator, instead of the greedy minimum. Implemented here (not in the
// library) because it exists only for this ablation.
FeatureSet RandomPickKey(const cce::Context& context, size_t target,
                         cce::Rng* rng) {
  using namespace cce;
  const Instance& x0 = context.instance(target);
  Label y0 = context.label(target);
  std::vector<size_t> violators;
  for (size_t row = 0; row < context.size(); ++row) {
    if (context.label(row) != y0) violators.push_back(row);
  }
  FeatureSet key;
  std::vector<bool> used(context.num_features(), false);
  while (!violators.empty()) {
    std::vector<FeatureId> useful;
    for (FeatureId f = 0; f < context.num_features(); ++f) {
      if (used[f]) continue;
      for (size_t row : violators) {
        if (context.value(row, f) != x0[f]) {
          useful.push_back(f);
          break;
        }
      }
    }
    if (useful.empty()) break;
    FeatureId pick = useful[rng->Uniform(useful.size())];
    used[pick] = true;
    FeatureSetInsert(&key, pick);
    std::vector<size_t> surviving;
    for (size_t row : violators) {
      if (context.value(row, pick) == x0[pick]) surviving.push_back(row);
    }
    violators = std::move(surviving);
  }
  return key;
}

void AblationGreedyVsRandom() {
  using namespace cce;
  std::printf("\n(1) SRK greedy pick vs random valid pick — avg key size\n");
  PrintHeader("dataset", {"greedy", "random"});
  for (const std::string& dataset : data::GeneralDatasetNames()) {
    WorkbenchOptions options;
    options.explain_count = 25;
    if (dataset == "Adult") options.rows_override = 6000;
    Workbench bench = MakeWorkbench(dataset, options);
    Rng rng(5);
    double greedy_total = 0.0;
    double random_total = 0.0;
    for (size_t row : bench.explain_rows) {
      auto greedy = Srk::Explain(bench.context, row, {});
      CCE_CHECK_OK(greedy.status());
      greedy_total += static_cast<double>(greedy->key.size());
      random_total += static_cast<double>(
          RandomPickKey(bench.context, row, &rng).size());
    }
    double n = static_cast<double>(bench.explain_rows.size());
    PrintRow(dataset, {greedy_total / n, random_total / n}, "%12.2f");
  }
}

void AblationCoherenceCost() {
  using namespace cce;
  std::printf(
      "\n(2) Cost of online coherence — OSRK final key vs batch SRK over "
      "the same stream\n");
  PrintHeader("dataset", {"OSRK", "SRK"});
  for (const std::string& dataset : data::GeneralDatasetNames()) {
    WorkbenchOptions options;
    options.explain_count = 10;
    if (dataset == "Adult") options.rows_override = 6000;
    Workbench bench = MakeWorkbench(dataset, options);
    double osrk_total = 0.0;
    double srk_total = 0.0;
    for (size_t i = 0; i < bench.explain_rows.size(); ++i) {
      size_t target = bench.explain_rows[i];
      Osrk::Options osrk_options;
      osrk_options.seed = i;
      auto osrk = Osrk::Create(bench.schema,
                               bench.context.instance(target),
                               bench.context.label(target), osrk_options);
      CCE_CHECK_OK(osrk.status());
      for (size_t row = 0; row < bench.context.size(); ++row) {
        if (row == target) continue;
        (*osrk)->Observe(bench.context.instance(row),
                         bench.context.label(row));
      }
      osrk_total += static_cast<double>((*osrk)->key().size());
      auto batch = Srk::Explain(bench.context, target, {});
      CCE_CHECK_OK(batch.status());
      srk_total += static_cast<double>(batch->key.size());
    }
    double n = static_cast<double>(bench.explain_rows.size());
    PrintRow(dataset, {osrk_total / n, srk_total / n}, "%12.2f");
  }
}

void AblationWindowPolicies() {
  using namespace cce;
  std::printf(
      "\n(3) Sliding-window resolution policy under drift — conformity on "
      "the final phase / avg key size\n");
  PrintHeader("policy", {"conformity", "key size"});
  Result<Dataset> full = data::GenerateByName("Compas", 11, 0);
  CCE_CHECK_OK(full.status());
  std::vector<Dataset> phases = data::SplitPhases(*full, 3);
  std::vector<Context> contexts;
  for (Dataset& phase : phases) {
    Rng rng(11);
    auto [train, inference] = phase.Split(0.7, &rng);
    ml::Gbdt::Options gbdt_options;
    gbdt_options.num_trees = 40;
    auto model = ml::Gbdt::Train(train, gbdt_options);
    CCE_CHECK_OK(model.status());
    contexts.push_back((*model)->MakeContext(inference));
  }
  for (auto [policy, name] :
       {std::pair{KeyResolutionPolicy::kFirstWins, "first-wins"},
        std::pair{KeyResolutionPolicy::kLastWins, "last-wins"},
        std::pair{KeyResolutionPolicy::kUnionKey, "union-key"}}) {
    SlidingWindowExplainer::Options options;
    options.window_size = 128;
    options.step = 32;
    options.policy = policy;
    auto window =
        SlidingWindowExplainer::Create(full->schema_ptr(), options);
    CCE_CHECK_OK(window.status());
    Rng pick_rng(3);
    // Explain a panel of final-phase instances once per phase, so the
    // policies actually face multiple overlapping contexts.
    const Context& last = contexts.back();
    std::vector<size_t> panel =
        pick_rng.SampleWithoutReplacement(last.size(), 12);
    std::vector<ExplainedInstance> explained;
    for (const Context& context : contexts) {
      for (size_t row = 0; row < context.size(); ++row) {
        (*window)->Observe(context.instance(row), context.label(row));
      }
      explained.clear();
      for (size_t row : panel) {
        auto key =
            (*window)->Explain(last.instance(row), last.label(row));
        CCE_CHECK_OK(key.status());
        explained.push_back(
            {last.instance(row), last.label(row), key->key});
      }
    }
    PrintRow(name,
             {Conformity(contexts.back(), explained),
              AverageSuccinctness(explained)},
             "%12.2f");
  }
}

void AblationXreasonOrder() {
  using namespace cce;
  std::printf(
      "\n(4) Xreason deletion order — avg formal explanation size "
      "(widest-domain-first is the library default)\n");
  PrintHeader("dataset", {"default", "natural"});
  for (const std::string& dataset : {std::string("Loan"),
                                     std::string("Compas")}) {
    WorkbenchOptions options;
    options.explain_count = 8;
    Workbench bench = MakeWorkbench(dataset, options);
    explain::Xreason xreason(bench.model.get(), bench.schema, {});
    double default_total = 0.0;
    double natural_total = 0.0;
    for (size_t row : bench.explain_rows) {
      const Instance& x = bench.context.instance(row);
      auto key = xreason.ExplainFeatures(x, 0);
      CCE_CHECK_OK(key.status());
      default_total += static_cast<double>(key->size());
      // Natural-order deletion, using the public oracle.
      FeatureSet explanation = bench.model->UsedFeatures();
      for (FeatureId f : bench.model->UsedFeatures()) {
        FeatureSet candidate;
        for (FeatureId g : explanation) {
          if (g != f) candidate.push_back(g);
        }
        if (xreason.Entails(x, candidate)) {
          explanation = std::move(candidate);
        }
      }
      natural_total += static_cast<double>(explanation.size());
    }
    double n = static_cast<double>(bench.explain_rows.size());
    PrintRow(dataset, {default_total / n, natural_total / n}, "%12.2f");
  }
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Ablations of DESIGN.md §4 design choices",
              "(repository-specific; no paper counterpart)");
  AblationGreedyVsRandom();
  AblationCoherenceCost();
  AblationWindowPolicies();
  AblationXreasonOrder();
  return 0;
}
