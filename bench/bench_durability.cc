// Google-benchmark coverage for the durable-context subsystem: raw WAL
// append throughput under the three sync policies (every record, batched,
// never), proxy Record overhead with durability on vs off, CRC32C
// throughput, and recovery time as a function of log length (up to the
// 100k-record log called out in the design).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "common/crc32c.h"
#include "common/logging.h"
#include "io/context_wal.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::io {
namespace {

std::string BenchPath(const std::string& name) {
  return "/tmp/cce_bench_durability." + name;
}

Instance BenchInstance(size_t i) {
  return {static_cast<ValueId>(i % 7), static_cast<ValueId>(i % 5),
          static_cast<ValueId>(i % 3), static_cast<ValueId>(i % 11),
          static_cast<ValueId>(i % 13)};
}

/// Append throughput under each sync policy. arg == 0 means "never sync";
/// the gap between arg=1 and arg=0 is the price of per-record durability.
void BM_WalAppend_SyncEvery(benchmark::State& state) {
  const std::string path =
      BenchPath("append." + std::to_string(state.range(0)) + ".wal");
  std::remove(path.c_str());
  ContextWal::Options options;
  options.sync_every = static_cast<size_t>(state.range(0));
  auto wal = ContextWal::Open(path, options, nullptr, nullptr);
  CCE_CHECK_OK(wal.status());
  size_t i = 0;
  for (auto _ : state) {
    CCE_CHECK_OK(
        (*wal)->Append(BenchInstance(i), static_cast<Label>(i % 3), i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["fsyncs"] = static_cast<double>((*wal)->fsyncs());
  wal->reset();
  std::remove(path.c_str());
}
BENCHMARK(BM_WalAppend_SyncEvery)->Arg(1)->Arg(64)->Arg(0);

/// Recovery (salvage scan + replay) time as the log grows; Arg is the
/// number of records in the log.
void BM_WalRecovery_LogLength(benchmark::State& state) {
  const std::string path =
      BenchPath("recover." + std::to_string(state.range(0)) + ".wal");
  std::remove(path.c_str());
  const size_t records = static_cast<size_t>(state.range(0));
  {
    ContextWal::Options options;
    options.sync_every = 0;  // build the fixture fast
    auto wal = ContextWal::Open(path, options, nullptr, nullptr);
    CCE_CHECK_OK(wal.status());
    for (size_t i = 0; i < records; ++i) {
      CCE_CHECK_OK(
          (*wal)->Append(BenchInstance(i), static_cast<Label>(i % 3), i));
    }
    CCE_CHECK_OK((*wal)->Sync());
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    ContextWal::RecoveryStats stats;
    auto wal = ContextWal::Open(
        path, {},
        [&replayed](uint64_t, const Instance&, Label) {
          ++replayed;
          return Status::Ok();
        },
        &stats);
    CCE_CHECK_OK(wal.status());
    CCE_CHECK(stats.records_recovered == records);
  }
  benchmark::DoNotOptimize(replayed);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records));
  std::remove(path.c_str());
}
BENCHMARK(BM_WalRecovery_LogLength)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// End-to-end proxy Record cost: durability off vs WAL with each sync
/// policy (arg: -1 = durability disabled, otherwise sync_every).
void BM_ProxyRecord_Durability(benchmark::State& state) {
  Dataset data = cce::testing::RandomContext(4096, 8, 5, 42);
  serving::ExplainableProxy::Options options;
  options.monitor_drift = false;
  const std::string dir =
      BenchPath("proxy." + std::to_string(state.range(0)));
  if (state.range(0) >= 0) {
    std::remove((dir + "/context.wal").c_str());
    std::remove((dir + "/context.snapshot").c_str());
    options.durability.dir = dir;
    options.durability.sync_every = static_cast<size_t>(state.range(0));
    // Keep compaction out of the loop so the numbers isolate Append cost.
    options.durability.compact_threshold_bytes = 1ull << 40;
  }
  auto proxy = serving::ExplainableProxy::Create(data.schema_ptr(), nullptr,
                                                 options);
  CCE_CHECK_OK(proxy.status());
  size_t row = 0;
  for (auto _ : state) {
    CCE_CHECK_OK((*proxy)->Record(data.instance(row), data.label(row)));
    row = row + 1 < data.size() ? row + 1 : 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.range(0) >= 0) {
    std::remove((dir + "/context.wal").c_str());
    std::remove((dir + "/context.snapshot").c_str());
  }
}
BENCHMARK(BM_ProxyRecord_Durability)->Arg(-1)->Arg(1)->Arg(64)->Arg(0);

/// Sharded Record throughput under concurrent writers: four threads drive
/// one durable proxy while Arg sweeps the shard count. With one shard all
/// appends and fsyncs serialize behind a single WAL lock; with N shards
/// records routed to different shards commit in parallel and only the
/// global sequence counter is shared.
void BM_ProxyRecord_Shards(benchmark::State& state) {
  static std::unique_ptr<serving::ExplainableProxy> proxy;
  static std::unique_ptr<Dataset> shard_data;
  const std::string dir =
      BenchPath("shards." + std::to_string(state.range(0)));
  auto clean_dir = [&dir] {
    for (size_t shard = 0; shard < 16; ++shard) {
      const std::string stem =
          shard == 0 ? "context" : "context." + std::to_string(shard);
      std::remove((dir + "/" + stem + ".wal").c_str());
      std::remove((dir + "/" + stem + ".snapshot").c_str());
    }
  };
  if (state.thread_index() == 0) {
    shard_data =
        std::make_unique<Dataset>(cce::testing::RandomContext(4096, 8, 5, 42));
    serving::ExplainableProxy::Options options;
    options.monitor_drift = false;
    options.shards = static_cast<size_t>(state.range(0));
    options.context_capacity = 1024;
    clean_dir();
    options.durability.dir = dir;
    options.durability.sync_every = 1;  // the expensive, durable rung
    // Keep compaction out of the loop so the numbers isolate Append cost.
    options.durability.compact_threshold_bytes = 1ull << 40;
    auto created = serving::ExplainableProxy::Create(
        shard_data->schema_ptr(), nullptr, options);
    CCE_CHECK_OK(created.status());
    proxy = std::move(created).value();
  }
  size_t row = static_cast<size_t>(state.thread_index()) * 997;
  for (auto _ : state) {
    row = row + 1 < shard_data->size() ? row + 1 : 0;
    CCE_CHECK_OK(proxy->Record(shard_data->instance(row),
                               shard_data->label(row)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    proxy.reset();
    shard_data.reset();
    clean_dir();
  }
}
BENCHMARK(BM_ProxyRecord_Shards)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Threads(4);

void BM_Crc32c_Throughput(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), '\x5a');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 131 + 17);
  }
  for (auto _ : state) {
    uint32_t crc = crc32c::Value(data.data(), data.size());
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32c_Throughput)->Arg(64)->Arg(4096)->Arg(1 << 20);

}  // namespace
}  // namespace cce::io

BENCHMARK_MAIN();
