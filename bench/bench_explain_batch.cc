// Amortized batch Explain benchmark (BENCH_explain_batch.json): the
// PR 9 20x open-loop flood replayed with the explanation cache disabled,
// so every OK response is a LIVE key from a full search — and the only
// thing that changes between the two configurations is the server's
// scalar-Explain micro-batching knob:
//
//   per_request — max_explain_batch = 1: every queued EXPLAIN_REQUEST
//   runs alone (one admission charge, one bitmap build per key), the
//   pre-batching behaviour.
//
//   batched — max_explain_batch = 16 (the default): workers drain the
//   queue in groups and answer each group with one shared-build
//   Srk::ExplainBatch — one admission charge and one bitmap build per
//   GROUP, so queue depth under the flood becomes batch throughput
//   instead of sheds. Keys are bit-identical to the serial path
//   (tests/batch_equivalence_test.cc), so the speedup is free.
//
// The acceptance criterion is the ratio: batched live keys/sec must be
// >= 3x per-request live keys/sec under the same flood. The amortization
// factor (batch items per shared-build execution, from the proxy's
// health counters) is reported alongside so the mechanism — not just the
// effect — is visible in the JSON.
//
// Plain main (not google-benchmark): the in-process loadgen owns the
// schedule. Prints BENCH-schema JSON on stdout; scripts/
// bench_explain_batch.sh redirects it into BENCH_explain_batch.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/model.h"
#include "net/loadgen/loadgen.h"
#include "net/server.h"
#include "serving/proxy.h"
#include "serving/serving_group.h"
#include "tests/test_util.h"

namespace cce::net {
namespace {

constexpr size_t kContextRows = 512;
constexpr size_t kPoolSize = 32;
constexpr int kRuns = 3;
constexpr auto kRunLength = std::chrono::milliseconds(2000);
constexpr auto kWarmupLength = std::chrono::milliseconds(500);
constexpr double kProvisionedExplainRps = 500.0;
constexpr double kFloodMultiplier = 20.0;

class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return x.empty() ? 0 : x[0] % 2;
  }
};

/// The bench_net flood stack with the explanation cache defeated: wire
/// admission provisioned to a known Explain rate, proxy admission open
/// (refill 0 = unlimited) and `explain_cache.capacity = 0`, so an OK
/// response can only mean a full search ran — cached serves cannot
/// inflate either side of the ratio.
struct Stack {
  Dataset data;
  ParityModel model;
  std::unique_ptr<serving::ExplainableProxy> proxy;
  std::unique_ptr<serving::ServingGroup> group;
  std::unique_ptr<NetServer> server;

  explicit Stack(size_t max_explain_batch)
      : data(cce::testing::RandomContext(kContextRows, 4, 3, 29,
                                         /*noise=*/0.0)) {
    serving::ExplainableProxy::Options proxy_options;
    proxy_options.monitor_drift = false;
    proxy_options.overload.enabled = true;
    proxy_options.overload.explain_bucket.refill_per_sec = 0.0;
    proxy_options.explain_cache.capacity = 0;
    auto proxy_or = serving::ExplainableProxy::Create(data.schema_ptr(),
                                                      &model, proxy_options);
    CCE_CHECK_OK(proxy_or.status());
    proxy = std::move(proxy_or).value();
    for (size_t i = 0; i < data.size(); ++i) {
      CCE_CHECK_OK(
          proxy->Record(data.instance(i), model.Predict(data.instance(i))));
    }
    serving::ServingGroup::Options group_options;
    group_options.policy = serving::RoutePolicy::kLeaderOnly;
    auto group_or =
        serving::ServingGroup::Create(proxy.get(), {}, group_options);
    CCE_CHECK_OK(group_or.status());
    group = std::move(group_or).value();
    NetServer::Options options;
    options.port = 0;
    options.worker_threads = 2;
    options.max_explain_batch = max_explain_batch;
    // Provision the wire's Explain budget explicitly so the flood factor
    // is known: refill 500/s with a 50-token burst. With batching on,
    // one admission charge covers a whole drained group — that is the
    // amortization under test.
    options.overload.explain_bucket.refill_per_sec = kProvisionedExplainRps;
    options.overload.explain_bucket.burst = 50.0;
    auto server_or = NetServer::Create(group.get(), options);
    CCE_CHECK_OK(server_or.status());
    server = std::move(server_or).value();
    CCE_CHECK_OK(server->Start());
  }

  loadgen::Options FloodLoad() const {
    loadgen::Options options;
    options.port = server->port();
    options.mix = {0.0, 0.0, 1.0, 0.0};  // Explain-class only
    for (size_t i = 0; i < kPoolSize; ++i) {
      options.instances.push_back(data.instance(i));
      options.labels.push_back(model.Predict(data.instance(i)));
    }
    options.connections = 4;
    options.open_rate_rps = kProvisionedExplainRps * kFloodMultiplier;
    return options;
  }
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct FloodResult {
  double live_keys_per_sec = 0;
  double answered_fraction = 0;
  uint64_t cached_serves = 0;
  /// batch_items / batch_executions over the measured runs (1.0 when no
  /// shared-build execution ran, i.e. the per-request configuration).
  double amortization_factor = 1.0;
};

FloodResult RunFlood(size_t max_explain_batch) {
  Stack stack(max_explain_batch);
  loadgen::Options load = stack.FloodLoad();

  // Warm-up pass: fault in the wire path end to end before measuring.
  load.duration = kWarmupLength;
  CCE_CHECK_OK(loadgen::Run(load).status());

  const auto before = stack.proxy->Health();
  std::vector<double> keys_per_sec;
  FloodResult result;
  load.duration = kRunLength;
  for (int run = 0; run < kRuns; ++run) {
    auto report = loadgen::Run(load);
    CCE_CHECK_OK(report.status());
    CCE_CHECK(report->other_error == 0 && report->unanswered == 0);
    if (std::getenv("CCE_BENCH_DEBUG")) {
      std::fprintf(stderr, "batch=%zu %s\n", max_explain_batch,
                   report->ToString().c_str());
    }
    // The metric is LIVE keys per second — OK responses with the cache
    // disabled, so neither sheds nor cached serves can inflate it.
    keys_per_sec.push_back(
        report->elapsed_s > 0
            ? static_cast<double>(report->ok) / report->elapsed_s
            : 0.0);
    result.answered_fraction +=
        report->sent > 0 ? static_cast<double>(report->sent -
                                               report->unanswered) /
                               static_cast<double>(report->sent) / kRuns
                         : 0.0;
    const auto& explain =
        report->per_class[static_cast<int>(serving::RequestClass::kExplain)];
    result.cached_serves += explain.cached;
  }
  const auto after = stack.proxy->Health();
  const uint64_t executions = after.batch_executions - before.batch_executions;
  const uint64_t items = after.batch_items - before.batch_items;
  result.amortization_factor =
      executions > 0
          ? static_cast<double>(items) / static_cast<double>(executions)
          : 1.0;
  result.live_keys_per_sec = Median(keys_per_sec);
  stack.server->Stop();
  return result;
}

int Main() {
  const FloodResult per_request = RunFlood(/*max_explain_batch=*/1);
  const FloodResult batched = RunFlood(/*max_explain_batch=*/16);
  const double speedup =
      per_request.live_keys_per_sec > 0
          ? batched.live_keys_per_sec / per_request.live_keys_per_sec
          : 0.0;

  std::printf("{\n");
  std::printf(
      "  \"note\": \"Amortized batch Explain under the PR 9 flood "
      "(bench_explain_batch, RelWithDebInfo, in-process loadgen over "
      "loopback). Open-loop Explain-only arrivals at %.0fx the "
      "provisioned rate (wire token bucket refill %.0f/s, burst 50) "
      "against a %zu-row context, %zu-instance pool, explanation cache "
      "DISABLED so every OK response is a live key from a full search; "
      "medians of %d 2s runs after a warm-up pass. per_request runs the "
      "server with max_explain_batch = 1 (every queued Explain executes "
      "alone); batched uses the default 16 (workers drain the queue in "
      "groups answered by one shared-build ExplainBatch — one admission "
      "charge and one bitmap build per group). Keys are bit-identical "
      "across the two configurations (tests/batch_equivalence_test.cc); "
      "speedup is batched/per_request live keys/sec and must clear the "
      "3x acceptance floor. amortization_factor is batch items per "
      "shared-build execution from the proxy health counters — the "
      "mechanism behind the speedup.\",\n",
      kFloodMultiplier, kProvisionedExplainRps, kContextRows, kPoolSize,
      kRuns);
  std::printf("  \"machine\": {\n");
  std::printf("    \"num_cpus\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("    \"mhz_per_cpu\": 2100,\n");
  std::printf(
      "    \"caveat\": \"shared 1-core container: server loop, workers "
      "and loadgen threads timeslice one CPU, so absolute keys/sec "
      "understates a real deployment; the speedup ratio compares two "
      "runs under the same schedule and is the stable signal.\"\n");
  std::printf("  },\n");
  std::printf("  \"benchmarks\": [\n");
  std::printf(
      "    {\n      \"name\": \"NetServer_ExplainBatch/flood20x/"
      "per_request_keys_per_sec\",\n      \"ratio\": %.1f\n    },\n",
      per_request.live_keys_per_sec);
  std::printf(
      "    {\n      \"name\": \"NetServer_ExplainBatch/flood20x/"
      "batched_keys_per_sec\",\n      \"ratio\": %.1f\n    },\n",
      batched.live_keys_per_sec);
  std::printf(
      "    {\n      \"name\": \"NetServer_ExplainBatch/flood20x/"
      "speedup\",\n      \"ratio\": %.2f,\n"
      "      \"acceptance_floor\": 3.0\n    },\n",
      speedup);
  std::printf(
      "    {\n      \"name\": \"NetServer_ExplainBatch/flood20x/"
      "amortization_factor\",\n      \"ratio\": %.2f\n    },\n",
      batched.amortization_factor);
  std::printf(
      "    {\n      \"name\": \"NetServer_ExplainBatch/flood20x/"
      "per_request_answered_fraction\",\n      \"ratio\": %.4f,\n"
      "      \"acceptance_floor\": 1.0\n    },\n",
      per_request.answered_fraction);
  std::printf(
      "    {\n      \"name\": \"NetServer_ExplainBatch/flood20x/"
      "batched_answered_fraction\",\n      \"ratio\": %.4f,\n"
      "      \"acceptance_floor\": 1.0\n    },\n",
      batched.answered_fraction);
  std::printf(
      "    {\n      \"name\": \"NetServer_ExplainBatch/flood20x/"
      "cached_serves\",\n      \"ratio\": %.1f\n    }\n",
      static_cast<double>(per_request.cached_serves +
                          batched.cached_serves));
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace cce::net

int main() { return cce::net::Main(); }
