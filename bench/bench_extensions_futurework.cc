// The paper's Section 8 future-work directions, implemented and measured:
//  (A) context-relative Shapley importance (no model access) vs the
//      model-probing importance methods — cost and top-k agreement;
//  (B) context-level pattern summaries (grounded relative keys) vs the
//      heuristic IDS summary — explained fraction, conformity and cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/importance.h"
#include "core/patterns.h"
#include "data/generators.h"
#include "explain/explainer.h"
#include "explain/ids.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"

namespace cce::bench {
namespace {

// Fraction of instances where two importance vectors agree on the top-2
// features (unordered).
double TopTwoAgreement(const std::vector<std::vector<double>>& a,
                       const std::vector<std::vector<double>>& b) {
  CCE_CHECK(a.size() == b.size());
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    std::vector<FeatureId> ra = explain::RankByImportance(a[i]);
    std::vector<FeatureId> rb = explain::RankByImportance(b[i]);
    bool same = (ra[0] == rb[0] && ra[1] == rb[1]) ||
                (ra[0] == rb[1] && ra[1] == rb[0]);
    agree += same;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

void RunImportance(const std::string& dataset) {
  using namespace cce;
  WorkbenchOptions options;
  options.explain_count = 20;
  if (dataset == "Adult") options.rows_override = 6000;
  Workbench bench = MakeWorkbench(dataset, options);

  explain::Lime lime(bench.model.get(), &bench.train, {});
  explain::KernelShap shap(bench.model.get(), &bench.train, {});

  std::vector<std::vector<double>> context_scores, lime_scores,
      shap_scores;
  Timer timer;
  for (size_t row : bench.explain_rows) {
    auto scores = ContextShapley::ComputeForRow(bench.context, row, {});
    CCE_CHECK_OK(scores.status());
    context_scores.push_back(std::move(scores).value());
  }
  double context_ms = timer.ElapsedMillis() /
                      static_cast<double>(bench.explain_rows.size());
  timer.Restart();
  for (size_t row : bench.explain_rows) {
    auto scores = lime.ImportanceScores(bench.context.instance(row));
    CCE_CHECK_OK(scores.status());
    lime_scores.push_back(std::move(scores).value());
  }
  double lime_ms = timer.ElapsedMillis() /
                   static_cast<double>(bench.explain_rows.size());
  timer.Restart();
  for (size_t row : bench.explain_rows) {
    auto scores = shap.ImportanceScores(bench.context.instance(row));
    CCE_CHECK_OK(scores.status());
    shap_scores.push_back(std::move(scores).value());
  }
  double shap_ms = timer.ElapsedMillis() /
                   static_cast<double>(bench.explain_rows.size());

  PrintRow(dataset,
           {context_ms, lime_ms, shap_ms,
            100.0 * TopTwoAgreement(context_scores, lime_scores),
            100.0 * TopTwoAgreement(context_scores, shap_scores)},
           "%12.2f");
}

void RunPatterns(const std::string& dataset) {
  using namespace cce;
  WorkbenchOptions options;
  if (dataset == "Adult") options.rows_override = 6000;
  Workbench bench = MakeWorkbench(dataset, options);

  Timer timer;
  ContextPatternMiner::Options mine_options;
  mine_options.seeds = 64;
  auto patterns = ContextPatternMiner::Mine(bench.context, mine_options);
  double patterns_ms = timer.ElapsedMillis();
  CCE_CHECK_OK(patterns.status());
  double pattern_conformity = 0.0;
  for (const ContextPattern& p : *patterns) {
    pattern_conformity += p.conformity;
  }
  pattern_conformity /= static_cast<double>(patterns->size());

  timer.Restart();
  explain::Ids::Options ids_options;
  ids_options.max_rules = 8;
  auto ids = explain::Ids::Summarize(bench.context, ids_options);
  double ids_ms = timer.ElapsedMillis();
  CCE_CHECK_OK(ids.status());
  size_t ids_explained = 0;
  double ids_conformity = 0.0;
  for (size_t row = 0; row < bench.context.size(); ++row) {
    int rule = ids->CoveringRule(bench.context.instance(row));
    if (rule >= 0 &&
        ids->rules()[static_cast<size_t>(rule)].consequent ==
            bench.context.label(row)) {
      ++ids_explained;
    }
  }
  for (const auto& rule : ids->rules()) ids_conformity += rule.precision;
  ids_conformity /= static_cast<double>(ids->rules().size());

  PrintRow(dataset,
           {100.0 * ContextPatternMiner::ExplainedFraction(bench.context,
                                                           *patterns),
            100.0 * pattern_conformity, patterns_ms,
            100.0 * static_cast<double>(ids_explained) /
                static_cast<double>(bench.context.size()),
            100.0 * ids_conformity, ids_ms},
           "%12.2f");
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Section 8 future-work features, implemented",
              "(extensions beyond the paper's evaluation)");
  std::printf(
      "\n(A) Context-relative Shapley vs model-probing importances\n");
  PrintHeader("dataset", {"ctx ms", "LIME ms", "SHAP ms", "top2%:LIME",
                          "top2%:SHAP"});
  for (const std::string& dataset : cce::data::GeneralDatasetNames()) {
    RunImportance(dataset);
  }
  std::printf(
      "\n(B) Context pattern summaries (64 seeds) vs 8-rule IDS\n");
  PrintHeader("dataset", {"CP expl%", "CP conf%", "CP ms", "IDS expl%",
                          "IDS conf%", "IDS ms"});
  for (const std::string& dataset : cce::data::GeneralDatasetNames()) {
    RunPatterns(dataset);
  }
  std::printf(
      "\nShape: context-Shapley is cost-competitive without any model "
      "access, and its low top-2 overlap\nwith LIME/SHAP shows that "
      "context importance is a genuinely different signal from model\n"
      "importance. Grounded-key patterns match IDS's coverage at 100%% "
      "per-pattern conformity\n(vs ~60-87%% for heuristic rules) at "
      "similar cost.\n");
  return 0;
}
