// Figures 3a/3b: conformity (% of explanations that are conformant over
// the inference context) and precision (average max-alpha) of CCE and the
// size-matched heuristic baselines across the five general-ML datasets.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/srk.h"
#include "data/generators.h"
#include "explain/anchor.h"
#include "explain/gam.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"

namespace cce::bench {
namespace {

struct MethodQuality {
  QualityReport cce, lime, shap, anchor, gam;
};

MethodQuality RunDataset(const std::string& dataset) {
  WorkbenchOptions options;
  options.explain_count = 25;
  // Subsample the largest dataset: quality metrics need many model probes.
  if (dataset == "Adult") options.rows_override = 9000;
  Workbench bench = MakeWorkbench(dataset, options);

  explain::Lime lime(bench.model.get(), &bench.train, {});
  explain::KernelShap shap(bench.model.get(), &bench.train, {});
  explain::Anchor anchor(bench.model.get(), &bench.train, {});
  auto gam = explain::Gam::Fit(bench.model.get(), &bench.train, {});
  CCE_CHECK_OK(gam.status());

  // CCE first: its key sizes define the size-matched budgets (Section 7.1).
  std::vector<ExplainedInstance> cce_explained;
  std::vector<size_t> sizes;
  for (size_t row : bench.explain_rows) {
    auto key = Srk::Explain(bench.context, row, {});
    CCE_CHECK_OK(key.status());
    cce_explained.push_back(
        {bench.context.instance(row), bench.context.label(row), key->key});
    sizes.push_back(std::max<size_t>(key->key.size(), 1));
  }

  auto size_matched = [&](explain::FeatureExplainer* explainer) {
    std::vector<ExplainedInstance> out;
    for (size_t i = 0; i < bench.explain_rows.size(); ++i) {
      size_t row = bench.explain_rows[i];
      auto features =
          explainer->ExplainFeatures(bench.context.instance(row), sizes[i]);
      CCE_CHECK_OK(features.status());
      out.push_back({bench.context.instance(row),
                     bench.context.label(row), *features});
    }
    return out;
  };

  MethodQuality quality;
  quality.cce = EvaluateQuality(bench.context, cce_explained);
  quality.lime = EvaluateQuality(bench.context, size_matched(&lime));
  quality.shap = EvaluateQuality(bench.context, size_matched(&shap));
  quality.anchor = EvaluateQuality(bench.context, size_matched(&anchor));
  quality.gam = EvaluateQuality(bench.context, size_matched(gam->get()));
  return quality;
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Conformity and precision of size-matched explanations",
              "Figures 3a and 3b (Section 7.3, Quality)");
  std::vector<std::pair<std::string, MethodQuality>> results;
  for (const std::string& dataset : cce::data::GeneralDatasetNames()) {
    results.emplace_back(dataset, RunDataset(dataset));
  }
  std::printf("\nFig. 3a — conformity (%% of conformant explanations)\n");
  PrintHeader("dataset", {"CCE(SRK)", "LIME", "SHAP", "Anchor", "GAM"});
  for (const auto& [dataset, q] : results) {
    PrintRow(dataset,
             {q.cce.conformity, q.lime.conformity, q.shap.conformity,
              q.anchor.conformity, q.gam.conformity},
             "%12.1f");
  }
  std::printf("\nFig. 3b — precision (average max-alpha, %%)\n");
  PrintHeader("dataset", {"CCE(SRK)", "LIME", "SHAP", "Anchor", "GAM"});
  for (const auto& [dataset, q] : results) {
    PrintRow(dataset,
             {100.0 * q.cce.precision, 100.0 * q.lime.precision,
              100.0 * q.shap.precision, 100.0 * q.anchor.precision,
              100.0 * q.gam.precision},
             "%12.1f");
  }
  std::printf(
      "\nPaper shape: CCE is 100/100 everywhere; the heuristics fall "
      "short on both measures.\n");
  return 0;
}
