// Figures 3c/3d: recall and succinctness of the two conformant methods —
// CCE's relative keys and Xreason's formal explanations.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/srk.h"
#include "data/generators.h"
#include "explain/xreason.h"

namespace cce::bench {
namespace {

struct RecallSuccinctness {
  double cce_recall = 0.0;
  double xreason_recall = 0.0;
  double cce_size = 0.0;
  double xreason_size = 0.0;
};

RecallSuccinctness RunDataset(const std::string& dataset) {
  WorkbenchOptions options;
  options.explain_count = 12;  // Xreason is expensive per instance
  if (dataset == "Adult") options.rows_override = 9000;
  Workbench bench = MakeWorkbench(dataset, options);
  explain::Xreason xreason(bench.model.get(), bench.schema, {});

  RecallSuccinctness out;
  size_t count = 0;
  for (size_t row : bench.explain_rows) {
    auto key = Srk::Explain(bench.context, row, {});
    CCE_CHECK_OK(key.status());
    auto formal =
        xreason.ExplainFeatures(bench.context.instance(row), 0);
    CCE_CHECK_OK(formal.status());
    const Instance& x = bench.context.instance(row);
    Label y = bench.context.label(row);
    out.cce_recall += Recall(bench.context, x, y, key->key, *formal);
    out.xreason_recall += Recall(bench.context, x, y, *formal, key->key);
    out.cce_size += static_cast<double>(key->key.size());
    out.xreason_size += static_cast<double>(formal->size());
    ++count;
  }
  double n = static_cast<double>(count);
  out.cce_recall = 100.0 * out.cce_recall / n;
  out.xreason_recall = 100.0 * out.xreason_recall / n;
  out.cce_size /= n;
  out.xreason_size /= n;
  return out;
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Recall and succinctness of the conformant methods",
              "Figures 3c and 3d (Section 7.3, Quality)");
  PrintHeader("dataset", {"recall:CCE", "recall:Xr", "size:CCE",
                          "size:Xr"});
  double size_ratio_total = 0.0;
  int datasets = 0;
  for (const std::string& dataset : cce::data::GeneralDatasetNames()) {
    RecallSuccinctness r = RunDataset(dataset);
    PrintRow(dataset, {r.cce_recall, r.xreason_recall, r.cce_size,
                       r.xreason_size},
             "%12.2f");
    if (r.cce_size > 0.0) size_ratio_total += r.xreason_size / r.cce_size;
    ++datasets;
  }
  std::printf("\nAverage Xreason/CCE succinctness ratio: %.2fx "
              "(paper: 2.9x)\n",
              size_ratio_total / datasets);
  std::printf(
      "Paper shape: CCE recall > 96%% everywhere; Xreason recall is far "
      "lower because its\nexplanations are much larger and cover fewer "
      "instances.\n");
  return 0;
}
