// Figure 3e: faithfulness (fraction of masked perturbations that keep the
// prediction; lower is better) of CCE and the size-matched baselines.
// Xreason is excluded, as in the paper, because its explanation size is not
// tunable.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/srk.h"
#include "data/generators.h"
#include "explain/anchor.h"
#include "explain/gam.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"

namespace cce::bench {
namespace {

constexpr int kMaskSamples = 24;

std::vector<double> RunDataset(const std::string& dataset) {
  WorkbenchOptions options;
  options.explain_count = 20;
  if (dataset == "Adult") options.rows_override = 9000;
  Workbench bench = MakeWorkbench(dataset, options);

  explain::Lime lime(bench.model.get(), &bench.train, {});
  explain::KernelShap shap(bench.model.get(), &bench.train, {});
  explain::Anchor anchor(bench.model.get(), &bench.train, {});
  auto gam = explain::Gam::Fit(bench.model.get(), &bench.train, {});
  CCE_CHECK_OK(gam.status());

  std::vector<ExplainedInstance> cce_explained;
  std::vector<size_t> sizes;
  for (size_t row : bench.explain_rows) {
    auto key = Srk::Explain(bench.context, row, {});
    CCE_CHECK_OK(key.status());
    cce_explained.push_back(
        {bench.context.instance(row), bench.context.label(row), key->key});
    sizes.push_back(std::max<size_t>(key->key.size(), 1));
  }
  auto size_matched = [&](explain::FeatureExplainer* explainer) {
    std::vector<ExplainedInstance> out;
    for (size_t i = 0; i < bench.explain_rows.size(); ++i) {
      size_t row = bench.explain_rows[i];
      auto features =
          explainer->ExplainFeatures(bench.context.instance(row), sizes[i]);
      CCE_CHECK_OK(features.status());
      out.push_back({bench.context.instance(row),
                     bench.context.label(row), *features});
    }
    return out;
  };

  Rng rng(7);
  auto faithfulness = [&](const std::vector<ExplainedInstance>& explained) {
    return Faithfulness(*bench.model, bench.train, explained, kMaskSamples,
                        &rng);
  };
  return {faithfulness(cce_explained), faithfulness(size_matched(&lime)),
          faithfulness(size_matched(&shap)),
          faithfulness(size_matched(&anchor)),
          faithfulness(size_matched(gam->get()))};
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Faithfulness of size-matched explanations (lower = better)",
              "Figure 3e (Section 7.3, Quality)");
  PrintHeader("dataset", {"CCE(SRK)", "LIME", "SHAP", "Anchor", "GAM"});
  for (const std::string& dataset : cce::data::GeneralDatasetNames()) {
    PrintRow(dataset, RunDataset(dataset), "%12.3f");
  }
  std::printf(
      "\nPaper shape: CCE has the lowest (best) faithfulness on every "
      "dataset.\n");
  return 0;
}
