// Figures 3f/3g: the conformity-succinctness trade-off. Varying alpha from
// 1.0 down to 0.9: (f) average key size per dataset, (g) per-instance SRK
// time on Loan.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/srk.h"
#include "data/generators.h"

namespace cce::bench {
namespace {

const double kAlphas[] = {1.0, 0.98, 0.96, 0.94, 0.92, 0.9};

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("alpha-conformant relative keys: succinctness and time",
              "Figures 3f and 3g (Section 7.3, Flexible trade-offs)");

  std::printf("\nFig. 3f — average succinctness vs alpha\n");
  PrintHeader("dataset",
              {"a=1.0", "a=0.98", "a=0.96", "a=0.94", "a=0.92", "a=0.9"});
  for (const std::string& dataset : cce::data::GeneralDatasetNames()) {
    WorkbenchOptions options;
    options.explain_count = 40;
    if (dataset == "Adult") options.rows_override = 9000;
    Workbench bench = MakeWorkbench(dataset, options);
    std::vector<double> sizes;
    for (double alpha : kAlphas) {
      cce::Srk::Options srk_options;
      srk_options.alpha = alpha;
      double total = 0.0;
      for (size_t row : bench.explain_rows) {
        auto key = cce::Srk::Explain(bench.context, row, srk_options);
        CCE_CHECK_OK(key.status());
        total += static_cast<double>(key->key.size());
      }
      sizes.push_back(total / static_cast<double>(
                                  bench.explain_rows.size()));
    }
    PrintRow(dataset, sizes, "%12.2f");
  }

  std::printf(
      "\nFig. 3g — per-instance SRK time (ms) vs alpha (paper plots "
      "Loan;\nAdult added for a context large enough to expose the "
      "trend)\n");
  PrintHeader("dataset",
              {"a=1.0", "a=0.98", "a=0.96", "a=0.94", "a=0.92", "a=0.9"});
  for (const std::string& dataset :
       {std::string("Loan"), std::string("Adult")}) {
    WorkbenchOptions options;
    options.explain_count = 60;
    Workbench bench = MakeWorkbench(dataset, options);
    std::vector<double> times;
    for (double alpha : kAlphas) {
      cce::Srk::Options srk_options;
      srk_options.alpha = alpha;
      cce::Timer timer;
      const int repeats = 20;
      for (int r = 0; r < repeats; ++r) {
        for (size_t row : bench.explain_rows) {
          auto key = cce::Srk::Explain(bench.context, row, srk_options);
          CCE_CHECK_OK(key.status());
        }
      }
      times.push_back(timer.ElapsedMillis() /
                      static_cast<double>(repeats *
                                          bench.explain_rows.size()));
    }
    PrintRow(dataset, times, "%12.4f");
  }
  std::printf(
      "\nPaper shape: succinctness drops from ~2.2 to ~1.3 on average and "
      "Loan explanations get ~1.8x\nfaster as alpha relaxes from 1 to "
      "0.9.\n");
  return 0;
}
