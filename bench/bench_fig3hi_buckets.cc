// Figures 3h/3i: sensitivity to the numeric bucketing granularity.
// Varying the LoanAmount #-bucket from 10 to 20 on Loan: (h) conformity of
// CCE, Anchor and the importance baselines; (i) recall and succinctness of
// the conformant methods (CCE, Xreason).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/metrics.h"
#include "core/srk.h"
#include "data/generators.h"
#include "explain/anchor.h"
#include "explain/lime.h"
#include "explain/xreason.h"
#include "ml/gbdt.h"

namespace cce::bench {
namespace {

const int kBuckets[] = {10, 12, 14, 16, 18, 20};

struct BucketResult {
  double cce_conformity, anchor_conformity, lime_conformity;
  double cce_recall, xreason_recall;
  double cce_size, xreason_size;
};

BucketResult RunBuckets(int buckets) {
  data::LoanOptions loan_options;
  loan_options.seed = 11;
  loan_options.loan_amount_buckets = buckets;
  Dataset loan = data::GenerateLoan(loan_options);
  Rng rng(11);
  auto [train, inference] = loan.Split(0.7, &rng);
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 60;
  gbdt_options.max_depth = 5;
  auto model = ml::Gbdt::Train(train, gbdt_options);
  CCE_CHECK_OK(model.status());
  Context context = (*model)->MakeContext(inference);
  std::vector<size_t> rows = rng.SampleWithoutReplacement(context.size(),
                                                          15);

  explain::Anchor anchor(model->get(), &train, {});
  explain::Lime lime(model->get(), &train, {});
  explain::Xreason xreason(model->get(), loan.schema_ptr(), {});

  std::vector<ExplainedInstance> cce_explained, anchor_explained,
      lime_explained;
  BucketResult out{};
  size_t count = 0;
  for (size_t row : rows) {
    const Instance& x = context.instance(row);
    Label y = context.label(row);
    auto key = Srk::Explain(context, row, {});
    CCE_CHECK_OK(key.status());
    size_t size = std::max<size_t>(key->key.size(), 1);
    cce_explained.push_back({x, y, key->key});
    auto anchor_key = anchor.ExplainFeatures(x, size);
    CCE_CHECK_OK(anchor_key.status());
    anchor_explained.push_back({x, y, *anchor_key});
    auto lime_key = lime.ExplainFeatures(x, size);
    CCE_CHECK_OK(lime_key.status());
    lime_explained.push_back({x, y, *lime_key});
    auto formal = xreason.ExplainFeatures(x, 0);
    CCE_CHECK_OK(formal.status());
    out.cce_recall += Recall(context, x, y, key->key, *formal);
    out.xreason_recall += Recall(context, x, y, *formal, key->key);
    out.cce_size += static_cast<double>(key->key.size());
    out.xreason_size += static_cast<double>(formal->size());
    ++count;
  }
  out.cce_conformity = Conformity(context, cce_explained);
  out.anchor_conformity = Conformity(context, anchor_explained);
  out.lime_conformity = Conformity(context, lime_explained);
  double n = static_cast<double>(count);
  out.cce_recall = 100.0 * out.cce_recall / n;
  out.xreason_recall = 100.0 * out.xreason_recall / n;
  out.cce_size /= n;
  out.xreason_size /= n;
  return out;
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Impact of numeric bucketing (Loan, LoanAmount feature)",
              "Figures 3h and 3i (Section 7.3)");
  PrintHeader("#-bucket", {"conf:CCE", "conf:Anchor", "conf:LIME",
                           "rec:CCE", "rec:Xr", "size:CCE", "size:Xr"});
  for (int buckets : kBuckets) {
    BucketResult r = RunBuckets(buckets);
    PrintRow(std::to_string(buckets),
             {r.cce_conformity, r.anchor_conformity, r.lime_conformity,
              r.cce_recall, r.xreason_recall, r.cce_size, r.xreason_size},
             "%12.1f");
  }
  std::printf(
      "\nPaper shape: CCE's conformity is flat at 100%% across bucket "
      "counts, heuristics fluctuate;\nrecall/succinctness of both "
      "conformant methods are stable.\n");
  return 0;
}
