// Figures 3j/3k: impact of the context size on explanation quality.
// Varying |I| from 50% to 100% of the Adult inference set:
// (j) batch SRK faithfulness and succinctness; (k) the online variant
// (OSRK) fed a stream prefix of the same lengths.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/osrk.h"
#include "core/srk.h"
#include "data/generators.h"

namespace cce::bench {
namespace {

const double kFractions[] = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
constexpr int kMaskSamples = 24;

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  using namespace cce;
  PrintBanner("Impact of context size |I| (Adult)",
              "Figures 3j and 3k (Sections 7.3-7.4)");

  WorkbenchOptions options;
  options.rows_override = 9000;
  options.explain_count = 20;
  Workbench bench = MakeWorkbench("Adult", options);

  std::printf("\nFig. 3j — batch mode (SRK)\n");
  PrintHeader("|I| fraction", {"faithfulness", "succinctness"}, 14);
  for (double fraction : kFractions) {
    Context partial = bench.context.Prefix(
        static_cast<size_t>(fraction * bench.context.size()));
    std::vector<ExplainedInstance> explained;
    for (size_t row : bench.explain_rows) {
      size_t use_row = row % partial.size();
      auto key = Srk::Explain(partial, use_row, {});
      CCE_CHECK_OK(key.status());
      explained.push_back({partial.instance(use_row),
                           partial.label(use_row), key->key});
    }
    Rng rng(5);
    double faithfulness = Faithfulness(*bench.model, bench.train,
                                       explained, kMaskSamples, &rng);
    PrintRow(StrFormat("%.0f%%", 100.0 * fraction),
             {faithfulness, AverageSuccinctness(explained)}, "%14.3f");
  }

  std::printf("\nFig. 3k — online mode (OSRK over a stream prefix)\n");
  PrintHeader("|I| fraction", {"faithfulness", "succinctness"}, 14);
  for (double fraction : kFractions) {
    size_t prefix = static_cast<size_t>(fraction * bench.context.size());
    std::vector<ExplainedInstance> explained;
    for (size_t i = 0; i < bench.explain_rows.size(); ++i) {
      size_t target = bench.explain_rows[i] % prefix;
      Osrk::Options osrk_options;
      osrk_options.seed = 100 + i;
      auto osrk = Osrk::Create(bench.schema,
                               bench.context.instance(target),
                               bench.context.label(target), osrk_options);
      CCE_CHECK_OK(osrk.status());
      for (size_t row = 0; row < prefix; ++row) {
        if (row == target) continue;
        (*osrk)->Observe(bench.context.instance(row),
                         bench.context.label(row));
      }
      explained.push_back({bench.context.instance(target),
                           bench.context.label(target), (*osrk)->key()});
    }
    Rng rng(6);
    double faithfulness = Faithfulness(*bench.model, bench.train,
                                       explained, kMaskSamples, &rng);
    PrintRow(StrFormat("%.0f%%", 100.0 * fraction),
             {faithfulness, AverageSuccinctness(explained)}, "%14.3f");
  }
  std::printf(
      "\nPaper shape: larger contexts improve (lower) faithfulness; even "
      "50%% of the inference set\nretains ~90%% of the full-context "
      "quality.\n");
  return 0;
}
