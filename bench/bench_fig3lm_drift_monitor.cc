// Figures 3l/3m: monitoring model health with relative keys. Two serving
// streams over Adult — a clean "base" version and a "noise" version whose
// last 40% of instances are perturbed. (l) the average succinctness of
// OSRK-monitored keys vs the fraction of the stream processed; (m) the
// model's actual accuracy on the same prefixes.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/cce.h"
#include "data/drift.h"
#include "data/generators.h"

namespace cce::bench {
namespace {

struct Trajectory {
  std::vector<double> succinctness;  // one point per 10% of the stream
  std::vector<double> accuracy;
};

Trajectory RunStream(const cce::Dataset& serving, const cce::Model& model,
                     std::shared_ptr<const cce::Schema> schema) {
  using namespace cce;
  DriftMonitor::Options monitor_options;
  monitor_options.probe_count = 6;
  DriftMonitor monitor(std::move(schema), monitor_options);
  Trajectory out;
  size_t correct = 0;
  const size_t step = serving.size() / 10;
  for (size_t row = 0; row < serving.size(); ++row) {
    Label prediction = model.Predict(serving.instance(row));
    monitor.Observe(serving.instance(row), prediction);
    correct += (prediction == serving.label(row));
    if ((row + 1) % step == 0) {
      out.succinctness.push_back(monitor.AverageSuccinctness());
      out.accuracy.push_back(100.0 * static_cast<double>(correct) /
                             static_cast<double>(row + 1));
    }
  }
  return out;
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  using namespace cce;
  PrintBanner("Monitoring accuracy dips via key succinctness (Adult)",
              "Figures 3l and 3m (Section 7.4, An application)");

  WorkbenchOptions options;
  options.rows_override = 9000;
  Workbench bench = MakeWorkbench("Adult", options);
  Rng rng(3);
  Dataset noisy = data::InjectTailNoise(bench.inference, 0.4, 0.6, &rng);

  Trajectory base = RunStream(bench.inference, *bench.model, bench.schema);
  Trajectory noise = RunStream(noisy, *bench.model, bench.schema);

  std::printf("\nFig. 3l — monitored succinctness vs stream%%\n");
  PrintHeader("stream%", {"base", "noise"});
  for (size_t i = 0; i < base.succinctness.size(); ++i) {
    PrintRow(StrFormat("%zu%%", 10 * (i + 1)),
             {base.succinctness[i], noise.succinctness[i]}, "%12.2f");
  }
  std::printf("\nFig. 3m — model accuracy vs stream%% (cumulative)\n");
  PrintHeader("stream%", {"base", "noise"});
  for (size_t i = 0; i < base.accuracy.size(); ++i) {
    PrintRow(StrFormat("%zu%%", 10 * (i + 1)),
             {base.accuracy[i], noise.accuracy[i]}, "%12.1f");
  }
  std::printf(
      "\nPaper shape: from the 60%% mark (where noise starts) the noise "
      "stream's key succinctness\nrises abnormally while the base stream "
      "stays flat — tracking the accuracy dip without labels.\n");
  return 0;
}
