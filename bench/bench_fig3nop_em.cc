// Figures 3n/3o/3p and the Section 7.5 efficiency claim: explaining
// entity-matching decisions. Compares CCE, size-matched Anchor, and the
// specialised CERTA explainer on the four EM datasets: conformity,
// precision, faithfulness, and per-instance time.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/srk.h"
#include "explain/anchor.h"
#include "explain/certa.h"

namespace cce::bench {
namespace {

constexpr int kMaskSamples = 24;

struct EmResult {
  QualityReport cce, anchor, certa;
  double cce_faith, anchor_faith, certa_faith;
  double cce_ms, anchor_ms, certa_ms;
};

EmResult RunDataset(const std::string& dataset) {
  using namespace cce;
  EmWorkbenchOptions options;
  options.explain_count = 20;
  // Subsample pair counts: CERTA's probe cost dominates otherwise.
  options.pairs_override = 6000;
  EmWorkbench bench = MakeEmWorkbench(dataset, options);

  explain::Anchor anchor(bench.matcher.get(), &bench.train, {});
  explain::Certa certa(bench.matcher.get(), &bench.train, {});

  std::vector<ExplainedInstance> cce_explained, anchor_explained,
      certa_explained;
  EmResult out{};
  Timer timer;
  std::vector<size_t> sizes;
  for (size_t row : bench.explain_rows) {
    auto key = Srk::Explain(bench.context, row, {});
    CCE_CHECK_OK(key.status());
    cce_explained.push_back(
        {bench.context.instance(row), bench.context.label(row), key->key});
    sizes.push_back(std::max<size_t>(key->key.size(), 1));
  }
  out.cce_ms = timer.ElapsedMillis() /
               static_cast<double>(bench.explain_rows.size());

  timer.Restart();
  for (size_t i = 0; i < bench.explain_rows.size(); ++i) {
    size_t row = bench.explain_rows[i];
    auto features =
        anchor.ExplainFeatures(bench.context.instance(row), sizes[i]);
    CCE_CHECK_OK(features.status());
    anchor_explained.push_back({bench.context.instance(row),
                                bench.context.label(row), *features});
  }
  out.anchor_ms = timer.ElapsedMillis() /
                  static_cast<double>(bench.explain_rows.size());

  timer.Restart();
  for (size_t i = 0; i < bench.explain_rows.size(); ++i) {
    size_t row = bench.explain_rows[i];
    auto features =
        certa.ExplainFeatures(bench.context.instance(row), sizes[i]);
    CCE_CHECK_OK(features.status());
    certa_explained.push_back({bench.context.instance(row),
                               bench.context.label(row), *features});
  }
  out.certa_ms = timer.ElapsedMillis() /
                 static_cast<double>(bench.explain_rows.size());

  out.cce = EvaluateQuality(bench.context, cce_explained);
  out.anchor = EvaluateQuality(bench.context, anchor_explained);
  out.certa = EvaluateQuality(bench.context, certa_explained);
  Rng rng(7);
  out.cce_faith = Faithfulness(*bench.matcher, bench.train, cce_explained,
                               kMaskSamples, &rng);
  out.anchor_faith = Faithfulness(*bench.matcher, bench.train,
                                  anchor_explained, kMaskSamples, &rng);
  out.certa_faith = Faithfulness(*bench.matcher, bench.train,
                                 certa_explained, kMaskSamples, &rng);
  return out;
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Entity-matching explanation: CCE vs Anchor vs CERTA",
              "Figures 3n, 3o, 3p and Section 7.5 (efficiency)");
  std::vector<std::pair<std::string, EmResult>> results;
  for (const std::string& dataset : cce::em::EmDatasetNames()) {
    results.emplace_back(dataset, RunDataset(dataset));
  }
  std::printf("\nFig. 3n — conformity (%%)\n");
  PrintHeader("dataset", {"CCE", "Anchor", "CERTA"});
  for (const auto& [name, r] : results) {
    PrintRow(name, {r.cce.conformity, r.anchor.conformity,
                    r.certa.conformity},
             "%12.1f");
  }
  std::printf("\nFig. 3o — precision (%%)\n");
  PrintHeader("dataset", {"CCE", "Anchor", "CERTA"});
  for (const auto& [name, r] : results) {
    PrintRow(name, {100.0 * r.cce.precision, 100.0 * r.anchor.precision,
                    100.0 * r.certa.precision},
             "%12.1f");
  }
  std::printf("\nFig. 3p — faithfulness (lower = better)\n");
  PrintHeader("dataset", {"CCE", "Anchor", "CERTA"});
  for (const auto& [name, r] : results) {
    PrintRow(name, {r.cce_faith, r.anchor_faith, r.certa_faith},
             "%12.3f");
  }
  std::printf("\nSection 7.5 — per-instance explanation time (ms)\n");
  PrintHeader("dataset", {"CCE", "Anchor", "CERTA"});
  for (const auto& [name, r] : results) {
    PrintRow(name, {r.cce_ms, r.anchor_ms, r.certa_ms}, "%12.3f");
  }
  std::printf(
      "\nPaper shape: CCE 100%%/100%% conformity/precision; faithfulness "
      "competitive with the\nspecialised CERTA and better than Anchor; "
      "CCE orders of magnitude faster than CERTA.\n");
  return 0;
}
