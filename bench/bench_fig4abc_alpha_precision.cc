// Appendix B Exp-1 (Figures 4a/4b/4c): precision of SRK, OSRK and SSRK as
// the conformity bound alpha varies from 1 to 0.9. Precision should decay
// only slightly and stay far above the theoretical floor (alpha itself).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/conformity.h"
#include "core/osrk.h"
#include "core/srk.h"
#include "core/ssrk.h"
#include "data/generators.h"

namespace cce::bench {
namespace {

const double kAlphas[] = {1.0, 0.98, 0.96, 0.94, 0.92, 0.9};

struct PrecisionRows {
  std::vector<double> srk, osrk, ssrk;  // one value per alpha
};

PrecisionRows RunDataset(const std::string& dataset) {
  using namespace cce;
  WorkbenchOptions options;
  options.explain_count = 12;
  if (dataset == "Adult") options.rows_override = 6000;
  Workbench bench = MakeWorkbench(dataset, options);
  ConformityChecker checker(&bench.context);

  PrecisionRows out;
  for (double alpha : kAlphas) {
    double srk_total = 0.0, osrk_total = 0.0, ssrk_total = 0.0;
    for (size_t i = 0; i < bench.explain_rows.size(); ++i) {
      size_t target = bench.explain_rows[i];
      const Instance& x = bench.context.instance(target);
      Label y = bench.context.label(target);

      Srk::Options srk_options;
      srk_options.alpha = alpha;
      auto key = Srk::Explain(bench.context, target, srk_options);
      CCE_CHECK_OK(key.status());
      srk_total += checker.Precision(x, y, key->key);

      Osrk::Options osrk_options;
      osrk_options.alpha = alpha;
      osrk_options.seed = i;
      auto osrk = Osrk::Create(bench.schema, x, y, osrk_options);
      CCE_CHECK_OK(osrk.status());
      Ssrk::Options ssrk_options;
      ssrk_options.alpha = alpha;
      auto ssrk = Ssrk::Create(bench.context, x, y, ssrk_options);
      CCE_CHECK_OK(ssrk.status());
      for (size_t row = 0; row < bench.context.size(); ++row) {
        if (row == target) continue;
        (*osrk)->Observe(bench.context.instance(row),
                         bench.context.label(row));
        (*ssrk)->Observe(bench.context.instance(row),
                         bench.context.label(row));
      }
      osrk_total += checker.Precision(x, y, (*osrk)->key());
      ssrk_total += checker.Precision(x, y, (*ssrk)->key());
    }
    double n = static_cast<double>(bench.explain_rows.size());
    out.srk.push_back(100.0 * srk_total / n);
    out.osrk.push_back(100.0 * osrk_total / n);
    out.ssrk.push_back(100.0 * ssrk_total / n);
  }
  return out;
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Precision vs alpha for SRK / OSRK / SSRK",
              "Figures 4a, 4b, 4c (Appendix B, Exp-1)");
  std::vector<std::pair<std::string, PrecisionRows>> results;
  for (const std::string& dataset : cce::data::GeneralDatasetNames()) {
    results.emplace_back(dataset, RunDataset(dataset));
  }
  const char* figure[] = {"Fig. 4a — SRK (batch)", "Fig. 4b — OSRK",
                          "Fig. 4c — SSRK"};
  for (int algorithm = 0; algorithm < 3; ++algorithm) {
    std::printf("\n%s: precision (%%) vs alpha\n", figure[algorithm]);
    PrintHeader("dataset",
                {"a=1.0", "a=0.98", "a=0.96", "a=0.94", "a=0.92", "a=0.9"});
    for (const auto& [dataset, rows] : results) {
      const std::vector<double>& values =
          algorithm == 0 ? rows.srk
                         : (algorithm == 1 ? rows.osrk : rows.ssrk);
      PrintRow(dataset, values, "%12.1f");
    }
  }
  std::printf(
      "\nPaper shape: precision decays by at most ~1-2%% as alpha drops "
      "to 0.9 and stays well\nabove the theoretical floor (alpha).\n");
  return 0;
}
