// Appendix B Exp-2 (Figure 4d): faithfulness vs the numeric bucket count
// on Adult, for CCE and the size-matched baselines.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/metrics.h"
#include "core/srk.h"
#include "data/generators.h"
#include "explain/anchor.h"
#include "explain/gam.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "ml/gbdt.h"

namespace cce::bench {
namespace {

const int kBuckets[] = {10, 12, 14, 16, 18, 20};
constexpr int kMaskSamples = 20;

std::vector<double> RunBuckets(int buckets) {
  using namespace cce;
  data::AdultOptions adult_options;
  adult_options.rows = 6000;
  adult_options.seed = 11;
  adult_options.numeric_buckets = buckets;
  Dataset adult = data::GenerateAdult(adult_options);
  Rng rng(11);
  auto [train, inference] = adult.Split(0.7, &rng);
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 50;
  auto model = ml::Gbdt::Train(train, gbdt_options);
  CCE_CHECK_OK(model.status());
  Context context = (*model)->MakeContext(inference);
  std::vector<size_t> rows =
      rng.SampleWithoutReplacement(context.size(), 15);

  explain::Lime lime(model->get(), &train, {});
  explain::KernelShap shap(model->get(), &train, {});
  explain::Anchor anchor(model->get(), &train, {});
  auto gam = explain::Gam::Fit(model->get(), &train, {});
  CCE_CHECK_OK(gam.status());

  std::vector<ExplainedInstance> cce_explained;
  std::vector<size_t> sizes;
  for (size_t row : rows) {
    auto key = Srk::Explain(context, row, {});
    CCE_CHECK_OK(key.status());
    cce_explained.push_back(
        {context.instance(row), context.label(row), key->key});
    sizes.push_back(std::max<size_t>(key->key.size(), 1));
  }
  auto size_matched = [&](explain::FeatureExplainer* explainer) {
    std::vector<ExplainedInstance> out;
    for (size_t i = 0; i < rows.size(); ++i) {
      auto features = explainer->ExplainFeatures(
          context.instance(rows[i]), sizes[i]);
      CCE_CHECK_OK(features.status());
      out.push_back({context.instance(rows[i]), context.label(rows[i]),
                     *features});
    }
    return out;
  };

  Rng mask_rng(7);
  auto faithfulness = [&](const std::vector<ExplainedInstance>& explained) {
    return Faithfulness(**model, train, explained, kMaskSamples,
                        &mask_rng);
  };
  return {faithfulness(cce_explained), faithfulness(size_matched(&lime)),
          faithfulness(size_matched(&shap)),
          faithfulness(size_matched(&anchor)),
          faithfulness(size_matched(gam->get()))};
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Faithfulness vs #-bucket (Adult; lower = better)",
              "Figure 4d (Appendix B, Exp-2)");
  PrintHeader("#-bucket", {"CCE(SRK)", "LIME", "SHAP", "Anchor", "GAM"});
  for (int buckets : kBuckets) {
    PrintRow(std::to_string(buckets), RunBuckets(buckets), "%12.3f");
  }
  std::printf(
      "\nPaper shape: CCE keeps the best (lowest) faithfulness across "
      "bucket counts.\n");
  return 0;
}
