// Appendix B Exp-3 (Figure 4e): impact of the context size on SSRK.
// Varying |I| from 50% to 100% of the Adult inference set, report the
// faithfulness and succinctness of SSRK-maintained keys.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/ssrk.h"
#include "data/generators.h"

int main() {
  using namespace cce::bench;
  using namespace cce;
  PrintBanner("SSRK quality vs context size (Adult)",
              "Figure 4e (Appendix B, Exp-3)");

  WorkbenchOptions options;
  options.rows_override = 6000;
  options.explain_count = 15;
  Workbench bench = MakeWorkbench("Adult", options);

  PrintHeader("|I| fraction", {"faithfulness", "succinctness"}, 14);
  for (double fraction : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    size_t prefix = static_cast<size_t>(fraction * bench.context.size());
    Context universe = bench.context.Prefix(prefix);
    std::vector<ExplainedInstance> explained;
    for (size_t raw : bench.explain_rows) {
      size_t target = raw % prefix;
      auto ssrk = Ssrk::Create(universe, universe.instance(target),
                               universe.label(target), {});
      CCE_CHECK_OK(ssrk.status());
      for (size_t row = 0; row < prefix; ++row) {
        if (row == target) continue;
        (*ssrk)->Observe(universe.instance(row), universe.label(row));
      }
      explained.push_back({universe.instance(target),
                           universe.label(target), (*ssrk)->key()});
    }
    Rng rng(5);
    double faithfulness =
        Faithfulness(*bench.model, bench.train, explained, 20, &rng);
    PrintRow(StrFormat("%.0f%%", 100.0 * fraction),
             {faithfulness, AverageSuccinctness(explained)}, "%14.3f");
  }
  std::printf(
      "\nPaper shape: larger contexts lower (improve) faithfulness while "
      "keys grow slightly.\n");
  return 0;
}
