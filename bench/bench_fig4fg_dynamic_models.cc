// Appendix B Exp-4 (Figures 4f/4g): explaining a *dynamic* model — a
// sequence of five XGBoost-style models trained on five dataset phases —
// when the explainers are oblivious to the changes. Baselines (including
// Xreason) keep reasoning about the phase-1 model; CCE explains from a
// sliding window of recently served (instance, prediction) pairs. The
// reference explanation is SRK over the current phase's full context.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/cce.h"
#include "core/metrics.h"
#include "core/srk.h"
#include "data/drift.h"
#include "data/generators.h"
#include "explain/anchor.h"
#include "explain/lime.h"
#include "explain/xreason.h"
#include "ml/gbdt.h"

namespace cce::bench {
namespace {

constexpr size_t kPhases = 5;
constexpr size_t kExplainPerPhase = 8;

struct DynamicResult {
  double cce_conformity = 0, lime_conformity = 0, anchor_conformity = 0,
         xreason_conformity = 0;
  double cce_recall = 0, xreason_recall = 0;
};

DynamicResult RunDataset(const std::string& dataset) {
  using namespace cce;
  size_t rows = dataset == "Adult" ? 6000 : 0;
  Result<Dataset> full = data::GenerateByName(dataset, 11, rows);
  CCE_CHECK_OK(full.status());
  std::vector<Dataset> phases = data::SplitPhases(*full, kPhases);

  // One model per phase; baselines are built against phase 1 only.
  std::vector<std::unique_ptr<ml::Gbdt>> models;
  std::vector<Dataset> trains;
  std::vector<Context> contexts;
  for (Dataset& phase : phases) {
    Rng rng(11);
    auto [train, inference] = phase.Split(0.7, &rng);
    ml::Gbdt::Options gbdt_options;
    gbdt_options.num_trees = 40;
    auto model = ml::Gbdt::Train(train, gbdt_options);
    CCE_CHECK_OK(model.status());
    contexts.push_back((*model)->MakeContext(inference));
    trains.push_back(std::move(train));
    models.push_back(std::move(model).value());
  }

  explain::Lime lime(models[0].get(), &trains[0], {});
  explain::Anchor anchor(models[0].get(), &trains[0], {});
  explain::Xreason xreason(models[0].get(), full->schema_ptr(), {});

  SlidingWindowExplainer::Options window_options;
  window_options.window_size = 512;
  window_options.step = 64;
  auto window =
      SlidingWindowExplainer::Create(full->schema_ptr(), window_options);
  CCE_CHECK_OK(window.status());

  DynamicResult out;
  size_t explained_total = 0;
  Rng pick_rng(3);
  for (size_t p = 0; p < kPhases; ++p) {
    const Context& context = contexts[p];
    // Stream this phase's served predictions into the oblivious window.
    for (size_t row = 0; row < context.size(); ++row) {
      (*window)->Observe(context.instance(row), context.label(row));
    }
    std::vector<ExplainedInstance> cce_e, lime_e, anchor_e, xreason_e;
    std::vector<size_t> sample = pick_rng.SampleWithoutReplacement(
        context.size(), std::min(kExplainPerPhase, context.size()));
    for (size_t row : sample) {
      const Instance& x = context.instance(row);
      Label y = context.label(row);
      // Reference: batch SRK with the current phase's full context.
      auto reference = Srk::ExplainInstance(context, x, y, {});
      CCE_CHECK_OK(reference.status());

      auto cce_key = (*window)->Explain(x, y);
      CCE_CHECK_OK(cce_key.status());
      cce_e.push_back({x, y, cce_key->key});
      size_t size = std::max<size_t>(cce_key->key.size(), 1);

      auto lime_key = lime.ExplainFeatures(x, size);
      CCE_CHECK_OK(lime_key.status());
      lime_e.push_back({x, y, *lime_key});
      auto anchor_key = anchor.ExplainFeatures(x, size);
      CCE_CHECK_OK(anchor_key.status());
      anchor_e.push_back({x, y, *anchor_key});
      auto formal = xreason.ExplainFeatures(x, 0);
      CCE_CHECK_OK(formal.status());
      xreason_e.push_back({x, y, *formal});

      out.cce_recall += Recall(context, x, y, cce_key->key,
                               reference->key);
      out.xreason_recall += Recall(context, x, y, *formal,
                                   reference->key);
      ++explained_total;
    }
    out.cce_conformity += Conformity(context, cce_e);
    out.lime_conformity += Conformity(context, lime_e);
    out.anchor_conformity += Conformity(context, anchor_e);
    out.xreason_conformity += Conformity(context, xreason_e);
  }
  out.cce_conformity /= kPhases;
  out.lime_conformity /= kPhases;
  out.anchor_conformity /= kPhases;
  out.xreason_conformity /= kPhases;
  out.cce_recall = 100.0 * out.cce_recall /
                   static_cast<double>(explained_total);
  out.xreason_recall = 100.0 * out.xreason_recall /
                       static_cast<double>(explained_total);
  return out;
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Explaining dynamic models (5-phase model sequence)",
              "Figures 4f and 4g (Appendix B, Exp-4)");
  std::vector<std::pair<std::string, DynamicResult>> results;
  for (const std::string& dataset : cce::data::GeneralDatasetNames()) {
    results.emplace_back(dataset, RunDataset(dataset));
  }
  std::printf("\nFig. 4f — recall vs the current-phase reference (%%)\n");
  PrintHeader("dataset", {"CCE", "Xreason"});
  for (const auto& [name, r] : results) {
    PrintRow(name, {r.cce_recall, r.xreason_recall}, "%12.1f");
  }
  std::printf("\nFig. 4g — conformity on the current-phase context (%%)\n");
  PrintHeader("dataset", {"CCE", "LIME", "Anchor", "Xreason"});
  for (const auto& [name, r] : results) {
    PrintRow(name, {r.cce_conformity, r.lime_conformity,
                    r.anchor_conformity, r.xreason_conformity},
             "%12.1f");
  }
  std::printf(
      "\nPaper shape: CCE has the highest conformity and far higher "
      "recall than Xreason, whose\nstale formal explanations cover almost "
      "nothing under model drift.\n");
  return 0;
}
