// Appendix B Exp-4 (Figure 4h): robustness of sliding-window CCE to the
// step size ΔI. Over the 5-phase dynamic stream, vary ΔI and report the
// average conformity of window-based explanations on the current-phase
// context.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/cce.h"
#include "core/metrics.h"
#include "data/drift.h"
#include "data/generators.h"
#include "ml/gbdt.h"

namespace cce::bench {
namespace {

constexpr size_t kPhases = 5;

double RunStep(const std::vector<cce::Context>& contexts,
               std::shared_ptr<const cce::Schema> schema, size_t step) {
  using namespace cce;
  SlidingWindowExplainer::Options options;
  options.window_size = 512;
  options.step = step;
  auto window = SlidingWindowExplainer::Create(std::move(schema), options);
  CCE_CHECK_OK(window.status());

  double conformity_total = 0.0;
  Rng pick_rng(3);
  for (const Context& context : contexts) {
    for (size_t row = 0; row < context.size(); ++row) {
      (*window)->Observe(context.instance(row), context.label(row));
    }
    std::vector<ExplainedInstance> explained;
    for (size_t row : pick_rng.SampleWithoutReplacement(
             context.size(), std::min<size_t>(10, context.size()))) {
      auto key = (*window)->Explain(context.instance(row),
                                    context.label(row));
      CCE_CHECK_OK(key.status());
      explained.push_back(
          {context.instance(row), context.label(row), key->key});
    }
    conformity_total += Conformity(context, explained);
  }
  return conformity_total / kPhases;
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  using namespace cce;
  PrintBanner("Sliding-window CCE vs step size ΔI (dynamic stream)",
              "Figure 4h (Appendix B, Exp-4)");
  PrintHeader("dataset", {"dI=16", "dI=32", "dI=64", "dI=128"});
  for (const std::string& dataset : data::GeneralDatasetNames()) {
    size_t rows = dataset == "Adult" ? 6000 : 0;
    Result<Dataset> full = data::GenerateByName(dataset, 11, rows);
    CCE_CHECK_OK(full.status());
    std::vector<Dataset> phases = data::SplitPhases(*full, kPhases);
    std::vector<Context> contexts;
    for (Dataset& phase : phases) {
      Rng rng(11);
      auto [train, inference] = phase.Split(0.7, &rng);
      ml::Gbdt::Options gbdt_options;
      gbdt_options.num_trees = 40;
      auto model = ml::Gbdt::Train(train, gbdt_options);
      CCE_CHECK_OK(model.status());
      contexts.push_back((*model)->MakeContext(inference));
    }
    std::vector<double> row;
    for (size_t step : {16u, 32u, 64u, 128u}) {
      row.push_back(RunStep(contexts, full->schema_ptr(), step));
    }
    PrintRow(dataset, row, "%12.1f");
  }
  std::printf(
      "\nPaper shape: conformity is robust against the choice of ΔI.\n");
  return 0;
}
