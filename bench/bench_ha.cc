// Hedged-read benchmark for the self-healing serving group: a leader
// whose Explain path suffers injected latency spikes (10% of dispatches
// sleep ~20ms) vs a caught-up replica, measured under kLeaderOnly (no
// hedging possible — the spike lands on the caller) and kPreferFresh
// with hedging on (the spike is raced by a replica hedge after ~p95×2).
// The contract this pins: hedging cuts tail latency by well over 2× at
// p99 while serving bit-identical non-degraded keys. Prints percentiles
// for BENCH_ha.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "io/env.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "serving/serving_group.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kRows = 2048;
constexpr size_t kRequests = 2000;
constexpr double kSpikeRate = 0.10;
constexpr auto kSpike = std::chrono::milliseconds(20);

void CleanDir(const std::string& dir) {
  std::vector<std::string> names;
  if (io::Env::Default()->ListDir(dir, &names).ok()) {
    for (const std::string& entry : names) {
      (void)io::Env::Default()->RemoveFile(dir + "/" + entry);
    }
  }
}

int64_t Percentile(std::vector<int64_t> micros, double p) {
  std::sort(micros.begin(), micros.end());
  const size_t index = static_cast<size_t>(p * (micros.size() - 1));
  return micros[index];
}

struct RunStats {
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t degraded = 0;
};

RunStats DriveExplains(ServingGroup& group, const Dataset& data) {
  std::vector<int64_t> micros;
  micros.reserve(kRequests);
  RunStats stats;
  for (size_t i = 0; i < kRequests; ++i) {
    const size_t row = (i * 7) % data.size();
    const auto start = std::chrono::steady_clock::now();
    auto result = group.Explain(data.instance(row), data.label(row));
    const auto elapsed = std::chrono::steady_clock::now() - start;
    CCE_CHECK_OK(result.status());
    if (result->key.degraded) ++stats.degraded;
    micros.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }
  stats.p50 = Percentile(micros, 0.50);
  stats.p95 = Percentile(micros, 0.95);
  stats.p99 = Percentile(micros, 0.99);
  stats.hedges =
      group.registry().GetCounter("cce_group_hedges_total", "")->Value();
  stats.hedge_wins =
      group.registry().GetCounter("cce_group_hedge_wins_total", "")->Value();
  return stats;
}

int Main() {
  const std::string leader_dir = "/tmp/cce_bench_ha.leader";
  const std::string ship_dir = "/tmp/cce_bench_ha.ship";
  CleanDir(leader_dir);
  CleanDir(ship_dir);

  Dataset data = cce::testing::RandomContext(kRows, 8, 5, 42);
  ExplainableProxy::Options leader_options;
  leader_options.monitor_drift = false;
  leader_options.shards = kShards;
  leader_options.durability.dir = leader_dir;
  leader_options.durability.sync_every = 0;
  auto leader_or =
      ExplainableProxy::Create(data.schema_ptr(), nullptr, leader_options);
  CCE_CHECK_OK(leader_or.status());
  ExplainableProxy& leader = **leader_or;
  for (size_t row = 0; row < data.size(); ++row) {
    CCE_CHECK_OK(leader.Record(data.instance(row), data.label(row)));
  }
  ShardLogShipper::Options ship_options;
  ship_options.source_dir = leader_dir;
  ship_options.ship_dir = ship_dir;
  ship_options.shards = kShards;
  ShardLogShipper shipper(ship_options);
  CCE_CHECK_OK(shipper.Ship(leader.PublishedSequence()));
  ReplicaProxy::Options replica_options;
  replica_options.ship_dir = ship_dir;
  auto replica_or = ReplicaProxy::Create(data.schema_ptr(), replica_options);
  CCE_CHECK_OK(replica_or.status());
  ReplicaProxy& replica = **replica_or;
  CCE_CHECK(replica.published_seq() == leader.PublishedSequence());

  auto run = [&](RoutePolicy policy, bool hedge) {
    ServingGroup::Options options;
    options.policy = policy;
    options.hedge = hedge;
    options.hedge_min_delay = std::chrono::milliseconds(1);
    options.hedge_max_delay = std::chrono::milliseconds(2);
    // The same deterministic spike schedule for both runs: ~10% of
    // leader dispatches stall, modelling GC pauses / noisy neighbours.
    auto spikes = std::make_shared<Rng>(20260807);
    options.explain_interceptor = [spikes](size_t backend) {
      if (backend == 0 && spikes->Uniform(1000) < kSpikeRate * 1000) {
        std::this_thread::sleep_for(kSpike);
      }
    };
    auto group_or = ServingGroup::Create(&leader, {&replica}, options);
    CCE_CHECK_OK(group_or.status());
    return DriveExplains(**group_or, data);
  };

  const RunStats leader_only = run(RoutePolicy::kLeaderOnly, false);
  const RunStats hedged = run(RoutePolicy::kPreferFresh, true);

  std::printf("leader_only: p50=%lldus p95=%lldus p99=%lldus degraded=%llu\n",
              static_cast<long long>(leader_only.p50),
              static_cast<long long>(leader_only.p95),
              static_cast<long long>(leader_only.p99),
              static_cast<unsigned long long>(leader_only.degraded));
  std::printf(
      "hedged:      p50=%lldus p95=%lldus p99=%lldus degraded=%llu "
      "hedges=%llu wins=%llu\n",
      static_cast<long long>(hedged.p50), static_cast<long long>(hedged.p95),
      static_cast<long long>(hedged.p99),
      static_cast<unsigned long long>(hedged.degraded),
      static_cast<unsigned long long>(hedged.hedges),
      static_cast<unsigned long long>(hedged.hedge_wins));
  const double speedup = hedged.p99 > 0
                             ? static_cast<double>(leader_only.p99) /
                                   static_cast<double>(hedged.p99)
                             : 0.0;
  std::printf("p99 speedup: %.1fx\n", speedup);
  CCE_CHECK(speedup >= 2.0);  // the acceptance bar for SUITE=ha's bench

  CleanDir(leader_dir);
  CleanDir(ship_dir);
  return 0;
}

}  // namespace
}  // namespace cce::serving

int main() { return cce::serving::Main(); }
