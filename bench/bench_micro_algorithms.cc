// Google-benchmark micro-benchmarks for the core algorithms: SRK scaling
// in |I| and n, OSRK/SSRK per-arrival update cost, and the conformity
// checker's index construction.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "core/conformity.h"
#include "core/osrk.h"
#include "core/srk.h"
#include "core/ssrk.h"
#include "tests/test_util.h"

namespace cce {
namespace {

void BM_SrkVsContextSize(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  for (auto _ : state) {
    auto key = Srk::Explain(context, 0, {});
    benchmark::DoNotOptimize(key);
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_SrkVsContextSize)->Range(512, 32768)->Complexity();

void BM_SrkVsFeatures(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(4096, n, 6, 42);
  for (auto _ : state) {
    auto key = Srk::Explain(context, 0, {});
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_SrkVsFeatures)->RangeMultiplier(2)->Range(4, 64);

void BM_SrkAlpha(benchmark::State& state) {
  Dataset context = testing::RandomContext(8192, 12, 6, 42);
  Srk::Options options;
  options.alpha = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto key = Srk::Explain(context, 0, options);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_SrkAlpha)->Arg(100)->Arg(95)->Arg(90);

void BM_OsrkUpdate(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  Osrk::Options options;
  auto osrk = Osrk::Create(context.schema_ptr(), context.instance(0),
                           context.label(0), options);
  CCE_CHECK_OK(osrk.status());
  size_t row = 1;
  for (auto _ : state) {
    (*osrk)->Observe(context.instance(row), context.label(row));
    row = row + 1 < context.size() ? row + 1 : 1;
  }
}
BENCHMARK(BM_OsrkUpdate)->Range(1024, 16384);

void BM_SsrkUpdate(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset universe = testing::RandomContext(rows, 12, 6, 42);
  auto ssrk = Ssrk::Create(universe, universe.instance(0),
                           universe.label(0), {});
  CCE_CHECK_OK(ssrk.status());
  size_t row = 1;
  for (auto _ : state) {
    (*ssrk)->Observe(universe.instance(row), universe.label(row));
    row = row + 1 < universe.size() ? row + 1 : 1;
  }
}
BENCHMARK(BM_SsrkUpdate)->Range(1024, 16384);

void BM_ConformityIndexBuild(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  for (auto _ : state) {
    ConformityChecker checker(&context);
    benchmark::DoNotOptimize(checker);
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_ConformityIndexBuild)->Range(1024, 32768)->Complexity();

void BM_ConformityPrecision(benchmark::State& state) {
  Dataset context = testing::RandomContext(16384, 12, 6, 42);
  ConformityChecker checker(&context);
  FeatureSet key = {0, 1, 5};
  for (auto _ : state) {
    double precision =
        checker.Precision(context.instance(0), context.label(0), key);
    benchmark::DoNotOptimize(precision);
  }
}
BENCHMARK(BM_ConformityPrecision);

}  // namespace
}  // namespace cce

BENCHMARK_MAIN();
