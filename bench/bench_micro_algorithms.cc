// Google-benchmark micro-benchmarks for the core algorithms: SRK scaling
// in |I| and n, OSRK/SSRK per-arrival update cost, the conformity
// checker's index construction, and the serial-vs-bitset engine
// comparison at 1/2/4/8 pool threads (EXPERIMENTS.md "Bitset conformity
// engine" records the numbers).

#include <benchmark/benchmark.h>

#include <memory>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/bitset_conformity.h"
#include "core/conformity.h"
#include "core/osrk.h"
#include "core/srk.h"
#include "core/ssrk.h"
#include "tests/test_util.h"

namespace cce {
namespace {

void BM_SrkVsContextSize(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  for (auto _ : state) {
    auto key = Srk::Explain(context, 0, {});
    benchmark::DoNotOptimize(key);
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_SrkVsContextSize)->Range(512, 32768)->Complexity();

void BM_SrkVsFeatures(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(4096, n, 6, 42);
  for (auto _ : state) {
    auto key = Srk::Explain(context, 0, {});
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_SrkVsFeatures)->RangeMultiplier(2)->Range(4, 64);

void BM_SrkAlpha(benchmark::State& state) {
  Dataset context = testing::RandomContext(8192, 12, 6, 42);
  Srk::Options options;
  options.alpha = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto key = Srk::Explain(context, 0, options);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_SrkAlpha)->Arg(100)->Arg(95)->Arg(90);

void BM_OsrkUpdate(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  Osrk::Options options;
  auto osrk = Osrk::Create(context.schema_ptr(), context.instance(0),
                           context.label(0), options);
  CCE_CHECK_OK(osrk.status());
  size_t row = 1;
  for (auto _ : state) {
    (*osrk)->Observe(context.instance(row), context.label(row));
    row = row + 1 < context.size() ? row + 1 : 1;
  }
}
BENCHMARK(BM_OsrkUpdate)->Range(1024, 16384);

void BM_SsrkUpdate(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset universe = testing::RandomContext(rows, 12, 6, 42);
  auto ssrk = Ssrk::Create(universe, universe.instance(0),
                           universe.label(0), {});
  CCE_CHECK_OK(ssrk.status());
  size_t row = 1;
  for (auto _ : state) {
    (*ssrk)->Observe(universe.instance(row), universe.label(row));
    row = row + 1 < universe.size() ? row + 1 : 1;
  }
}
BENCHMARK(BM_SsrkUpdate)->Range(1024, 16384);

void BM_ConformityIndexBuild(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  for (auto _ : state) {
    ConformityChecker checker(&context);
    benchmark::DoNotOptimize(checker);
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_ConformityIndexBuild)->Range(1024, 32768)->Complexity();

// -- Engine comparison: sorted-merge reference vs blocked bitset. ---------
//
// Same context, same key, same query; the bitset benchmarks take the pool
// width as the second argument (0 = no pool, the serial bitset path).
// Shards are RowBitmap::kShardWords (256 Ki rows), so the 2 Mi-row case
// fans out 8 shards per count.

void BM_ViolatorCountSorted(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  ConformityChecker checker(&context);
  FeatureSet key = {0, 3, 7};
  for (auto _ : state) {
    size_t violators =
        checker.CountViolators(context.instance(0), context.label(0), key);
    benchmark::DoNotOptimize(violators);
  }
}
BENCHMARK(BM_ViolatorCountSorted)->Arg(1 << 18)->Arg(1 << 21);

void BM_ViolatorCountBitset(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  size_t threads = static_cast<size_t>(state.range(1));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  std::unique_ptr<ThreadPool> pool;
  BitsetConformityChecker::Options options;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(threads);
    options.pool = pool.get();
  }
  BitsetConformityChecker checker(&context, options);
  FeatureSet key = {0, 3, 7};
  for (auto _ : state) {
    size_t violators =
        checker.CountViolators(context.instance(0), context.label(0), key);
    benchmark::DoNotOptimize(violators);
  }
}
BENCHMARK(BM_ViolatorCountBitset)
    ->Args({1 << 18, 0})
    ->Args({1 << 21, 0})
    ->Args({1 << 21, 1})
    ->Args({1 << 21, 2})
    ->Args({1 << 21, 4})
    ->Args({1 << 21, 8});

void BM_SrkSorted(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  for (auto _ : state) {
    auto key = Srk::Explain(context, 0, {});
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_SrkSorted)->Arg(1 << 15)->Arg(1 << 18);

void BM_SrkBitset(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  size_t threads = static_cast<size_t>(state.range(1));
  Dataset context = testing::RandomContext(rows, 12, 6, 42);
  std::unique_ptr<ThreadPool> pool;
  Srk::Options options;
  options.parallel_conformity = true;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(threads);
    options.pool = pool.get();
  }
  // Bitmap construction happens inside Explain, so this measures the
  // honest end-to-end latency a proxy Explain pays, rebuild included.
  for (auto _ : state) {
    auto key = Srk::Explain(context, 0, options);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_SrkBitset)
    ->Args({1 << 15, 0})
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 2})
    ->Args({1 << 18, 4})
    ->Args({1 << 18, 8});

void BM_BitsetIncrementalAddRow(benchmark::State& state) {
  Dataset context = testing::RandomContext(4096, 12, 6, 42);
  BitsetConformityChecker checker(&context);
  size_t row = 0;
  for (auto _ : state) {
    size_t id = checker.AddRow(context.instance(row), context.label(row));
    checker.RemoveRow(id);  // keep the live set bounded
    row = row + 1 < context.size() ? row + 1 : 0;
  }
}
BENCHMARK(BM_BitsetIncrementalAddRow);

void BM_ConformityPrecision(benchmark::State& state) {
  Dataset context = testing::RandomContext(16384, 12, 6, 42);
  ConformityChecker checker(&context);
  FeatureSet key = {0, 1, 5};
  for (auto _ : state) {
    double precision =
        checker.Precision(context.instance(0), context.label(0), key);
    benchmark::DoNotOptimize(precision);
  }
}
BENCHMARK(BM_ConformityPrecision);

}  // namespace
}  // namespace cce

BENCHMARK_MAIN();
