// Network front-end benchmark (BENCH_net.json): the wire protocol's two
// load stories, measured end to end over real loopback sockets with the
// in-process load generator.
//
//   sustained — closed-loop pipelined Explain traffic over a small
//   instance pool, so after warm-up the proxy's explanation cache
//   answers every request (the cached rung of the ladder at wire
//   speed). Pins the >= 100k Explain-class req/s acceptance floor and
//   the p50/p99 a pipelined client sees.
//
//   flood20x — open-loop arrivals at 20x the provisioned Explain rate
//   (the token bucket is configured to a known refill). The server must
//   answer EVERY request — admitted ones with keys, the rest with typed
//   RESOURCE_EXHAUSTED sheds carrying retry_after_ms hints — and drop
//   no connection. Measures honest shedding, not collapse.
//
// Plain main (not google-benchmark): whole-distribution percentiles and
// loadgen reports need full control. Prints BENCH-schema JSON on stdout;
// scripts/bench_net.sh redirects it into BENCH_net.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/model.h"
#include "net/loadgen/loadgen.h"
#include "net/server.h"
#include "serving/proxy.h"
#include "serving/serving_group.h"
#include "tests/test_util.h"

namespace cce::net {
namespace {

constexpr size_t kContextRows = 512;
constexpr size_t kPoolSize = 32;
constexpr int kSustainedRuns = 3;
constexpr auto kSustainedRunLength = std::chrono::milliseconds(1500);
constexpr double kProvisionedExplainRps = 500.0;
constexpr double kFloodMultiplier = 20.0;

class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return x.empty() ? 0 : x[0] % 2;
  }
};

/// Serving stack + NetServer on an ephemeral loopback port.
struct Stack {
  Dataset data;
  ParityModel model;
  std::unique_ptr<serving::ExplainableProxy> proxy;
  std::unique_ptr<serving::ServingGroup> group;
  std::unique_ptr<NetServer> server;

  Stack(const NetServer::Options& server_options,
        double proxy_explain_refill_per_sec)
      : data(cce::testing::RandomContext(kContextRows, 4, 3, 29,
                                         /*noise=*/0.0)) {
    serving::ExplainableProxy::Options proxy_options;
    proxy_options.monitor_drift = false;
    // overload.enabled arms the proxy's explanation cache. A finite
    // explain refill makes the proxy shed full searches past that rate —
    // and a shed with a warm cache entry IS the cached rung: a real key
    // (witnesses and all) flagged `cached` instead of a recompute.
    proxy_options.overload.enabled = true;
    proxy_options.overload.explain_bucket.refill_per_sec =
        proxy_explain_refill_per_sec;
    proxy_options.overload.explain_bucket.burst = 2.0 * kPoolSize;
    auto proxy_or = serving::ExplainableProxy::Create(data.schema_ptr(),
                                                      &model, proxy_options);
    CCE_CHECK_OK(proxy_or.status());
    proxy = std::move(proxy_or).value();
    for (size_t i = 0; i < data.size(); ++i) {
      CCE_CHECK_OK(
          proxy->Record(data.instance(i), model.Predict(data.instance(i))));
    }
    serving::ServingGroup::Options group_options;
    group_options.policy = serving::RoutePolicy::kLeaderOnly;
    auto group_or =
        serving::ServingGroup::Create(proxy.get(), {}, group_options);
    CCE_CHECK_OK(group_or.status());
    group = std::move(group_or).value();
    NetServer::Options options = server_options;
    options.port = 0;
    auto server_or = NetServer::Create(group.get(), options);
    CCE_CHECK_OK(server_or.status());
    server = std::move(server_or).value();
    CCE_CHECK_OK(server->Start());
  }

  /// Explains every pool instance once in-process (inside the bucket's
  /// burst budget) so the cache holds a fresh key per pool entry before
  /// any wire traffic arrives.
  void WarmCache() {
    for (size_t i = 0; i < kPoolSize; ++i) {
      CCE_CHECK_OK(
          proxy->Explain(data.instance(i), model.Predict(data.instance(i)))
              .status());
    }
  }

  loadgen::Options BaseLoad() const {
    loadgen::Options options;
    options.port = server->port();
    options.mix = {0.0, 0.0, 1.0, 0.0};  // Explain-class only
    for (size_t i = 0; i < kPoolSize; ++i) {
      options.instances.push_back(data.instance(i));
      options.labels.push_back(model.Predict(data.instance(i)));
    }
    return options;
  }
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

int64_t Median(std::vector<int64_t> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct SustainedResult {
  double rps = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  double cached_fraction = 0;
};

SustainedResult RunSustained() {
  NetServer::Options server_options;
  server_options.worker_threads = 2;
  // Both connections' full windows must fit between loop and workers:
  // the scenario measures the served rate, not queue_overflow sheds.
  server_options.max_pending = 4096;
  // The proxy admits ~100 full searches/s; everything past that is
  // served from the warm cache (still a real key, flagged `cached`).
  Stack stack(server_options, /*proxy_explain_refill_per_sec=*/100.0);
  stack.WarmCache();

  loadgen::Options load = stack.BaseLoad();
  load.connections = 2;
  load.window = 256;

  // Warm-up pass: fault in the wire path end to end before measuring.
  load.duration = std::chrono::milliseconds(500);
  CCE_CHECK_OK(loadgen::Run(load).status());

  std::vector<double> rps;
  std::vector<int64_t> p50;
  std::vector<int64_t> p99;
  std::vector<double> cached;
  load.duration = kSustainedRunLength;
  for (int run = 0; run < kSustainedRuns; ++run) {
    auto report = loadgen::Run(load);
    CCE_CHECK_OK(report.status());
    CCE_CHECK(report->other_error == 0 && report->unanswered == 0);
    if (std::getenv("CCE_BENCH_DEBUG")) {
      std::fprintf(stderr, "%s\n", report->ToString().c_str());
    }
    // The metric is SERVED keys per second — OK responses only, so a
    // shed storm can never inflate the number.
    rps.push_back(report->elapsed_s > 0
                      ? static_cast<double>(report->ok) / report->elapsed_s
                      : 0.0);
    p50.push_back(report->p50_us);
    p99.push_back(report->p99_us);
    const auto& explain =
        report->per_class[static_cast<int>(serving::RequestClass::kExplain)];
    cached.push_back(explain.ok == 0
                         ? 0.0
                         : static_cast<double>(explain.cached) /
                               static_cast<double>(explain.ok));
  }
  stack.server->Stop();
  return {Median(rps), Median(p50), Median(p99), Median(cached)};
}

struct FloodResult {
  double offered_rps = 0;
  double admitted_rps = 0;
  double shed_fraction = 0;
  double answered_fraction = 0;
  uint64_t retry_after_hints = 0;
  uint64_t connection_failures = 0;
  double mean_hint_ms = 0;
};

FloodResult RunFlood() {
  NetServer::Options server_options;
  server_options.worker_threads = 2;
  // Provision the wire's Explain budget explicitly so the flood factor
  // is known: refill 500/s with a 50-token burst.
  server_options.overload.explain_bucket.refill_per_sec =
      kProvisionedExplainRps;
  server_options.overload.explain_bucket.burst = 50.0;
  // Proxy admission stays effectively open (the wire bucket is the one
  // under test); the flood never reaches the proxy past 500/s anyway.
  Stack stack(server_options, /*proxy_explain_refill_per_sec=*/0.0);

  loadgen::Options load = stack.BaseLoad();
  load.connections = 4;
  load.open_rate_rps = kProvisionedExplainRps * kFloodMultiplier;
  load.duration = std::chrono::milliseconds(2000);
  auto report = loadgen::Run(load);
  CCE_CHECK_OK(report.status());

  FloodResult result;
  result.offered_rps = report->offered_rps;
  result.admitted_rps =
      report->elapsed_s > 0
          ? static_cast<double>(report->ok) / report->elapsed_s
          : 0.0;
  result.shed_fraction =
      report->sent > 0 ? static_cast<double>(report->shed) /
                             static_cast<double>(report->sent)
                       : 0.0;
  result.answered_fraction =
      report->sent > 0 ? static_cast<double>(report->sent -
                                             report->unanswered) /
                             static_cast<double>(report->sent)
                       : 0.0;
  result.retry_after_hints = report->retry_after_hints;
  result.connection_failures = report->connect_failures;
  result.mean_hint_ms =
      report->retry_after_hints > 0
          ? static_cast<double>(report->retry_after_ms_total) /
                static_cast<double>(report->retry_after_hints)
          : 0.0;
  stack.server->Stop();
  return result;
}

int Main() {
  const SustainedResult sustained = RunSustained();
  const FloodResult flood = RunFlood();

  std::printf("{\n");
  std::printf(
      "  \"note\": \"Network front end over loopback (bench_net, "
      "RelWithDebInfo, in-process loadgen). sustained: closed-loop "
      "pipelined Explain-only traffic (2 connections, window 256) over a "
      "%zu-instance pool against a %zu-row context with the explanation "
      "cache armed, medians of %d runs after a warm-up pass — the cached "
      "ladder rung at wire speed; >= 100k req/s is the acceptance floor. "
      "flood20x: open-loop arrivals at %.0fx the provisioned Explain "
      "rate (token bucket refill %.0f/s, burst 50) for 2s; the server "
      "answers every request — admitted ones with keys, the rest with "
      "typed RESOURCE_EXHAUSTED sheds carrying retry_after_ms hints — "
      "and drops no connection (answered_fraction pins it).\",\n",
      kPoolSize, kContextRows, kSustainedRuns, kFloodMultiplier,
      kProvisionedExplainRps);
  std::printf("  \"machine\": {\n");
  std::printf("    \"num_cpus\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("    \"mhz_per_cpu\": 2100,\n");
  std::printf(
      "    \"caveat\": \"shared 1-core container: server loop, workers "
      "and loadgen threads timeslice one CPU, so sustained throughput "
      "understates a real deployment (client and server each pay the "
      "other's cycles); the flood ratios are schedule-independent.\"\n");
  std::printf("  },\n");
  std::printf("  \"benchmarks\": [\n");
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/sustained/achieved_rps\""
      ",\n      \"ratio\": %.1f,\n      \"acceptance_floor\": 100000.0\n"
      "    },\n",
      sustained.rps);
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/sustained/p50\",\n"
      "      \"median_real_time_ns\": %.1f\n    },\n",
      static_cast<double>(sustained.p50_us) * 1000.0);
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/sustained/p99\",\n"
      "      \"median_real_time_ns\": %.1f\n    },\n",
      static_cast<double>(sustained.p99_us) * 1000.0);
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/sustained/"
      "cached_fraction\",\n      \"ratio\": %.4f,\n"
      "      \"acceptance_floor\": 0.9\n    },\n",
      sustained.cached_fraction);
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/flood20x/offered_rps\""
      ",\n      \"ratio\": %.1f\n    },\n",
      flood.offered_rps);
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/flood20x/admitted_rps\""
      ",\n      \"ratio\": %.1f\n    },\n",
      flood.admitted_rps);
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/flood20x/shed_fraction\""
      ",\n      \"ratio\": %.4f,\n      \"acceptance_floor\": 0.5\n"
      "    },\n",
      flood.shed_fraction);
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/flood20x/"
      "answered_fraction\",\n      \"ratio\": %.4f,\n"
      "      \"acceptance_floor\": 1.0\n    },\n",
      flood.answered_fraction);
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/flood20x/"
      "retry_after_hints\",\n      \"ratio\": %.1f,\n"
      "      \"acceptance_floor\": 1.0\n    },\n",
      static_cast<double>(flood.retry_after_hints));
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/flood20x/mean_hint_ms\""
      ",\n      \"ratio\": %.2f\n    },\n",
      flood.mean_hint_ms);
  std::printf(
      "    {\n      \"name\": \"NetServer_Explain/flood20x/"
      "connection_failures\",\n      \"ratio\": %.1f\n    }\n",
      static_cast<double>(flood.connection_failures));
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace cce::net

int main() { return cce::net::Main(); }
