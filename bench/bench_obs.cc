// The cost of observability (DESIGN.md §9): Predict through a fully
// instrumented proxy vs the same proxy with the registry write path
// disabled and with tracing off — the difference is the per-request price
// of metrics + traces, which the design requires to stay under 1% on the
// Predict hot path. Also micro-costs of the primitives themselves
// (sharded counter increment, histogram observe, single vs multi-thread).

#include <benchmark/benchmark.h>

#include <chrono>

#include "common/logging.h"
#include "obs/metrics.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return static_cast<Label>(x.empty() ? 0 : x[0] % 2);
  }
};

/// A backend that costs what production backends cost: tens of microseconds
/// of real computation per call (GBDT forest inference, feature hashing, or
/// the cheap end of a remote endpoint round trip). The <1% overhead claim in
/// DESIGN.md §9 is measured against this, not against the nanosecond parity
/// toy above — dividing a fixed ~400 ns instrumentation cost by an
/// unrealistically cheap Predict would only prove the baseline is fake.
class BusyModel : public Model {
 public:
  explicit BusyModel(int iterations) : iterations_(iterations) {}
  Label Predict(const Instance& x) const override {
    uint64_t h = x.empty() ? 1 : static_cast<uint64_t>(x[0]) + 1;
    for (int i = 0; i < iterations_; ++i) {
      h ^= h << 13;
      h ^= h >> 7;
      h ^= h << 17;
    }
    benchmark::DoNotOptimize(h);
    return static_cast<Label>(h % 2);
  }

 private:
  int iterations_;
};

ExplainableProxy::Options FastOptions() {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.sleep = [](std::chrono::milliseconds) {};
  // A bounded window keeps the context deque from growing across the whole
  // bench run (allocation noise would swamp the instrumentation delta).
  options.context_capacity = 1024;
  return options;
}

void PredictLoop(benchmark::State& state, const Model& model,
                 const ExplainableProxy::Options& options) {
  Dataset data = testing::RandomContext(4096, 12, 6, 42);
  auto proxy = ExplainableProxy::Create(data.schema_ptr(), &model, options);
  CCE_CHECK_OK(proxy.status());
  size_t row = 0;
  for (auto _ : state) {
    auto served = (*proxy)->Predict(data.instance(row));
    benchmark::DoNotOptimize(served);
    row = row + 1 < data.size() ? row + 1 : 0;
  }
}

ExplainableProxy::Options ObservabilityOff(ExplainableProxy::Options options) {
  auto registry = std::make_shared<obs::Registry>();
  registry->set_enabled(false);
  options.observability.registry = registry;
  options.observability.trace_capacity = 0;
  return options;
}

/// Baseline: everything on (the shipped default) — metrics + trace ring —
/// over a deliberately free backend, so the absolute instrumentation cost
/// is the whole measurement.
void BM_Predict_Instrumented(benchmark::State& state) {
  PredictLoop(state, ParityModel(), FastOptions());
}
BENCHMARK(BM_Predict_Instrumented);

/// Registry writes disabled (every Increment/Observe is one relaxed load +
/// branch); tracing still on. Isolates the metric-write cost.
void BM_Predict_RegistryDisabled(benchmark::State& state) {
  ExplainableProxy::Options options = FastOptions();
  auto registry = std::make_shared<obs::Registry>();
  registry->set_enabled(false);
  options.observability.registry = registry;
  PredictLoop(state, ParityModel(), options);
}
BENCHMARK(BM_Predict_RegistryDisabled);

/// Tracing off, metrics on. Isolates the trace commit cost.
void BM_Predict_NoTracing(benchmark::State& state) {
  ExplainableProxy::Options options = FastOptions();
  options.observability.trace_capacity = 0;
  PredictLoop(state, ParityModel(), options);
}
BENCHMARK(BM_Predict_NoTracing);

/// Everything off: disabled registry and no ring — the floor the absolute
/// overhead numbers are measured against.
void BM_Predict_ObservabilityOff(benchmark::State& state) {
  PredictLoop(state, ParityModel(), ObservabilityOff(FastOptions()));
}
BENCHMARK(BM_Predict_ObservabilityOff);

// ~50 µs of real backend work per call on this hardware; the pair below is
// the honest denominator for the <1% requirement.
constexpr int kRealisticBackendIters = 30000;

/// Fully instrumented Predict over a realistically priced backend.
void BM_Predict_RealisticBackend_Instrumented(benchmark::State& state) {
  PredictLoop(state, BusyModel(kRealisticBackendIters), FastOptions());
}
BENCHMARK(BM_Predict_RealisticBackend_Instrumented);

/// Same backend, observability fully off. overhead% =
/// (Instrumented - Off) / Off from this pair.
void BM_Predict_RealisticBackend_Off(benchmark::State& state) {
  PredictLoop(state, BusyModel(kRealisticBackendIters),
              ObservabilityOff(FastOptions()));
}
BENCHMARK(BM_Predict_RealisticBackend_Off);

// ------------------------------------------------------ primitive costs

void BM_CounterIncrement(benchmark::State& state) {
  static obs::Registry* registry = new obs::Registry();
  obs::Counter* counter = registry->GetCounter("bench_total", "bench");
  for (auto _ : state) {
    counter->Increment();
  }
}
BENCHMARK(BM_CounterIncrement)->Threads(1)->Threads(4)->Threads(8);

void BM_CounterIncrementDisabled(benchmark::State& state) {
  static obs::Registry* registry = [] {
    auto* r = new obs::Registry();
    r->set_enabled(false);
    return r;
  }();
  obs::Counter* counter = registry->GetCounter("bench_total", "bench");
  for (auto _ : state) {
    counter->Increment();
  }
}
BENCHMARK(BM_CounterIncrementDisabled);

void BM_HistogramObserve(benchmark::State& state) {
  static obs::Registry* registry = new obs::Registry();
  obs::Histogram* histogram = registry->GetHistogram("bench_us", "bench");
  int64_t value = 0;
  for (auto _ : state) {
    histogram->Observe(value);
    value = (value + 97) % 100000;
  }
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(4)->Threads(8);

}  // namespace
}  // namespace cce::serving

BENCHMARK_MAIN();
