// Overload-protection benchmark (DESIGN.md §8): a latency-critical Predict
// stream racing an Explain flood at 1x / 5x / 20x offered load, with the
// admission layer off (every Explain runs, oversubscribing the machine) and
// on (rate limits + AIMD concurrency + CoDel shed the excess). Reported per
// scenario: Predict p50/p99, goodput (successful operations per second),
// Explain successes, and sheds — the acceptance story is that at 20x with
// shedding Predict p99 stays near its unloaded value and goodput beats the
// no-shedding run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/logging.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

using std::chrono::steady_clock;

class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return static_cast<Label>(x.empty() ? 0 : x[0] % 2);
  }
};

/// Context large enough that one Explain is ~milliseconds of key search:
/// expensive relative to Predict, cheap enough to flood.
Dataset& BenchContext() {
  static Dataset data = testing::RandomContext(8192, 12, 4, 42, /*noise=*/0.0);
  return data;
}

ExplainableProxy::Options ScenarioOptions(bool shedding) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.sleep = [](std::chrono::milliseconds) {};
  options.context_capacity = 2048;
  if (shedding) {
    options.overload.enabled = true;
    // Sustained Explain budget well under the flood's offered rate: the
    // point of admission control is to spend a bounded slice of the
    // machine on sheddable work and keep the rest for Predict.
    options.overload.explain_bucket.refill_per_sec = 50.0;
    options.overload.explain_bucket.burst = 8.0;
    options.overload.max_queue = 8;
    // One in-flight search: on the 2-core bench box a second concurrent
    // Explain would contend directly with the Predict stream.
    options.overload.concurrency.initial = 1;
    options.overload.concurrency.max = 1;
    options.overload.concurrency.latency_target = std::chrono::milliseconds(20);
  }
  return options;
}

int64_t Percentile(std::vector<int64_t>* xs, double p) {
  if (xs->empty()) return 0;
  std::sort(xs->begin(), xs->end());
  const size_t idx = std::min(
      xs->size() - 1, static_cast<size_t>(p * static_cast<double>(xs->size())));
  return (*xs)[idx];
}

/// One offered-load scenario: `explain_threads` flooding Explain while one
/// thread issues `kPredicts` predictions and records per-call latency.
void BM_OverloadScenario(benchmark::State& state) {
  const int explain_threads = static_cast<int>(state.range(0));
  const bool shedding = state.range(1) != 0;
  Dataset& data = BenchContext();
  ParityModel model;
  constexpr int kPredicts = 1500;

  std::vector<int64_t> predict_ns;
  uint64_t predict_ok = 0, explain_ok = 0, explain_calls = 0;
  double elapsed_s = 0.0;
  HealthSnapshot health;

  for (auto _ : state) {
    auto proxy = ExplainableProxy::Create(data.schema_ptr(), &model,
                                          ScenarioOptions(shedding));
    CCE_CHECK_OK(proxy.status());
    for (size_t row = 0; row < 2048; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data.instance(row), data.label(row)));
    }
    predict_ns.clear();
    predict_ns.reserve(kPredicts);
    predict_ok = explain_ok = explain_calls = 0;

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> flood_ok{0}, flood_calls{0};
    std::vector<std::thread> flood;
    for (int t = 0; t < explain_threads; ++t) {
      flood.emplace_back([&, t] {
        size_t row = static_cast<size_t>(t) * 97;
        while (!stop.load(std::memory_order_relaxed)) {
          row = (row + 1) % 2048;
          auto key = (*proxy)->Explain(data.instance(row), data.label(row));
          flood_calls.fetch_add(1, std::memory_order_relaxed);
          if (key.ok()) {
            flood_ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            // A well-behaved client backs off by the shed's retry hint
            // (capped so the scenario keeps offering load).
            const int64_t hint = ParseRetryAfterMs(key.status());
            if (hint > 0) {
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(std::min<int64_t>(hint, 10)));
            }
          }
        }
      });
    }

    // Paced Predict stream (~50us inter-arrival) so the latency samples
    // span the whole flood, not just its first instant.
    const steady_clock::time_point begin = steady_clock::now();
    for (int i = 0; i < kPredicts; ++i) {
      const Instance& x = data.instance(static_cast<size_t>(i) % data.size());
      const steady_clock::time_point t0 = steady_clock::now();
      auto served = (*proxy)->Predict(x);
      const steady_clock::time_point t1 = steady_clock::now();
      predict_ns.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
      if (served.ok()) ++predict_ok;
      const steady_clock::time_point next =
          t0 + std::chrono::microseconds(50);
      while (steady_clock::now() < next) std::this_thread::yield();
    }
    elapsed_s = std::chrono::duration<double>(steady_clock::now() - begin)
                    .count();
    stop.store(true);
    for (auto& thread : flood) thread.join();
    explain_ok = flood_ok.load();
    explain_calls = flood_calls.load();
    health = (*proxy)->Health();
    benchmark::DoNotOptimize(health);
  }

  state.counters["predict_p50_us"] =
      static_cast<double>(Percentile(&predict_ns, 0.50)) / 1000.0;
  state.counters["predict_p99_us"] =
      static_cast<double>(Percentile(&predict_ns, 0.99)) / 1000.0;
  state.counters["goodput_ops_s"] =
      elapsed_s > 0.0
          ? static_cast<double>(predict_ok + explain_ok) / elapsed_s
          : 0.0;
  state.counters["explain_ok"] = static_cast<double>(explain_ok);
  state.counters["explain_offered"] = static_cast<double>(explain_calls);
  state.counters["sheds"] = static_cast<double>(
      health.shed_rate_limited + health.shed_queue_full +
      health.shed_deadline_unmeetable + health.shed_queue_deadline +
      health.shed_codel);
  state.counters["cache_served"] =
      static_cast<double>(health.cache_served_explains);
}
// {explain-thread multiplier, shedding}. Multiplier 0 = unloaded baseline.
BENCHMARK(BM_OverloadScenario)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({5, 0})
    ->Args({20, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({5, 1})
    ->Args({20, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

/// Admission-layer overhead on the cheap path: Predict with the controller
/// enabled but unlimited must cost within noise of the unchecked fast path.
void BM_PredictAdmissionOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  Dataset& data = BenchContext();
  ParityModel model;
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.context_capacity = 1024;
  options.overload.enabled = enabled;
  auto proxy = ExplainableProxy::Create(data.schema_ptr(), &model, options);
  CCE_CHECK_OK(proxy.status());
  size_t row = 0;
  for (auto _ : state) {
    auto served = (*proxy)->Predict(data.instance(row));
    benchmark::DoNotOptimize(served);
    row = row + 1 < data.size() ? row + 1 : 0;
  }
}
BENCHMARK(BM_PredictAdmissionOverhead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace cce::serving

BENCHMARK_MAIN();
