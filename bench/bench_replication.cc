// Google-benchmark coverage for WAL-shipping replication: follower
// bootstrap catch-up throughput as a function of shipped log length,
// steady-state incremental tailing (ship + catch-up per write batch), and
// follower Explain latency against the leader's — the read path is shared
// (serving/read_path.h), so any replica-side overhead is view assembly,
// not search.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "io/env.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

constexpr size_t kShards = 4;

std::string BenchDir(const std::string& name) {
  return "/tmp/cce_bench_replication." + name;
}

void CleanDir(const std::string& dir) {
  std::vector<std::string> names;
  if (io::Env::Default()->ListDir(dir, &names).ok()) {
    for (const std::string& entry : names) {
      (void)io::Env::Default()->RemoveFile(dir + "/" + entry);
    }
  }
}

std::unique_ptr<ExplainableProxy> MakeLeader(const Dataset& data,
                                             const std::string& dir,
                                             size_t capacity) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.shards = kShards;
  options.context_capacity = capacity;
  options.durability.dir = dir;
  options.durability.sync_every = 0;  // fixture build speed, not fsync cost
  options.durability.compact_threshold_bytes = 1ull << 40;
  auto proxy = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  CCE_CHECK_OK(proxy.status());
  return std::move(proxy).value();
}

/// Bootstrap catch-up: a fresh follower applies a shipped directory of
/// Arg records (snapshot-free, pure WAL replay + digest verification).
/// items/s = records applied per second.
void BM_ReplicaCatchUp_Bootstrap(benchmark::State& state) {
  const size_t records = static_cast<size_t>(state.range(0));
  const std::string tag = "boot." + std::to_string(records);
  const std::string leader_dir = BenchDir(tag + ".leader");
  const std::string ship_dir = BenchDir(tag + ".ship");
  CleanDir(leader_dir);
  CleanDir(ship_dir);
  Dataset data = cce::testing::RandomContext(records, 8, 5, 42);
  auto leader = MakeLeader(data, leader_dir, 0);
  for (size_t row = 0; row < data.size(); ++row) {
    CCE_CHECK_OK(leader->Record(data.instance(row), data.label(row)));
  }
  ShardLogShipper::Options ship_options;
  ship_options.source_dir = leader_dir;
  ship_options.ship_dir = ship_dir;
  ship_options.shards = kShards;
  ShardLogShipper shipper(ship_options);
  CCE_CHECK_OK(shipper.Ship(leader->PublishedSequence()));

  for (auto _ : state) {
    ReplicaProxy::Options options;
    options.ship_dir = ship_dir;
    auto replica = ReplicaProxy::Create(data.schema_ptr(), options);
    CCE_CHECK_OK(replica.status());
    CCE_CHECK((*replica)->published_seq() == records);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records));
  CleanDir(leader_dir);
  CleanDir(ship_dir);
}
BENCHMARK(BM_ReplicaCatchUp_Bootstrap)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// Steady-state tailing: each iteration records a batch on the leader,
/// ships it, and catches the follower up — the full leader-to-replica
/// pipeline per batch. items/s = replicated records per second.
void BM_ReplicaCatchUp_Incremental(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const std::string tag = "tail." + std::to_string(batch);
  const std::string leader_dir = BenchDir(tag + ".leader");
  const std::string ship_dir = BenchDir(tag + ".ship");
  CleanDir(leader_dir);
  CleanDir(ship_dir);
  Dataset data = cce::testing::RandomContext(4096, 8, 5, 42);
  auto leader = MakeLeader(data, leader_dir, /*capacity=*/4096);
  ShardLogShipper::Options ship_options;
  ship_options.source_dir = leader_dir;
  ship_options.ship_dir = ship_dir;
  ship_options.shards = kShards;
  ShardLogShipper shipper(ship_options);
  CCE_CHECK_OK(shipper.Ship(leader->PublishedSequence()));
  ReplicaProxy::Options replica_options;
  replica_options.ship_dir = ship_dir;
  replica_options.context_capacity = 4096;
  auto replica = ReplicaProxy::Create(data.schema_ptr(), replica_options);
  CCE_CHECK_OK(replica.status());

  size_t row = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      CCE_CHECK_OK(leader->Record(data.instance(row), data.label(row)));
      row = row + 1 < data.size() ? row + 1 : 0;
    }
    CCE_CHECK_OK(shipper.Ship(leader->PublishedSequence()));
    CCE_CHECK_OK((*replica)->CatchUp());
  }
  CCE_CHECK((*replica)->published_seq() == leader->PublishedSequence());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  CleanDir(leader_dir);
  CleanDir(ship_dir);
}
BENCHMARK(BM_ReplicaCatchUp_Incremental)->Arg(64)->Arg(512);

/// Explain latency over the same 2048-row view: Arg 0 = leader, 1 =
/// caught-up follower. Identical keys by construction; the delta is the
/// cost of the replica's view assembly vs the leader's shard merge.
void BM_Explain_LeaderVsReplica(benchmark::State& state) {
  static std::unique_ptr<Dataset> data;
  static std::unique_ptr<ExplainableProxy> leader;
  static std::unique_ptr<ReplicaProxy> replica;
  const std::string leader_dir = BenchDir("explain.leader");
  const std::string ship_dir = BenchDir("explain.ship");
  if (data == nullptr) {
    CleanDir(leader_dir);
    CleanDir(ship_dir);
    data = std::make_unique<Dataset>(
        cce::testing::RandomContext(2048, 8, 5, 42));
    leader = MakeLeader(*data, leader_dir, 0);
    for (size_t row = 0; row < data->size(); ++row) {
      CCE_CHECK_OK(leader->Record(data->instance(row), data->label(row)));
    }
    ShardLogShipper::Options ship_options;
    ship_options.source_dir = leader_dir;
    ship_options.ship_dir = ship_dir;
    ship_options.shards = kShards;
    ShardLogShipper shipper(ship_options);
    CCE_CHECK_OK(shipper.Ship(leader->PublishedSequence()));
    ReplicaProxy::Options replica_options;
    replica_options.ship_dir = ship_dir;
    auto created = ReplicaProxy::Create(data->schema_ptr(), replica_options);
    CCE_CHECK_OK(created.status());
    replica = std::move(created).value();
    CCE_CHECK(replica->published_seq() == data->size());
  }
  const bool on_replica = state.range(0) == 1;
  size_t probe = 0;
  for (auto _ : state) {
    auto key = on_replica
                   ? replica->Explain(data->instance(probe),
                                      data->label(probe))
                   : leader->Explain(data->instance(probe),
                                     data->label(probe));
    CCE_CHECK_OK(key.status());
    benchmark::DoNotOptimize(key->key);
    probe = probe + 7 < data->size() ? probe + 7 : 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (on_replica) {  // Arg(1) runs last: tear down the statics
    replica.reset();
    leader.reset();
    data.reset();
    CleanDir(leader_dir);
    CleanDir(ship_dir);
  }
}
BENCHMARK(BM_Explain_LeaderVsReplica)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cce::serving

BENCHMARK_MAIN();
