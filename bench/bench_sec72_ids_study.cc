// Section 7.2 (pattern-level explanations): IDS summarising Loan with 8
// rules fails to explain a given instance x0; the unrestricted run mines
// orders of magnitude more rules (slowly) before one covers x0 in the same
// shape as the relative key.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/srk.h"
#include "data/generators.h"
#include "explain/ids.h"
#include "ml/gbdt.h"

int main() {
  using namespace cce;
  using namespace cce::bench;
  PrintBanner("Pattern-level explanation (IDS) vs relative keys on Loan",
              "Section 7.2, case study");

  data::LoanOptions loan_options;
  loan_options.seed = 11;
  Dataset loan = data::GenerateLoan(loan_options);
  Rng rng(11);
  auto [train, inference] = loan.Split(0.7, &rng);
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 60;
  auto model = ml::Gbdt::Train(train, gbdt_options);
  CCE_CHECK_OK(model.status());
  Context context = (*model)->MakeContext(inference);

  // IDS summarises the labelled prediction dataset (a global method).
  explain::Ids::Options small_options;
  small_options.max_rules = 8;
  small_options.overlap_penalty = 0.1;
  Timer timer;
  auto small = explain::Ids::Summarize(context, small_options);
  double small_ms = timer.ElapsedMillis();
  CCE_CHECK_OK(small.status());
  std::printf("\n8-rule IDS summary (%.1f ms):\n", small_ms);
  for (const auto& rule : small->rules()) {
    std::printf("  %s  [coverage %zu, precision %.2f]\n",
                rule.ToString(loan.schema()).c_str(), rule.coverage,
                rule.precision);
  }

  // How many inference instances does the 8-rule summary explain?
  size_t unexplained = 0;
  for (size_t row = 0; row < context.size(); ++row) {
    int rule = small->CoveringRule(context.instance(row));
    if (rule < 0 || small->rules()[static_cast<size_t>(rule)].consequent !=
                        context.label(row)) {
      ++unexplained;
    }
  }
  std::printf(
      "\n%zu of %zu inference instances are NOT explained by the 8-rule "
      "summary.\n",
      unexplained, context.size());

  // Unrestricted IDS: every mined rule, as in the paper's second run.
  explain::Ids::Options full_options;
  full_options.max_rules = 0;
  full_options.min_support = 0.005;
  full_options.max_antecedent = 3;
  timer.Restart();
  auto full = explain::Ids::Summarize(context, full_options);
  double full_ms = timer.ElapsedMillis();
  CCE_CHECK_OK(full.status());
  std::printf(
      "Unrestricted IDS mined %zu rules in %.1f ms (%.0fx more rules, "
      "%.1fx slower).\n",
      full->rules().size(), full_ms,
      static_cast<double>(full->rules().size()) /
          static_cast<double>(small->rules().size()),
      full_ms / std::max(small_ms, 1e-6));

  // Pick an x0 the small summary fails on and show the relative key.
  for (size_t row = 0; row < context.size(); ++row) {
    int rule = small->CoveringRule(context.instance(row));
    bool explained =
        rule >= 0 && small->rules()[static_cast<size_t>(rule)].consequent ==
                         context.label(row);
    if (explained) continue;
    auto key = Srk::Explain(context, row, {});
    CCE_CHECK_OK(key.status());
    std::printf(
        "\nExample x0 (row %zu, prediction %s): no correct covering rule "
        "in the 8-rule summary.\nIts relative key %s was computed "
        "directly, per instance, in microseconds.\n",
        row, loan.schema().LabelName(context.label(row)).c_str(),
        FeatureSetToString(key->key, loan.schema().FeatureNames())
            .c_str());
    // Look for an unrestricted rule that covers x0 *and* agrees with its
    // prediction — the paper found one identical to the relative key.
    for (const auto& candidate : full->rules()) {
      if (candidate.consequent == context.label(row) &&
          candidate.Matches(context.instance(row))) {
        std::printf("The unrestricted rule set does explain x0: %s\n",
                    candidate.ToString(loan.schema()).c_str());
        break;
      }
    }
    break;
  }
  std::printf(
      "\nPaper shape: small global summaries cannot target a given "
      "instance; unrestricted mining\ncan, but at orders-of-magnitude "
      "higher cost than a relative key.\n");
  return 0;
}
