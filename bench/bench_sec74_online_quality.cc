// Section 7.4 (Quality and efficiency): per-arrival update cost and final
// key succinctness of the two online algorithms, OSRK and SSRK, when the
// full inference set is streamed one instance per step.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/osrk.h"
#include "core/ssrk.h"
#include "data/generators.h"

namespace cce::bench {
namespace {

struct OnlineResult {
  double osrk_us_per_update = 0.0;
  double ssrk_us_per_update = 0.0;
  double osrk_size = 0.0;
  double ssrk_size = 0.0;
};

OnlineResult RunDataset(const std::string& dataset) {
  using namespace cce;
  WorkbenchOptions options;
  options.explain_count = 10;
  if (dataset == "Adult") options.rows_override = 9000;
  Workbench bench = MakeWorkbench(dataset, options);

  OnlineResult out;
  size_t total_updates = 0;
  for (size_t i = 0; i < bench.explain_rows.size(); ++i) {
    size_t target = bench.explain_rows[i];
    Osrk::Options osrk_options;
    osrk_options.seed = i;
    auto osrk = Osrk::Create(bench.schema, bench.context.instance(target),
                             bench.context.label(target), osrk_options);
    CCE_CHECK_OK(osrk.status());
    // SSRK additionally receives the full inference set as its universe.
    auto ssrk = Ssrk::Create(bench.context, bench.context.instance(target),
                             bench.context.label(target), {});
    CCE_CHECK_OK(ssrk.status());

    Timer osrk_timer;
    for (size_t row = 0; row < bench.context.size(); ++row) {
      if (row == target) continue;
      (*osrk)->Observe(bench.context.instance(row),
                       bench.context.label(row));
    }
    out.osrk_us_per_update += osrk_timer.ElapsedMicros();

    Timer ssrk_timer;
    for (size_t row = 0; row < bench.context.size(); ++row) {
      if (row == target) continue;
      (*ssrk)->Observe(bench.context.instance(row),
                       bench.context.label(row));
    }
    out.ssrk_us_per_update += ssrk_timer.ElapsedMicros();

    out.osrk_size += static_cast<double>((*osrk)->key().size());
    out.ssrk_size += static_cast<double>((*ssrk)->key().size());
    total_updates += bench.context.size() - 1;
  }
  double monitors = static_cast<double>(bench.explain_rows.size());
  out.osrk_us_per_update /= static_cast<double>(total_updates);
  out.ssrk_us_per_update /= static_cast<double>(total_updates);
  out.osrk_size /= monitors;
  out.ssrk_size /= monitors;
  return out;
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Online explanation monitoring: OSRK vs SSRK",
              "Section 7.4 (Quality and efficiency)");
  PrintHeader("dataset", {"OSRK us/upd", "SSRK us/upd", "OSRK size",
                          "SSRK size"});
  double osrk_us = 0.0, ssrk_us = 0.0, osrk_size = 0.0, ssrk_size = 0.0;
  int count = 0;
  for (const std::string& dataset : cce::data::GeneralDatasetNames()) {
    OnlineResult r = RunDataset(dataset);
    PrintRow(dataset, {r.osrk_us_per_update, r.ssrk_us_per_update,
                       r.osrk_size, r.ssrk_size},
             "%12.2f");
    osrk_us += r.osrk_us_per_update;
    ssrk_us += r.ssrk_us_per_update;
    osrk_size += r.osrk_size;
    ssrk_size += r.ssrk_size;
    ++count;
  }
  std::printf(
      "\nAverages: OSRK %.2f us/update (paper: ~20 us), SSRK %.2f "
      "us/update (paper: ~30 us);\nsuccinctness OSRK %.1f vs SSRK %.1f "
      "(paper: 4.9 vs 4.0 — SSRK more succinct).\n",
      osrk_us / count, ssrk_us / count, osrk_size / count,
      ssrk_size / count);
  return 0;
}
