// Google-benchmark coverage for the serving fault-tolerance layer: proxy
// Predict overhead against a healthy backend, retry cost under transient
// fault rates, fail-fast latency with an open breaker, and deadline-bounded
// (degraded) Explain against the unbounded search.

#include <benchmark/benchmark.h>

#include <chrono>

#include "common/deadline.h"
#include "common/logging.h"
#include "serving/fault_model.h"
#include "serving/proxy.h"
#include "serving/resilience.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

/// Cheap deterministic backend so the bench isolates proxy overhead from
/// model inference cost.
class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return static_cast<Label>(x.empty() ? 0 : x[0] % 2);
  }
};

ExplainableProxy::Options FastOptions() {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.sleep = [](std::chrono::milliseconds) {};  // no real backoff waits
  return options;
}

void BM_ProxyPredict_Healthy(benchmark::State& state) {
  Dataset data = testing::RandomContext(4096, 12, 6, 42);
  ParityModel model;
  auto proxy =
      ExplainableProxy::Create(data.schema_ptr(), &model, FastOptions());
  CCE_CHECK_OK(proxy.status());
  size_t row = 0;
  for (auto _ : state) {
    auto served = (*proxy)->Predict(data.instance(row));
    benchmark::DoNotOptimize(served);
    row = row + 1 < data.size() ? row + 1 : 0;
  }
}
BENCHMARK(BM_ProxyPredict_Healthy);

void BM_ProxyPredict_TransientFaults(benchmark::State& state) {
  Dataset data = testing::RandomContext(4096, 12, 6, 42);
  ParityModel model;
  FaultInjectingModel::Options fault_options;
  fault_options.failure_rate =
      static_cast<double>(state.range(0)) / 100.0;
  FaultInjectingModel flaky(&model, fault_options);
  ExplainableProxy::Options options = FastOptions();
  options.retry.max_attempts = 8;
  auto proxy = ExplainableProxy::CreateWithEndpoint(data.schema_ptr(),
                                                    &flaky, options);
  CCE_CHECK_OK(proxy.status());
  size_t row = 0;
  for (auto _ : state) {
    auto served = (*proxy)->Predict(data.instance(row));
    benchmark::DoNotOptimize(served);
    row = row + 1 < data.size() ? row + 1 : 0;
  }
  state.counters["retries"] = static_cast<double>((*proxy)->Health().retries);
}
BENCHMARK(BM_ProxyPredict_TransientFaults)->Arg(0)->Arg(10)->Arg(30);

void BM_ProxyPredict_BreakerOpenFailFast(benchmark::State& state) {
  Dataset data = testing::RandomContext(1024, 12, 6, 42);
  ParityModel model;
  FaultInjectingModel::Options fault_options;
  fault_options.fail_forever = true;
  FaultInjectingModel dead(&model, fault_options);
  ExplainableProxy::Options options = FastOptions();
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 1;
  options.breaker.open_cooldown = std::chrono::hours(24);
  auto proxy = ExplainableProxy::CreateWithEndpoint(data.schema_ptr(),
                                                    &dead, options);
  CCE_CHECK_OK(proxy.status());
  (void)(*proxy)->Predict(data.instance(0));  // trip the breaker
  for (auto _ : state) {
    auto served = (*proxy)->Predict(data.instance(0));
    benchmark::DoNotOptimize(served);
  }
}
BENCHMARK(BM_ProxyPredict_BreakerOpenFailFast);

void BM_ProxyExplain_DeadlineBounded(benchmark::State& state) {
  Dataset data = testing::RandomContext(65536, 16, 3, 7, /*noise=*/0.0);
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  auto proxy = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  CCE_CHECK_OK(proxy.status());
  for (size_t row = 0; row < data.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(data.instance(row), data.label(row)));
  }
  const int64_t budget_us = state.range(0);
  size_t degraded = 0, calls = 0;
  for (auto _ : state) {
    Deadline deadline =
        budget_us == 0 ? Deadline::Infinite()
                       : Deadline::After(std::chrono::microseconds(budget_us));
    auto key = (*proxy)->Explain(data.instance(0), data.label(0), deadline);
    benchmark::DoNotOptimize(key);
    ++calls;
    if (key.ok() && key->degraded) ++degraded;
  }
  state.counters["degraded_frac"] =
      calls == 0 ? 0.0
                 : static_cast<double>(degraded) / static_cast<double>(calls);
}
BENCHMARK(BM_ProxyExplain_DeadlineBounded)
    ->Arg(0)       // unbounded baseline
    ->Arg(100)     // 100us: heavy truncation
    ->Arg(1000)    // 1ms
    ->Arg(10000);  // 10ms: usually completes

}  // namespace
}  // namespace cce::serving

BENCHMARK_MAIN();
