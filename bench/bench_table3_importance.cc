// Table 3: feature-importance explanations (LIME / SHAP / GAM scores) for
// the case-study instance x0 of Loan, plus the size-2 feature explanations
// derived from them ([13]) compared with Anchor's and CCE's.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/srk.h"
#include "explain/anchor.h"
#include "explain/explainer.h"
#include "explain/gam.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"

int main() {
  using namespace cce;
  using namespace cce::bench;
  PrintBanner("Feature-importance explanations for x0 in Loan",
              "Table 3 (Section 7.2, case study)");

  WorkbenchOptions options;
  Workbench bench = MakeWorkbench("Loan", options);
  const Schema& schema = *bench.schema;

  // x0: the first denied application in the context.
  Label denied = *schema.LookupLabel("Denied");
  size_t x0_row = 0;
  for (size_t row = 0; row < bench.context.size(); ++row) {
    if (bench.context.label(row) == denied) {
      x0_row = row;
      break;
    }
  }
  const Instance& x0 = bench.context.instance(x0_row);

  std::printf("\nx0:%*s", 4, "");
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    std::printf("%10.9s", schema.ValueName(f, x0[f]).c_str());
  }
  std::printf("   -> %s\n\n%-7s", schema.LabelName(denied).c_str(), "");
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    std::printf("%10.9s", schema.FeatureName(f).c_str());
  }
  std::printf("\n");

  explain::Lime lime(bench.model.get(), &bench.train, {});
  explain::KernelShap shap(bench.model.get(), &bench.train, {});
  auto gam = explain::Gam::Fit(bench.model.get(), &bench.train, {});
  CCE_CHECK_OK(gam.status());

  auto print_scores = [&](const char* name,
                          Result<std::vector<double>> scores) {
    CCE_CHECK_OK(scores.status());
    std::printf("%-7s", name);
    for (double s : *scores) std::printf("%10.2f", s);
    std::printf("\n");
    return *scores;
  };
  auto lime_scores = print_scores("LIME", lime.ImportanceScores(x0));
  auto shap_scores = print_scores("SHAP", shap.ImportanceScores(x0));
  auto gam_scores = print_scores("GAM", (*gam)->ImportanceScores(x0));

  // Derived size-2 feature explanations, per [13].
  auto top2 = [&](const std::vector<double>& scores) {
    std::vector<FeatureId> order = explain::RankByImportance(scores);
    FeatureSet out = {order[0], order[1]};
    std::sort(out.begin(), out.end());
    return out;
  };
  auto names = schema.FeatureNames();
  std::printf("\nDerived size-2 feature explanations:\n");
  std::printf("  LIME   -> %s\n",
              FeatureSetToString(top2(lime_scores), names).c_str());
  std::printf("  SHAP   -> %s\n",
              FeatureSetToString(top2(shap_scores), names).c_str());
  std::printf("  GAM    -> %s\n",
              FeatureSetToString(top2(gam_scores), names).c_str());
  explain::Anchor anchor(bench.model.get(), &bench.train, {});
  auto anchor_key = anchor.ExplainFeatures(x0, 2);
  CCE_CHECK_OK(anchor_key.status());
  std::printf("  Anchor -> %s\n",
              FeatureSetToString(*anchor_key, names).c_str());
  auto cce_key = Srk::Explain(bench.context, x0_row, {});
  CCE_CHECK_OK(cce_key.status());
  std::printf("  CCE    -> %s  (conformity %.0f%%)\n",
              FeatureSetToString(cce_key->key, names).c_str(),
              100.0 * cce_key->achieved_alpha);
  std::printf(
      "\nPaper shape: the importance-derived explanations coincide with "
      "Anchor's and inherit its\nconformity gap; CCE's relative key is "
      "the only one with guaranteed conformity.\n");
  return 0;
}
