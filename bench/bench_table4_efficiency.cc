// Table 4: average time (ms) to explain a single instance, per method and
// dataset. The paper reports CCE fastest by 1-2 orders of magnitude, with
// Xreason slowest.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/srk.h"
#include "data/generators.h"
#include "explain/anchor.h"
#include "explain/gam.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/xreason.h"

namespace cce::bench {
namespace {

void RunDataset(const std::string& dataset) {
  WorkbenchOptions options;
  options.explain_count = 20;
  Workbench bench = MakeWorkbench(dataset, options);

  // Build the explainers up front; per-instance timing excludes one-off
  // construction (Anchor/LIME/SHAP have none; GAM fits a surrogate once,
  // which the paper folds into its default configuration as well).
  explain::Lime lime(bench.model.get(), &bench.train, {});
  explain::KernelShap shap(bench.model.get(), &bench.train, {});
  explain::Anchor anchor(bench.model.get(), &bench.train, {});
  // GAM's dominant cost is fitting the additive surrogate; the paper's
  // per-instance figures include the method's full default pipeline, so we
  // amortise the fit over the explained instances.
  Timer gam_fit_timer;
  auto gam = explain::Gam::Fit(bench.model.get(), &bench.train, {});
  double gam_fit_ms = gam_fit_timer.ElapsedMillis();
  CCE_CHECK_OK(gam.status());
  explain::Xreason xreason(bench.model.get(), bench.schema, {});

  auto time_method = [&](auto&& explain_one, size_t count) {
    Timer timer;
    for (size_t i = 0; i < count; ++i) {
      explain_one(bench.explain_rows[i % bench.explain_rows.size()]);
    }
    return timer.ElapsedMillis() / static_cast<double>(count);
  };

  const size_t rows = bench.explain_rows.size();
  double cce_ms = time_method(
      [&](size_t row) {
        Srk::Options srk_options;
        auto key = Srk::Explain(bench.context, row, srk_options);
        CCE_CHECK_OK(key.status());
      },
      rows);
  double lime_ms = time_method(
      [&](size_t row) {
        CCE_CHECK_OK(
            lime.ImportanceScores(bench.context.instance(row)).status());
      },
      rows);
  double shap_ms = time_method(
      [&](size_t row) {
        CCE_CHECK_OK(
            shap.ImportanceScores(bench.context.instance(row)).status());
      },
      rows);
  double anchor_ms = time_method(
      [&](size_t row) {
        CCE_CHECK_OK(
            anchor.ExplainFeatures(bench.context.instance(row), 0)
                .status());
      },
      rows);
  double gam_ms = gam_fit_ms / static_cast<double>(rows) +
                  time_method(
                      [&](size_t row) {
                        CCE_CHECK_OK((*gam)
                                         ->ImportanceScores(
                                             bench.context.instance(row))
                                         .status());
                      },
                      rows);
  // Xreason is orders of magnitude slower; a smaller sample suffices for a
  // stable mean.
  double xreason_ms = time_method(
      [&](size_t row) {
        CCE_CHECK_OK(
            xreason.ExplainFeatures(bench.context.instance(row), 0)
                .status());
      },
      std::min<size_t>(rows, 8));

  PrintRow(dataset,
           {cce_ms, lime_ms, shap_ms, anchor_ms, gam_ms, xreason_ms},
           "%12.3f");
}

}  // namespace
}  // namespace cce::bench

int main() {
  using namespace cce::bench;
  PrintBanner("Average per-instance explanation time (ms)",
              "Table 4 (Section 7.3, Efficiency)");
  PrintHeader("dataset",
              {"CCE(SRK)", "LIME", "SHAP", "Anchor", "GAM", "Xreason"});
  for (const std::string& dataset :
       cce::data::GeneralDatasetNames()) {
    RunDataset(dataset);
  }
  std::printf(
      "\nPaper shape: CCE is 1-2 orders of magnitude faster than every "
      "baseline;\nXreason is the slowest method on every dataset.\n");
  return 0;
}
