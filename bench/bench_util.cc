#include "bench/bench_util.h"

#include <cstdio>

#include "data/generators.h"

namespace cce::bench {

Workbench MakeWorkbench(const std::string& dataset,
                        const WorkbenchOptions& options) {
  Workbench bench;
  bench.name = dataset;
  Result<Dataset> full =
      data::GenerateByName(dataset, options.seed, options.rows_override);
  CCE_CHECK_OK(full.status());
  bench.schema = full->schema_ptr();

  Rng rng(options.seed);
  auto [train, inference] = full->Split(0.7, &rng);
  bench.train = std::move(train);
  bench.inference = std::move(inference);

  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = options.gbdt_trees;
  gbdt_options.max_depth = options.gbdt_depth;
  gbdt_options.seed = options.seed;
  Result<std::unique_ptr<ml::Gbdt>> model =
      ml::Gbdt::Train(bench.train, gbdt_options);
  CCE_CHECK_OK(model.status());
  bench.model = std::move(model).value();

  bench.context = bench.model->MakeContext(bench.inference);
  size_t count = std::min(options.explain_count, bench.context.size());
  bench.explain_rows =
      rng.SampleWithoutReplacement(bench.context.size(), count);
  return bench;
}

EmWorkbench MakeEmWorkbench(const std::string& dataset,
                            const EmWorkbenchOptions& options) {
  EmWorkbench bench;
  bench.name = dataset;
  Result<em::EmTask> task =
      em::GenerateEmByName(dataset, options.seed, options.pairs_override);
  CCE_CHECK_OK(task.status());
  bench.task = std::move(task).value();

  em::PairFeatureExtractor extractor(bench.task, {});
  Dataset encoded = extractor.EncodeAll(bench.task);
  bench.schema = encoded.schema_ptr();

  Rng rng(options.seed);
  auto [train, inference] = encoded.Split(0.7, &rng);
  bench.train = std::move(train);
  bench.inference = std::move(inference);

  Result<std::unique_ptr<em::SimilarityMatcher>> matcher =
      em::SimilarityMatcher::Train(bench.train, {});
  CCE_CHECK_OK(matcher.status());
  bench.matcher = std::move(matcher).value();

  bench.context = bench.matcher->MakeContext(bench.inference);
  size_t count = std::min(options.explain_count, bench.context.size());
  bench.explain_rows =
      rng.SampleWithoutReplacement(bench.context.size(), count);
  return bench;
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

void PrintHeader(const std::string& label,
                 const std::vector<std::string>& columns, int width) {
  std::printf("%-14s", label.c_str());
  for (const std::string& column : columns) {
    std::printf("%*s", width, column.c_str());
  }
  std::printf("\n");
}

void PrintRow(const std::string& label, const std::vector<double>& values,
              const char* format) {
  std::printf("%-14s", label.c_str());
  for (double value : values) {
    std::printf(format, value);
  }
  std::printf("\n");
}

}  // namespace cce::bench
