#ifndef CCE_BENCH_BENCH_UTIL_H_
#define CCE_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "core/dataset.h"
#include "core/metrics.h"
#include "core/model.h"
#include "em/datasets.h"
#include "em/features.h"
#include "em/matcher.h"
#include "ml/gbdt.h"

namespace cce::bench {

/// Everything one experiment needs for a general-ML dataset: the 70/30
/// split, the trained XGBoost-style model, the client-side inference
/// context, and a sample of rows to explain (Section 7.1 protocol).
struct Workbench {
  std::string name;
  std::shared_ptr<const Schema> schema;
  Dataset train;
  Dataset inference;
  Context context;  // inference instances + model predictions
  std::unique_ptr<ml::Gbdt> model;
  std::vector<size_t> explain_rows;  // context rows sampled for explaining

  Workbench() : train(nullptr), inference(nullptr), context(nullptr) {}
};

struct WorkbenchOptions {
  uint64_t seed = 11;
  size_t rows_override = 0;     // 0 = the paper's dataset size
  size_t explain_count = 30;    // instances sampled for explanation
  int gbdt_trees = 60;
  int gbdt_depth = 5;
};

/// Builds the Section 7.1 pipeline for a paper dataset name.
Workbench MakeWorkbench(const std::string& dataset,
                        const WorkbenchOptions& options);

/// The EM counterpart: encoded pairs, matcher, context (Section 7.5).
struct EmWorkbench {
  std::string name;
  em::EmTask task;
  std::shared_ptr<const Schema> schema;
  Dataset train;
  Dataset inference;
  Context context;
  std::unique_ptr<em::SimilarityMatcher> matcher;
  std::vector<size_t> explain_rows;

  EmWorkbench() : train(nullptr), inference(nullptr), context(nullptr) {}
};

struct EmWorkbenchOptions {
  uint64_t seed = 11;
  size_t pairs_override = 0;
  size_t explain_count = 25;
};

EmWorkbench MakeEmWorkbench(const std::string& dataset,
                            const EmWorkbenchOptions& options);

/// Gathers (x, y, explanation) triples from any explanation callback.
template <typename ExplainFn>
std::vector<ExplainedInstance> ExplainAll(const Context& context,
                                          const std::vector<size_t>& rows,
                                          ExplainFn&& explain) {
  std::vector<ExplainedInstance> out;
  out.reserve(rows.size());
  for (size_t row : rows) {
    out.push_back({context.instance(row), context.label(row),
                   explain(row)});
  }
  return out;
}

/// Prints a header banner for a bench binary.
void PrintBanner(const std::string& title, const std::string& paper_ref);

/// Prints one row of a fixed-width table.
void PrintRow(const std::string& label, const std::vector<double>& values,
              const char* format = "%12.2f");

void PrintHeader(const std::string& label,
                 const std::vector<std::string>& columns, int width = 12);

}  // namespace cce::bench

#endif  // CCE_BENCH_BENCH_UTIL_H_
