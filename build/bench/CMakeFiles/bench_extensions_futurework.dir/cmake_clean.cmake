file(REMOVE_RECURSE
  "CMakeFiles/bench_extensions_futurework.dir/bench_extensions_futurework.cc.o"
  "CMakeFiles/bench_extensions_futurework.dir/bench_extensions_futurework.cc.o.d"
  "bench_extensions_futurework"
  "bench_extensions_futurework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extensions_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
