# Empty compiler generated dependencies file for bench_extensions_futurework.
# This may be replaced when dependencies are built.
