# Empty dependencies file for bench_fig3ab_conformity_precision.
# This may be replaced when dependencies are built.
