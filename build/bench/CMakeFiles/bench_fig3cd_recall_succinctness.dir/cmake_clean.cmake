file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3cd_recall_succinctness.dir/bench_fig3cd_recall_succinctness.cc.o"
  "CMakeFiles/bench_fig3cd_recall_succinctness.dir/bench_fig3cd_recall_succinctness.cc.o.d"
  "bench_fig3cd_recall_succinctness"
  "bench_fig3cd_recall_succinctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3cd_recall_succinctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
