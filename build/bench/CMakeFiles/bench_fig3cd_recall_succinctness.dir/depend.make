# Empty dependencies file for bench_fig3cd_recall_succinctness.
# This may be replaced when dependencies are built.
