file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3e_faithfulness.dir/bench_fig3e_faithfulness.cc.o"
  "CMakeFiles/bench_fig3e_faithfulness.dir/bench_fig3e_faithfulness.cc.o.d"
  "bench_fig3e_faithfulness"
  "bench_fig3e_faithfulness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3e_faithfulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
