# Empty compiler generated dependencies file for bench_fig3e_faithfulness.
# This may be replaced when dependencies are built.
