# Empty compiler generated dependencies file for bench_fig3fg_alpha_tradeoff.
# This may be replaced when dependencies are built.
