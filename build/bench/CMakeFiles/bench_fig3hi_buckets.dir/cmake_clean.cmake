file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3hi_buckets.dir/bench_fig3hi_buckets.cc.o"
  "CMakeFiles/bench_fig3hi_buckets.dir/bench_fig3hi_buckets.cc.o.d"
  "bench_fig3hi_buckets"
  "bench_fig3hi_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3hi_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
