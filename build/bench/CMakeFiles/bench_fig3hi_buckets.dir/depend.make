# Empty dependencies file for bench_fig3hi_buckets.
# This may be replaced when dependencies are built.
