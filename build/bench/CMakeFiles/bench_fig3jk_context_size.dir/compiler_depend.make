# Empty compiler generated dependencies file for bench_fig3jk_context_size.
# This may be replaced when dependencies are built.
