file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3lm_drift_monitor.dir/bench_fig3lm_drift_monitor.cc.o"
  "CMakeFiles/bench_fig3lm_drift_monitor.dir/bench_fig3lm_drift_monitor.cc.o.d"
  "bench_fig3lm_drift_monitor"
  "bench_fig3lm_drift_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3lm_drift_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
