# Empty dependencies file for bench_fig3lm_drift_monitor.
# This may be replaced when dependencies are built.
