file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3nop_em.dir/bench_fig3nop_em.cc.o"
  "CMakeFiles/bench_fig3nop_em.dir/bench_fig3nop_em.cc.o.d"
  "bench_fig3nop_em"
  "bench_fig3nop_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3nop_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
