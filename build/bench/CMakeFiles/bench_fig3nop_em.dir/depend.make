# Empty dependencies file for bench_fig3nop_em.
# This may be replaced when dependencies are built.
