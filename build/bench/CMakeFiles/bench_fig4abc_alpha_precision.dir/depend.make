# Empty dependencies file for bench_fig4abc_alpha_precision.
# This may be replaced when dependencies are built.
