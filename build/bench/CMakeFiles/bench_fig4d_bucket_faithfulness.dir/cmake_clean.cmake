file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4d_bucket_faithfulness.dir/bench_fig4d_bucket_faithfulness.cc.o"
  "CMakeFiles/bench_fig4d_bucket_faithfulness.dir/bench_fig4d_bucket_faithfulness.cc.o.d"
  "bench_fig4d_bucket_faithfulness"
  "bench_fig4d_bucket_faithfulness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4d_bucket_faithfulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
