# Empty compiler generated dependencies file for bench_fig4d_bucket_faithfulness.
# This may be replaced when dependencies are built.
