file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4e_ssrk_context.dir/bench_fig4e_ssrk_context.cc.o"
  "CMakeFiles/bench_fig4e_ssrk_context.dir/bench_fig4e_ssrk_context.cc.o.d"
  "bench_fig4e_ssrk_context"
  "bench_fig4e_ssrk_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4e_ssrk_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
