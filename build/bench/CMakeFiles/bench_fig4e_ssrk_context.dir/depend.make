# Empty dependencies file for bench_fig4e_ssrk_context.
# This may be replaced when dependencies are built.
