# Empty compiler generated dependencies file for bench_fig4fg_dynamic_models.
# This may be replaced when dependencies are built.
