file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4h_window_step.dir/bench_fig4h_window_step.cc.o"
  "CMakeFiles/bench_fig4h_window_step.dir/bench_fig4h_window_step.cc.o.d"
  "bench_fig4h_window_step"
  "bench_fig4h_window_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4h_window_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
