# Empty compiler generated dependencies file for bench_fig4h_window_step.
# This may be replaced when dependencies are built.
