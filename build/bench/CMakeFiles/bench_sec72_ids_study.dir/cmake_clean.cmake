file(REMOVE_RECURSE
  "CMakeFiles/bench_sec72_ids_study.dir/bench_sec72_ids_study.cc.o"
  "CMakeFiles/bench_sec72_ids_study.dir/bench_sec72_ids_study.cc.o.d"
  "bench_sec72_ids_study"
  "bench_sec72_ids_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec72_ids_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
