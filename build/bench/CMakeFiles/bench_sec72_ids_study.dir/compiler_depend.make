# Empty compiler generated dependencies file for bench_sec72_ids_study.
# This may be replaced when dependencies are built.
