file(REMOVE_RECURSE
  "CMakeFiles/bench_sec74_online_quality.dir/bench_sec74_online_quality.cc.o"
  "CMakeFiles/bench_sec74_online_quality.dir/bench_sec74_online_quality.cc.o.d"
  "bench_sec74_online_quality"
  "bench_sec74_online_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec74_online_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
