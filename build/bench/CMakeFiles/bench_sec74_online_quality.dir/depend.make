# Empty dependencies file for bench_sec74_online_quality.
# This may be replaced when dependencies are built.
