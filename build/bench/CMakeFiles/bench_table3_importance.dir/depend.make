# Empty dependencies file for bench_table3_importance.
# This may be replaced when dependencies are built.
