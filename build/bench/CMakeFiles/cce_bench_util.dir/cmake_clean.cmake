file(REMOVE_RECURSE
  "CMakeFiles/cce_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/cce_bench_util.dir/bench_util.cc.o.d"
  "libcce_bench_util.a"
  "libcce_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
