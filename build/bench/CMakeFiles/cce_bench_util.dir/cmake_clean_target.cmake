file(REMOVE_RECURSE
  "libcce_bench_util.a"
)
