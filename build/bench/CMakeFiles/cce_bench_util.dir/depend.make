# Empty dependencies file for cce_bench_util.
# This may be replaced when dependencies are built.
