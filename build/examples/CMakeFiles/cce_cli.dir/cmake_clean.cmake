file(REMOVE_RECURSE
  "CMakeFiles/cce_cli.dir/cce_cli.cpp.o"
  "CMakeFiles/cce_cli.dir/cce_cli.cpp.o.d"
  "cce_cli"
  "cce_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
