# Empty dependencies file for cce_cli.
# This may be replaced when dependencies are built.
