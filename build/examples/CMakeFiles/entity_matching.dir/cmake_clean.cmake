file(REMOVE_RECURSE
  "CMakeFiles/entity_matching.dir/entity_matching.cpp.o"
  "CMakeFiles/entity_matching.dir/entity_matching.cpp.o.d"
  "entity_matching"
  "entity_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entity_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
