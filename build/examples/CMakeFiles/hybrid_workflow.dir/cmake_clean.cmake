file(REMOVE_RECURSE
  "CMakeFiles/hybrid_workflow.dir/hybrid_workflow.cpp.o"
  "CMakeFiles/hybrid_workflow.dir/hybrid_workflow.cpp.o.d"
  "hybrid_workflow"
  "hybrid_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
