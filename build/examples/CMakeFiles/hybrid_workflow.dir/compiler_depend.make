# Empty compiler generated dependencies file for hybrid_workflow.
# This may be replaced when dependencies are built.
