file(REMOVE_RECURSE
  "CMakeFiles/loan_case_study.dir/loan_case_study.cpp.o"
  "CMakeFiles/loan_case_study.dir/loan_case_study.cpp.o.d"
  "loan_case_study"
  "loan_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loan_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
