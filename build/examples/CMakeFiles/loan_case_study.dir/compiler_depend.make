# Empty compiler generated dependencies file for loan_case_study.
# This may be replaced when dependencies are built.
