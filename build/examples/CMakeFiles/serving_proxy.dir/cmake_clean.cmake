file(REMOVE_RECURSE
  "CMakeFiles/serving_proxy.dir/serving_proxy.cpp.o"
  "CMakeFiles/serving_proxy.dir/serving_proxy.cpp.o.d"
  "serving_proxy"
  "serving_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
