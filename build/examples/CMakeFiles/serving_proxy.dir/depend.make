# Empty dependencies file for serving_proxy.
# This may be replaced when dependencies are built.
