# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_entity_matching "/root/repo/build/examples/entity_matching")
set_tests_properties(example_entity_matching PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hybrid_workflow "/root/repo/build/examples/hybrid_workflow")
set_tests_properties(example_hybrid_workflow PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_loan_case_study "/root/repo/build/examples/loan_case_study")
set_tests_properties(example_loan_case_study PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online_monitoring "/root/repo/build/examples/online_monitoring")
set_tests_properties(example_online_monitoring PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_serving_proxy "/root/repo/build/examples/serving_proxy")
set_tests_properties(example_serving_proxy PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cce_cli "/root/repo/build/examples/cce_cli" "--data" "/root/repo/tests/data/fig2_context.csv" "--label" "prediction" "--row" "0" "--alpha" "1.0" "--importance" "--patterns" "5" "--all-keys" "--counterfactual")
set_tests_properties(example_cce_cli PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
