file(REMOVE_RECURSE
  "CMakeFiles/cce_common.dir/csv.cc.o"
  "CMakeFiles/cce_common.dir/csv.cc.o.d"
  "CMakeFiles/cce_common.dir/random.cc.o"
  "CMakeFiles/cce_common.dir/random.cc.o.d"
  "CMakeFiles/cce_common.dir/status.cc.o"
  "CMakeFiles/cce_common.dir/status.cc.o.d"
  "CMakeFiles/cce_common.dir/string_util.cc.o"
  "CMakeFiles/cce_common.dir/string_util.cc.o.d"
  "CMakeFiles/cce_common.dir/thread_pool.cc.o"
  "CMakeFiles/cce_common.dir/thread_pool.cc.o.d"
  "libcce_common.a"
  "libcce_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
