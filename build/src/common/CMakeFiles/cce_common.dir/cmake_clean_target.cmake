file(REMOVE_RECURSE
  "libcce_common.a"
)
