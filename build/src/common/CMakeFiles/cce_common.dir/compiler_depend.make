# Empty compiler generated dependencies file for cce_common.
# This may be replaced when dependencies are built.
