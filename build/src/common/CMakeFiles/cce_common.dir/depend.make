# Empty dependencies file for cce_common.
# This may be replaced when dependencies are built.
