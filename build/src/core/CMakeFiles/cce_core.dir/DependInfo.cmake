
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cce.cc" "src/core/CMakeFiles/cce_core.dir/cce.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/cce.cc.o.d"
  "/root/repo/src/core/conformity.cc" "src/core/CMakeFiles/cce_core.dir/conformity.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/conformity.cc.o.d"
  "/root/repo/src/core/counterfactual.cc" "src/core/CMakeFiles/cce_core.dir/counterfactual.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/counterfactual.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/core/CMakeFiles/cce_core.dir/dataset.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/dataset.cc.o.d"
  "/root/repo/src/core/diagnostics.cc" "src/core/CMakeFiles/cce_core.dir/diagnostics.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/diagnostics.cc.o.d"
  "/root/repo/src/core/discretizer.cc" "src/core/CMakeFiles/cce_core.dir/discretizer.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/discretizer.cc.o.d"
  "/root/repo/src/core/enumerate.cc" "src/core/CMakeFiles/cce_core.dir/enumerate.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/enumerate.cc.o.d"
  "/root/repo/src/core/importance.cc" "src/core/CMakeFiles/cce_core.dir/importance.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/importance.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/cce_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/optimal.cc" "src/core/CMakeFiles/cce_core.dir/optimal.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/optimal.cc.o.d"
  "/root/repo/src/core/osrk.cc" "src/core/CMakeFiles/cce_core.dir/osrk.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/osrk.cc.o.d"
  "/root/repo/src/core/patterns.cc" "src/core/CMakeFiles/cce_core.dir/patterns.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/patterns.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/core/CMakeFiles/cce_core.dir/schema.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/schema.cc.o.d"
  "/root/repo/src/core/srk.cc" "src/core/CMakeFiles/cce_core.dir/srk.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/srk.cc.o.d"
  "/root/repo/src/core/ssrk.cc" "src/core/CMakeFiles/cce_core.dir/ssrk.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/ssrk.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/cce_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/cce_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
