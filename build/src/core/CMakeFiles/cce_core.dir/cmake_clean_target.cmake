file(REMOVE_RECURSE
  "libcce_core.a"
)
