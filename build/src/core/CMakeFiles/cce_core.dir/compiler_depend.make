# Empty compiler generated dependencies file for cce_core.
# This may be replaced when dependencies are built.
