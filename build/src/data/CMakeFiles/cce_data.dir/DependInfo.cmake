
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/adult.cc" "src/data/CMakeFiles/cce_data.dir/adult.cc.o" "gcc" "src/data/CMakeFiles/cce_data.dir/adult.cc.o.d"
  "/root/repo/src/data/compas.cc" "src/data/CMakeFiles/cce_data.dir/compas.cc.o" "gcc" "src/data/CMakeFiles/cce_data.dir/compas.cc.o.d"
  "/root/repo/src/data/drift.cc" "src/data/CMakeFiles/cce_data.dir/drift.cc.o" "gcc" "src/data/CMakeFiles/cce_data.dir/drift.cc.o.d"
  "/root/repo/src/data/gen_util.cc" "src/data/CMakeFiles/cce_data.dir/gen_util.cc.o" "gcc" "src/data/CMakeFiles/cce_data.dir/gen_util.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/cce_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/cce_data.dir/generators.cc.o.d"
  "/root/repo/src/data/german.cc" "src/data/CMakeFiles/cce_data.dir/german.cc.o" "gcc" "src/data/CMakeFiles/cce_data.dir/german.cc.o.d"
  "/root/repo/src/data/loader.cc" "src/data/CMakeFiles/cce_data.dir/loader.cc.o" "gcc" "src/data/CMakeFiles/cce_data.dir/loader.cc.o.d"
  "/root/repo/src/data/loan.cc" "src/data/CMakeFiles/cce_data.dir/loan.cc.o" "gcc" "src/data/CMakeFiles/cce_data.dir/loan.cc.o.d"
  "/root/repo/src/data/recid.cc" "src/data/CMakeFiles/cce_data.dir/recid.cc.o" "gcc" "src/data/CMakeFiles/cce_data.dir/recid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
