file(REMOVE_RECURSE
  "CMakeFiles/cce_data.dir/adult.cc.o"
  "CMakeFiles/cce_data.dir/adult.cc.o.d"
  "CMakeFiles/cce_data.dir/compas.cc.o"
  "CMakeFiles/cce_data.dir/compas.cc.o.d"
  "CMakeFiles/cce_data.dir/drift.cc.o"
  "CMakeFiles/cce_data.dir/drift.cc.o.d"
  "CMakeFiles/cce_data.dir/gen_util.cc.o"
  "CMakeFiles/cce_data.dir/gen_util.cc.o.d"
  "CMakeFiles/cce_data.dir/generators.cc.o"
  "CMakeFiles/cce_data.dir/generators.cc.o.d"
  "CMakeFiles/cce_data.dir/german.cc.o"
  "CMakeFiles/cce_data.dir/german.cc.o.d"
  "CMakeFiles/cce_data.dir/loader.cc.o"
  "CMakeFiles/cce_data.dir/loader.cc.o.d"
  "CMakeFiles/cce_data.dir/loan.cc.o"
  "CMakeFiles/cce_data.dir/loan.cc.o.d"
  "CMakeFiles/cce_data.dir/recid.cc.o"
  "CMakeFiles/cce_data.dir/recid.cc.o.d"
  "libcce_data.a"
  "libcce_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
