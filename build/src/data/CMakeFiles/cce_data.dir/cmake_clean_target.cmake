file(REMOVE_RECURSE
  "libcce_data.a"
)
