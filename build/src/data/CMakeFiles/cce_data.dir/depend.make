# Empty dependencies file for cce_data.
# This may be replaced when dependencies are built.
