file(REMOVE_RECURSE
  "CMakeFiles/cce_em.dir/blocking.cc.o"
  "CMakeFiles/cce_em.dir/blocking.cc.o.d"
  "CMakeFiles/cce_em.dir/datasets.cc.o"
  "CMakeFiles/cce_em.dir/datasets.cc.o.d"
  "CMakeFiles/cce_em.dir/features.cc.o"
  "CMakeFiles/cce_em.dir/features.cc.o.d"
  "CMakeFiles/cce_em.dir/matcher.cc.o"
  "CMakeFiles/cce_em.dir/matcher.cc.o.d"
  "CMakeFiles/cce_em.dir/records.cc.o"
  "CMakeFiles/cce_em.dir/records.cc.o.d"
  "libcce_em.a"
  "libcce_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
