file(REMOVE_RECURSE
  "libcce_em.a"
)
