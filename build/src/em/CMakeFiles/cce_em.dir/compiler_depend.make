# Empty compiler generated dependencies file for cce_em.
# This may be replaced when dependencies are built.
