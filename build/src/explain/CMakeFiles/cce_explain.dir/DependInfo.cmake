
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/anchor.cc" "src/explain/CMakeFiles/cce_explain.dir/anchor.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/anchor.cc.o.d"
  "/root/repo/src/explain/certa.cc" "src/explain/CMakeFiles/cce_explain.dir/certa.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/certa.cc.o.d"
  "/root/repo/src/explain/explainer.cc" "src/explain/CMakeFiles/cce_explain.dir/explainer.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/explainer.cc.o.d"
  "/root/repo/src/explain/gam.cc" "src/explain/CMakeFiles/cce_explain.dir/gam.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/gam.cc.o.d"
  "/root/repo/src/explain/ids.cc" "src/explain/CMakeFiles/cce_explain.dir/ids.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/ids.cc.o.d"
  "/root/repo/src/explain/kernel_shap.cc" "src/explain/CMakeFiles/cce_explain.dir/kernel_shap.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/kernel_shap.cc.o.d"
  "/root/repo/src/explain/kl_bounds.cc" "src/explain/CMakeFiles/cce_explain.dir/kl_bounds.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/kl_bounds.cc.o.d"
  "/root/repo/src/explain/lime.cc" "src/explain/CMakeFiles/cce_explain.dir/lime.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/lime.cc.o.d"
  "/root/repo/src/explain/linalg.cc" "src/explain/CMakeFiles/cce_explain.dir/linalg.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/linalg.cc.o.d"
  "/root/repo/src/explain/perturbation.cc" "src/explain/CMakeFiles/cce_explain.dir/perturbation.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/perturbation.cc.o.d"
  "/root/repo/src/explain/tree_cnf.cc" "src/explain/CMakeFiles/cce_explain.dir/tree_cnf.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/tree_cnf.cc.o.d"
  "/root/repo/src/explain/xreason.cc" "src/explain/CMakeFiles/cce_explain.dir/xreason.cc.o" "gcc" "src/explain/CMakeFiles/cce_explain.dir/xreason.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cce_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/cce_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
