file(REMOVE_RECURSE
  "CMakeFiles/cce_explain.dir/anchor.cc.o"
  "CMakeFiles/cce_explain.dir/anchor.cc.o.d"
  "CMakeFiles/cce_explain.dir/certa.cc.o"
  "CMakeFiles/cce_explain.dir/certa.cc.o.d"
  "CMakeFiles/cce_explain.dir/explainer.cc.o"
  "CMakeFiles/cce_explain.dir/explainer.cc.o.d"
  "CMakeFiles/cce_explain.dir/gam.cc.o"
  "CMakeFiles/cce_explain.dir/gam.cc.o.d"
  "CMakeFiles/cce_explain.dir/ids.cc.o"
  "CMakeFiles/cce_explain.dir/ids.cc.o.d"
  "CMakeFiles/cce_explain.dir/kernel_shap.cc.o"
  "CMakeFiles/cce_explain.dir/kernel_shap.cc.o.d"
  "CMakeFiles/cce_explain.dir/kl_bounds.cc.o"
  "CMakeFiles/cce_explain.dir/kl_bounds.cc.o.d"
  "CMakeFiles/cce_explain.dir/lime.cc.o"
  "CMakeFiles/cce_explain.dir/lime.cc.o.d"
  "CMakeFiles/cce_explain.dir/linalg.cc.o"
  "CMakeFiles/cce_explain.dir/linalg.cc.o.d"
  "CMakeFiles/cce_explain.dir/perturbation.cc.o"
  "CMakeFiles/cce_explain.dir/perturbation.cc.o.d"
  "CMakeFiles/cce_explain.dir/tree_cnf.cc.o"
  "CMakeFiles/cce_explain.dir/tree_cnf.cc.o.d"
  "CMakeFiles/cce_explain.dir/xreason.cc.o"
  "CMakeFiles/cce_explain.dir/xreason.cc.o.d"
  "libcce_explain.a"
  "libcce_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
