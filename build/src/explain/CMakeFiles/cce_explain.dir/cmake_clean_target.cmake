file(REMOVE_RECURSE
  "libcce_explain.a"
)
