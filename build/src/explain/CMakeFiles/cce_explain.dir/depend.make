# Empty dependencies file for cce_explain.
# This may be replaced when dependencies are built.
