file(REMOVE_RECURSE
  "CMakeFiles/cce_io.dir/serialize.cc.o"
  "CMakeFiles/cce_io.dir/serialize.cc.o.d"
  "libcce_io.a"
  "libcce_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
