file(REMOVE_RECURSE
  "libcce_io.a"
)
