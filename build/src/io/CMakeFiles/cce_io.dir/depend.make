# Empty dependencies file for cce_io.
# This may be replaced when dependencies are built.
