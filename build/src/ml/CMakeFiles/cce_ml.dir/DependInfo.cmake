
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/eval.cc" "src/ml/CMakeFiles/cce_ml.dir/eval.cc.o" "gcc" "src/ml/CMakeFiles/cce_ml.dir/eval.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/cce_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/cce_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/multiclass.cc" "src/ml/CMakeFiles/cce_ml.dir/multiclass.cc.o" "gcc" "src/ml/CMakeFiles/cce_ml.dir/multiclass.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/cce_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/cce_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
