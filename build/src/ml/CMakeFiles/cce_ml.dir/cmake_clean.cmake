file(REMOVE_RECURSE
  "CMakeFiles/cce_ml.dir/eval.cc.o"
  "CMakeFiles/cce_ml.dir/eval.cc.o.d"
  "CMakeFiles/cce_ml.dir/gbdt.cc.o"
  "CMakeFiles/cce_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/cce_ml.dir/multiclass.cc.o"
  "CMakeFiles/cce_ml.dir/multiclass.cc.o.d"
  "CMakeFiles/cce_ml.dir/tree.cc.o"
  "CMakeFiles/cce_ml.dir/tree.cc.o.d"
  "libcce_ml.a"
  "libcce_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
