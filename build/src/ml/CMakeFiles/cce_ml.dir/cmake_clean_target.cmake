file(REMOVE_RECURSE
  "libcce_ml.a"
)
