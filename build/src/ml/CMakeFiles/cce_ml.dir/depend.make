# Empty dependencies file for cce_ml.
# This may be replaced when dependencies are built.
