file(REMOVE_RECURSE
  "CMakeFiles/cce_sat.dir/cnf.cc.o"
  "CMakeFiles/cce_sat.dir/cnf.cc.o.d"
  "CMakeFiles/cce_sat.dir/dimacs.cc.o"
  "CMakeFiles/cce_sat.dir/dimacs.cc.o.d"
  "CMakeFiles/cce_sat.dir/solver.cc.o"
  "CMakeFiles/cce_sat.dir/solver.cc.o.d"
  "libcce_sat.a"
  "libcce_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
