file(REMOVE_RECURSE
  "libcce_sat.a"
)
