# Empty dependencies file for cce_sat.
# This may be replaced when dependencies are built.
