file(REMOVE_RECURSE
  "CMakeFiles/cce_serving.dir/proxy.cc.o"
  "CMakeFiles/cce_serving.dir/proxy.cc.o.d"
  "libcce_serving.a"
  "libcce_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
