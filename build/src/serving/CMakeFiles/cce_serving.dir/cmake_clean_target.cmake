file(REMOVE_RECURSE
  "libcce_serving.a"
)
