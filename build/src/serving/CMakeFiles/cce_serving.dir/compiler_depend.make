# Empty compiler generated dependencies file for cce_serving.
# This may be replaced when dependencies are built.
