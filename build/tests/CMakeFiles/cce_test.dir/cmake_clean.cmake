file(REMOVE_RECURSE
  "CMakeFiles/cce_test.dir/cce_test.cc.o"
  "CMakeFiles/cce_test.dir/cce_test.cc.o.d"
  "cce_test"
  "cce_test.pdb"
  "cce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
