# Empty compiler generated dependencies file for cce_test.
# This may be replaced when dependencies are built.
