file(REMOVE_RECURSE
  "CMakeFiles/conformity_fuzz_test.dir/conformity_fuzz_test.cc.o"
  "CMakeFiles/conformity_fuzz_test.dir/conformity_fuzz_test.cc.o.d"
  "conformity_fuzz_test"
  "conformity_fuzz_test.pdb"
  "conformity_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformity_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
