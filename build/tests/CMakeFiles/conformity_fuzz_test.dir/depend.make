# Empty dependencies file for conformity_fuzz_test.
# This may be replaced when dependencies are built.
