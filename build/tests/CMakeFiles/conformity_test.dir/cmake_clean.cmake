file(REMOVE_RECURSE
  "CMakeFiles/conformity_test.dir/conformity_test.cc.o"
  "CMakeFiles/conformity_test.dir/conformity_test.cc.o.d"
  "conformity_test"
  "conformity_test.pdb"
  "conformity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
