# Empty dependencies file for conformity_test.
# This may be replaced when dependencies are built.
