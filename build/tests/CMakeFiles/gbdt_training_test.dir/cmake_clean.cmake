file(REMOVE_RECURSE
  "CMakeFiles/gbdt_training_test.dir/gbdt_training_test.cc.o"
  "CMakeFiles/gbdt_training_test.dir/gbdt_training_test.cc.o.d"
  "gbdt_training_test"
  "gbdt_training_test.pdb"
  "gbdt_training_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_training_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
