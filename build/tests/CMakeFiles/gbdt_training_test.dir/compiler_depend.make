# Empty compiler generated dependencies file for gbdt_training_test.
# This may be replaced when dependencies are built.
