file(REMOVE_RECURSE
  "CMakeFiles/generators_schema_test.dir/generators_schema_test.cc.o"
  "CMakeFiles/generators_schema_test.dir/generators_schema_test.cc.o.d"
  "generators_schema_test"
  "generators_schema_test.pdb"
  "generators_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generators_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
