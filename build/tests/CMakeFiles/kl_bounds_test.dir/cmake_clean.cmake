file(REMOVE_RECURSE
  "CMakeFiles/kl_bounds_test.dir/kl_bounds_test.cc.o"
  "CMakeFiles/kl_bounds_test.dir/kl_bounds_test.cc.o.d"
  "kl_bounds_test"
  "kl_bounds_test.pdb"
  "kl_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
