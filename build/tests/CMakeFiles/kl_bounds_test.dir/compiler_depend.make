# Empty compiler generated dependencies file for kl_bounds_test.
# This may be replaced when dependencies are built.
