# Empty compiler generated dependencies file for online_property_test.
# This may be replaced when dependencies are built.
