
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/osrk_test.cc" "tests/CMakeFiles/osrk_test.dir/osrk_test.cc.o" "gcc" "tests/CMakeFiles/osrk_test.dir/osrk_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cce_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cce_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/cce_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/cce_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/cce_em.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cce_io.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/cce_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
