file(REMOVE_RECURSE
  "CMakeFiles/osrk_test.dir/osrk_test.cc.o"
  "CMakeFiles/osrk_test.dir/osrk_test.cc.o.d"
  "osrk_test"
  "osrk_test.pdb"
  "osrk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osrk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
