# Empty compiler generated dependencies file for osrk_test.
# This may be replaced when dependencies are built.
