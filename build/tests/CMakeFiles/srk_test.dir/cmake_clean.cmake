file(REMOVE_RECURSE
  "CMakeFiles/srk_test.dir/srk_test.cc.o"
  "CMakeFiles/srk_test.dir/srk_test.cc.o.d"
  "srk_test"
  "srk_test.pdb"
  "srk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
