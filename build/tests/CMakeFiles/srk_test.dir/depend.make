# Empty dependencies file for srk_test.
# This may be replaced when dependencies are built.
