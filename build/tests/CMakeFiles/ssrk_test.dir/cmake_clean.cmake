file(REMOVE_RECURSE
  "CMakeFiles/ssrk_test.dir/ssrk_test.cc.o"
  "CMakeFiles/ssrk_test.dir/ssrk_test.cc.o.d"
  "ssrk_test"
  "ssrk_test.pdb"
  "ssrk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssrk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
