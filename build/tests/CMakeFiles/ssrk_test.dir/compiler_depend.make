# Empty compiler generated dependencies file for ssrk_test.
# This may be replaced when dependencies are built.
