file(REMOVE_RECURSE
  "CMakeFiles/whitebox_invariants_test.dir/whitebox_invariants_test.cc.o"
  "CMakeFiles/whitebox_invariants_test.dir/whitebox_invariants_test.cc.o.d"
  "whitebox_invariants_test"
  "whitebox_invariants_test.pdb"
  "whitebox_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitebox_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
