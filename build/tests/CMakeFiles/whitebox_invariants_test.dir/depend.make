# Empty dependencies file for whitebox_invariants_test.
# This may be replaced when dependencies are built.
