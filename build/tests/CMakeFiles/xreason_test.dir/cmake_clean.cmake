file(REMOVE_RECURSE
  "CMakeFiles/xreason_test.dir/xreason_test.cc.o"
  "CMakeFiles/xreason_test.dir/xreason_test.cc.o.d"
  "xreason_test"
  "xreason_test.pdb"
  "xreason_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xreason_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
