# Empty dependencies file for xreason_test.
# This may be replaced when dependencies are built.
