// cce_cli — explain served predictions from a CSV file, end to end.
//
// The CSV is the client-side context: each row an inference instance, one
// column holding the prediction the model served. No model required.
//
// Usage:
//   cce_cli --data context.csv --label prediction [--row N] [--alpha A]
//           [--buckets B] [--importance] [--patterns K]
//
//   --row N         explain row N (default 0)
//   --alpha A       conformity bound in (0,1] (default 1.0)
//   --buckets B     equi-width buckets for numeric columns (default 10)
//   --importance    also print context-relative Shapley importances
//   --patterns K    also print a K-pattern context summary
//   --all-keys      also enumerate every minimal relative key
//   --counterfactual also print the closest counterfactual witnesses

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/cce.h"
#include "core/counterfactual.h"
#include "core/diagnostics.h"
#include "core/enumerate.h"
#include "core/importance.h"
#include "core/patterns.h"
#include "data/loader.h"

namespace {

struct Args {
  std::string data_path;
  std::string label_column;
  size_t row = 0;
  double alpha = 1.0;
  int buckets = 10;
  bool importance = false;
  size_t patterns = 0;
  bool all_keys = false;
  bool counterfactual = false;
};

void Usage(const char* binary) {
  std::fprintf(stderr,
               "usage: %s --data <csv> --label <column> [--row N] "
               "[--alpha A] [--buckets B] [--importance] [--patterns K]\n",
               binary);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next_value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--data") {
      const char* value = next_value();
      if (value == nullptr) return false;
      args->data_path = value;
    } else if (flag == "--label") {
      const char* value = next_value();
      if (value == nullptr) return false;
      args->label_column = value;
    } else if (flag == "--row") {
      const char* value = next_value();
      if (value == nullptr) return false;
      args->row = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--alpha") {
      const char* value = next_value();
      if (value == nullptr) return false;
      args->alpha = std::strtod(value, nullptr);
    } else if (flag == "--buckets") {
      const char* value = next_value();
      if (value == nullptr) return false;
      args->buckets = static_cast<int>(std::strtol(value, nullptr, 10));
    } else if (flag == "--importance") {
      args->importance = true;
    } else if (flag == "--all-keys") {
      args->all_keys = true;
    } else if (flag == "--counterfactual") {
      args->counterfactual = true;
    } else if (flag == "--patterns") {
      const char* value = next_value();
      if (value == nullptr) return false;
      args->patterns =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->data_path.empty() && !args->label_column.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cce;
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  data::LoadOptions load_options;
  load_options.label_column = args.label_column;
  load_options.numeric_buckets = args.buckets;
  auto context =
      data::LoadCsvDatasetFromFile(args.data_path, load_options);
  if (!context.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", args.data_path.c_str(),
                 context.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded context: %zu instances, %zu features, %zu labels\n",
              context->size(), context->num_features(),
              context->schema().num_labels());
  auto diagnostics = DiagnoseContext(*context);
  if (diagnostics.ok()) {
    for (const std::string& warning : diagnostics->warnings) {
      std::printf("warning: %s\n", warning.c_str());
    }
  }
  if (args.row >= context->size()) {
    std::fprintf(stderr, "row %zu out of range (%zu rows)\n", args.row,
                 context->size());
    return 1;
  }

  const Schema& schema = context->schema();
  const Instance& x0 = context->instance(args.row);
  std::printf("\nRow %zu (prediction: %s):\n", args.row,
              schema.LabelName(context->label(args.row)).c_str());
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    std::printf("  %-24s = %s\n", schema.FeatureName(f).c_str(),
                schema.ValueName(f, x0[f]).c_str());
  }

  CceBatch cce(*context, args.alpha);
  auto key = cce.Explain(args.row);
  if (!key.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 key.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRelative key (alpha=%.3f): ", args.alpha);
  if (key->key.empty()) {
    std::printf("(empty — the bound already holds)\n");
  } else {
    std::printf("IF ");
    for (size_t i = 0; i < key->key.size(); ++i) {
      if (i > 0) std::printf(" AND ");
      FeatureId f = key->key[i];
      std::printf("%s='%s'", schema.FeatureName(f).c_str(),
                  schema.ValueName(f, x0[f]).c_str());
    }
    std::printf(" THEN %s\n",
                schema.LabelName(context->label(args.row)).c_str());
  }
  std::printf("Achieved conformity: %.2f%%%s\n",
              100.0 * key->achieved_alpha,
              key->satisfied ? "" : "  (bound NOT attainable: the context "
                                    "contains conflicting duplicates)");

  if (args.all_keys) {
    KeyEnumerator::Options enum_options;
    enum_options.max_keys = 16;
    auto keys = KeyEnumerator::EnumerateMinimalKeys(*context, args.row,
                                                    enum_options);
    if (!keys.ok()) {
      std::fprintf(stderr, "enumeration failed: %s\n",
                   keys.status().ToString().c_str());
    } else {
      std::printf("\nAll minimal relative keys (up to 16):\n");
      for (const FeatureSet& alternative : *keys) {
        std::printf("  %s\n",
                    FeatureSetToString(alternative,
                                       schema.FeatureNames())
                        .c_str());
      }
    }
  }

  if (args.counterfactual) {
    auto witnesses = CounterfactualFinder::Find(*context, args.row, {});
    if (!witnesses.ok()) {
      std::fprintf(stderr, "counterfactual search failed: %s\n",
                   witnesses.status().ToString().c_str());
    } else {
      std::printf("\nClosest counterfactual witnesses:\n");
      for (const auto& w : *witnesses) {
        std::printf("  row %zu (%s) — change %s\n", w.witness_row,
                    schema.LabelName(w.witness_label).c_str(),
                    FeatureSetToString(w.changed_features,
                                       schema.FeatureNames())
                        .c_str());
      }
    }
  }

  if (args.importance) {
    auto shapley =
        ContextShapley::ComputeForRow(*context, args.row, {});
    if (!shapley.ok()) {
      std::fprintf(stderr, "importance failed: %s\n",
                   shapley.status().ToString().c_str());
      return 1;
    }
    std::printf("\nContext-relative Shapley importances:\n");
    for (FeatureId f = 0; f < schema.num_features(); ++f) {
      std::printf("  %-24s %+.4f\n", schema.FeatureName(f).c_str(),
                  (*shapley)[f]);
    }
  }

  if (args.patterns > 0) {
    ContextPatternMiner::Options mine_options;
    mine_options.max_patterns = args.patterns;
    mine_options.alpha = args.alpha;
    auto patterns = ContextPatternMiner::Mine(*context, mine_options);
    if (!patterns.ok()) {
      std::fprintf(stderr, "pattern mining failed: %s\n",
                   patterns.status().ToString().c_str());
      return 1;
    }
    std::printf("\nContext pattern summary (%zu patterns):\n",
                patterns->size());
    for (const auto& pattern : *patterns) {
      std::printf("  %s  [support %zu, conformity %.2f]\n",
                  pattern.ToString(schema).c_str(), pattern.support,
                  pattern.conformity);
    }
    std::printf("Explained fraction of the context: %.1f%%\n",
                100.0 * ContextPatternMiner::ExplainedFraction(*context,
                                                               *patterns));
  }
  return 0;
}
