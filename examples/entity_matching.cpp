// Entity-matching explanation (paper Section 7.5): generate an
// Amazon-Google-style product matching task, train a similarity matcher
// (the Ditto stand-in), and explain its decisions with CCE and CERTA.

#include <cstdio>

#include "common/logging.h"

#include "common/timer.h"
#include "core/cce.h"
#include "core/conformity.h"
#include "em/blocking.h"
#include "em/datasets.h"
#include "em/features.h"
#include "em/matcher.h"
#include "explain/certa.h"

int main() {
  using namespace cce;

  em::EmGeneratorOptions options;
  options.pairs = 4000;
  em::EmTask task = em::GenerateAmazonGoogle(options);
  std::printf("Generated %zu candidate pairs over attributes:",
              task.pairs.size());
  for (const std::string& attribute : task.attributes) {
    std::printf(" %s", attribute.c_str());
  }
  std::printf("\n");

  // Real EM pipelines never compare all pairs: blocking first retrieves
  // candidates sharing title tokens. Sanity-check it on the true matches.
  {
    std::vector<em::Record> left;
    std::vector<em::Record> right;
    std::vector<std::pair<size_t, size_t>> true_matches;
    for (const em::RecordPair& pair : task.pairs) {
      if (!pair.is_match) continue;
      true_matches.emplace_back(left.size(), right.size());
      left.push_back(pair.left);
      right.push_back(pair.right);
    }
    em::TokenBlocker::Options block_options;
    block_options.stop_token_fraction = 0.6;
    auto candidates = em::TokenBlocker::Block(left, right, block_options);
    CCE_CHECK_OK(candidates.status());
    std::printf(
        "Blocking: %zu candidates out of %zu possible pairs (%.1f%% "
        "reduction), %.1f%% match recall\n",
        candidates->size(), left.size() * right.size(),
        100.0 * (1.0 - static_cast<double>(candidates->size()) /
                           static_cast<double>(left.size() * right.size())),
        100.0 * em::TokenBlocker::BlockingRecall(*candidates,
                                                 true_matches));
  }

  em::PairFeatureExtractor extractor(task, {});
  Dataset encoded = extractor.EncodeAll(task);
  Rng rng(1);
  auto [train, inference] = encoded.Split(0.7, &rng);
  auto matcher = em::SimilarityMatcher::Train(train, {});
  CCE_CHECK_OK(matcher.status());
  std::printf("Matcher accuracy on held-out pairs: %.1f%%\n",
              100.0 * (*matcher)->Accuracy(inference));

  // Client-side context of served match decisions.
  Context context = (*matcher)->MakeContext(inference);
  ConformityChecker checker(&context);

  // Find a predicted match to explain.
  size_t match_row = 0;
  for (size_t row = 0; row < context.size(); ++row) {
    if (context.label(row) == 1) {
      match_row = row;
      break;
    }
  }
  const Instance& x0 = context.instance(match_row);
  const Schema& schema = *extractor.schema();
  std::printf("\nExplaining pair #%zu (decision: %s)\n", match_row,
              schema.LabelName(context.label(match_row)).c_str());

  Timer timer;
  CceBatch cce(context, 1.0);
  auto key = cce.Explain(match_row);
  double cce_ms = timer.ElapsedMillis();
  CCE_CHECK_OK(key.status());
  std::printf("[CCE]   %8.2f ms  key %s  conformity %.1f%%\n", cce_ms,
              FeatureSetToString(key->key, schema.FeatureNames()).c_str(),
              100.0 * key->achieved_alpha);

  timer.Restart();
  explain::Certa certa(matcher->get(), &train, {});
  auto saliency = certa.ImportanceScores(x0);
  double certa_ms = timer.ElapsedMillis();
  CCE_CHECK_OK(saliency.status());
  std::printf("[CERTA] %8.2f ms  attribute saliency:", certa_ms);
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    std::printf(" %s=%.2f", schema.FeatureName(f).c_str(),
                (*saliency)[f]);
  }
  std::printf("\n");
  auto certa_key = certa.ExplainFeatures(x0, key->key.size());
  CCE_CHECK_OK(certa_key.status());
  std::printf(
      "[CERTA] size-matched explanation %s  conformity %.1f%%\n",
      FeatureSetToString(*certa_key, schema.FeatureNames()).c_str(),
      100.0 * checker.Precision(x0, context.label(match_row), *certa_key));
  std::printf(
      "\nCCE reaches comparable attribute-level explanations orders of "
      "magnitude faster, with guaranteed conformity.\n");
  return 0;
}
