// Hybrid decision workflows (paper Example 5 and benefit (d)): real
// decisions often combine an ML model with rule-based or human-in-the-loop
// steps. Relative keys explain the *entire workflow* because they only see
// (instance, final decision) pairs — something model-introspection methods
// cannot do, since the manual step is not part of the model.

#include <cstdio>

#include "common/logging.h"
#include "core/cce.h"
#include "core/importance.h"
#include "data/generators.h"
#include "ml/gbdt.h"

int main() {
  using namespace cce;

  // Train the loan model as usual.
  data::LoanOptions loan_options;
  loan_options.seed = 11;
  Dataset loan = data::GenerateLoan(loan_options);
  Rng rng(1);
  auto [train, inference] = loan.Split(0.7, &rng);
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 40;
  auto model = ml::Gbdt::Train(train, gbdt_options);
  CCE_CHECK_OK(model.status());

  // The bank's workflow extends the model with a manual step that also
  // weighs the bank's current liquidity: when liquidity is high, borderline
  // denials get overturned. The workflow's feature space therefore gains a
  // feature the ML model has never seen.
  auto workflow_schema = std::make_shared<Schema>();
  const Schema& loan_schema = loan.schema();
  for (FeatureId f = 0; f < loan_schema.num_features(); ++f) {
    FeatureId id = workflow_schema->AddFeature(loan_schema.FeatureName(f));
    for (ValueId v = 0; v < loan_schema.DomainSize(f); ++v) {
      workflow_schema->InternValue(id, loan_schema.ValueName(f, v));
    }
  }
  FeatureId liquidity = workflow_schema->AddFeature("Liquidity");
  ValueId liquidity_low = workflow_schema->InternValue(liquidity, "low");
  ValueId liquidity_high = workflow_schema->InternValue(liquidity, "high");
  Label denied = workflow_schema->InternLabel("Denied");
  Label approved = workflow_schema->InternLabel("Approved");
  CCE_CHECK(denied == *loan_schema.LookupLabel("Denied"));
  (void)denied;

  // Serve the workflow: model prediction + manual liquidity override.
  Context workflow_context(workflow_schema);
  Rng liquidity_rng(7);
  size_t overridden = 0;
  for (size_t row = 0; row < inference.size(); ++row) {
    Instance x = inference.instance(row);
    ValueId today = liquidity_rng.Bernoulli(0.5) ? liquidity_high
                                                 : liquidity_low;
    x.push_back(today);
    Label decision = (*model)->Predict(inference.instance(row));
    double margin = (*model)->Margin(inference.instance(row));
    // Manual step: overturn borderline denials when liquidity is high.
    if (decision == 0 && today == liquidity_high && margin > -1.6) {
      decision = approved;
      ++overridden;
    }
    workflow_context.Add(std::move(x), decision);
  }
  std::printf(
      "Served %zu workflow decisions; the manual step overturned %zu "
      "borderline denials.\n",
      workflow_context.size(), overridden);

  // Find an overturned decision and explain it holistically; prefer one
  // whose key actually needs the Liquidity factor.
  CceBatch cce(workflow_context, 1.0);
  size_t x0_row = workflow_context.size();
  Result<KeyResult> key = Status::NotFound("no override");
  for (size_t row = 0; row < workflow_context.size(); ++row) {
    const Instance& x = workflow_context.instance(row);
    if (workflow_context.label(row) != approved ||
        x[liquidity] != liquidity_high ||
        (*model)->Predict(inference.instance(row)) != 0) {
      continue;
    }
    Result<KeyResult> candidate = cce.Explain(row);
    CCE_CHECK_OK(candidate.status());
    if (x0_row == workflow_context.size() ||
        FeatureSetContains(candidate->key, liquidity)) {
      x0_row = row;
      key = std::move(candidate);
      if (FeatureSetContains(key->key, liquidity)) break;
    }
  }
  CCE_CHECK(x0_row < workflow_context.size());
  CCE_CHECK_OK(key.status());
  const Instance& x0 = workflow_context.instance(x0_row);
  std::printf(
      "\nWorkflow decision for application #%zu: %s (model alone said "
      "Denied)\nHolistic relative key: IF ",
      x0_row,
      workflow_schema->LabelName(workflow_context.label(x0_row)).c_str());
  for (size_t i = 0; i < key->key.size(); ++i) {
    if (i > 0) std::printf(" AND ");
    FeatureId f = key->key[i];
    std::printf("%s='%s'", workflow_schema->FeatureName(f).c_str(),
                workflow_schema->ValueName(f, x0[f]).c_str());
  }
  std::printf(" THEN Approved  (conformity %.0f%%)\n",
              100.0 * key->achieved_alpha);
  if (FeatureSetContains(key->key, liquidity)) {
    std::printf(
        "The key includes Liquidity — a factor that exists only in the "
        "manual step,\ninvisible to any model-introspection explainer.\n");
  }

  // The same context supports workflow-level feature importance.
  auto shapley = ContextShapley::ComputeForRow(workflow_context, x0_row,
                                               {});
  CCE_CHECK_OK(shapley.status());
  std::printf("\nContext-relative Shapley importances (top factors):\n");
  for (FeatureId f = 0; f < workflow_schema->num_features(); ++f) {
    if ((*shapley)[f] > 0.01) {
      std::printf("  %-14s %+.3f\n",
                  workflow_schema->FeatureName(f).c_str(), (*shapley)[f]);
    }
  }
  return 0;
}
