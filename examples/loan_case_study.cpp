// The paper's running case study (Examples 1-2, Figure 1, Section 7.2):
// explain a denied loan application with the formal Xreason, the heuristic
// Anchor, and CCE's relative key, then compare timing, succinctness and
// conformity. Also prints feature-importance explanations (Table 3 style).

#include <cstdio>

#include "common/logging.h"

#include "common/timer.h"
#include "core/cce.h"
#include "core/conformity.h"
#include "data/generators.h"
#include "explain/anchor.h"
#include "explain/gam.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/xreason.h"
#include "ml/gbdt.h"

namespace {

using namespace cce;

std::string Render(const FeatureSet& e, const Instance& x,
                   const Schema& schema) {
  std::string out;
  for (size_t i = 0; i < e.size(); ++i) {
    if (i > 0) out += " AND ";
    out += schema.FeatureName(e[i]) + "='" +
           schema.ValueName(e[i], x[e[i]]) + "'";
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace

int main() {
  // Train an XGBoost-style model on Loan, as in Section 7.1.
  data::LoanOptions loan_options;
  loan_options.seed = 11;
  Dataset loan = data::GenerateLoan(loan_options);
  Rng rng(1);
  auto [train, inference] = loan.Split(0.7, &rng);
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 40;
  auto model = ml::Gbdt::Train(train, gbdt_options);
  CCE_CHECK_OK(model.status());
  std::printf("Trained GBDT on Loan: accuracy %.1f%% on the inference set\n",
              100.0 * (*model)->Accuracy(inference));

  // The client-side context: inference instances + served predictions.
  Context context = (*model)->MakeContext(inference);

  // Pick a denied application as x0.
  size_t x0_row = 0;
  Label denied = *loan.schema().LookupLabel("Denied");
  for (size_t row = 0; row < context.size(); ++row) {
    if (context.label(row) == denied) {
      x0_row = row;
      break;
    }
  }
  const Instance& x0 = context.instance(x0_row);
  const Schema& schema = loan.schema();
  std::printf("\nExplaining x0 (prediction: %s)\n",
              schema.LabelName(context.label(x0_row)).c_str());

  ConformityChecker checker(&context);

  // --- Xreason: formal explanation over the whole feature space.
  Timer timer;
  explain::Xreason xreason(model->get(), loan.schema_ptr(), {});
  auto xreason_key = xreason.ExplainFeatures(x0, 0);
  double xreason_ms = timer.ElapsedMillis();
  CCE_CHECK_OK(xreason_key.status());
  std::printf("\n[Xreason]  %6.1f ms  size %zu  conformity %.1f%%\n  %s\n",
              xreason_ms, xreason_key->size(),
              100.0 * checker.Precision(x0, context.label(x0_row),
                                        *xreason_key),
              Render(*xreason_key, x0, schema).c_str());

  // --- Anchor: heuristic explanation.
  timer.Restart();
  explain::Anchor anchor(model->get(), &train, {});
  auto anchor_key = anchor.ExplainFeatures(x0, 0);
  double anchor_ms = timer.ElapsedMillis();
  CCE_CHECK_OK(anchor_key.status());
  std::printf("[Anchor]   %6.1f ms  size %zu  conformity %.1f%%\n  %s\n",
              anchor_ms, anchor_key->size(),
              100.0 * checker.Precision(x0, context.label(x0_row),
                                        *anchor_key),
              Render(*anchor_key, x0, schema).c_str());

  // --- CCE: relative key over the inference context. No model access.
  timer.Restart();
  CceBatch cce(context, 1.0);
  auto relative_key = cce.Explain(x0_row);
  double cce_ms = timer.ElapsedMillis();
  CCE_CHECK_OK(relative_key.status());
  std::printf("[CCE]      %6.1f ms  size %zu  conformity %.1f%%\n  %s\n",
              cce_ms, relative_key->key.size(),
              100.0 * relative_key->achieved_alpha,
              Render(relative_key->key, x0, schema).c_str());

  // --- Feature-importance explanations for x0 (Table 3 style).
  std::printf("\nFeature importance scores for x0:\n%-18s", "");
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    std::printf("%9.9s", schema.FeatureName(f).c_str());
  }
  std::printf("\n");
  explain::Lime lime(model->get(), &train, {});
  explain::KernelShap shap(model->get(), &train, {});
  auto gam = explain::Gam::Fit(model->get(), &train, {});
  CCE_CHECK_OK(gam.status());
  struct Row {
    const char* name;
    Result<std::vector<double>> scores;
  };
  Row rows[] = {{"LIME", lime.ImportanceScores(x0)},
                {"SHAP", shap.ImportanceScores(x0)},
                {"GAM", (*gam)->ImportanceScores(x0)}};
  for (auto& row : rows) {
    CCE_CHECK_OK(row.scores.status());
    std::printf("%-18s", row.name);
    for (double s : *row.scores) std::printf("%9.2f", s);
    std::printf("\n");
  }
  std::printf(
      "\nSummary: the relative key matches the heuristic's succinctness "
      "with the formal method's conformity,\nat a fraction of the cost "
      "of either — and without querying the model.\n");
  return 0;
}
