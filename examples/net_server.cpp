// The network serving front end, end to end: train a model on a synthetic
// dataset, wrap it in an ExplainableProxy + ServingGroup, and serve the
// CCE wire protocol (plus /metrics and /healthz over HTTP) on loopback.
// Pair with cce_loadgen started with the same --dataset/--data-seed/--rows
// flags — it regenerates the identical dataset, so its instances are valid
// for this server's schema. See README.md "Serving over the network".

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.h"
#include "data/generators.h"
#include "ml/gbdt.h"
#include "net/server.h"
#include "serving/proxy.h"
#include "serving/serving_group.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace cce;

  std::string dataset_name = "Compas";
  uint64_t data_seed = 7;
  size_t rows = 0;
  uint16_t port = 7411;
  int64_t duration_ms = 0;  // 0 = run until SIGINT/SIGTERM
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--dataset") dataset_name = value;
    else if (flag == "--data-seed") data_seed = std::strtoull(value, nullptr, 10);
    else if (flag == "--rows") rows = std::strtoull(value, nullptr, 10);
    else if (flag == "--port") port = static_cast<uint16_t>(std::atoi(value));
    else if (flag == "--duration-ms") duration_ms = std::atoll(value);
    else {
      std::fprintf(stderr,
                   "usage: %s [--dataset NAME] [--data-seed S] [--rows N] "
                   "[--port P] [--duration-ms D]\n",
                   argv[0]);
      return 2;
    }
  }

  auto dataset = data::GenerateByName(dataset_name, data_seed, rows);
  CCE_CHECK_OK(dataset.status());
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 30;
  auto model = ml::Gbdt::Train(*dataset, gbdt_options);
  CCE_CHECK_OK(model.status());

  serving::ExplainableProxy::Options proxy_options;
  proxy_options.context_capacity = 0;
  proxy_options.overload.enabled = true;  // arms the explain cache
  auto proxy = serving::ExplainableProxy::Create(dataset->schema_ptr(),
                                                 model->get(), proxy_options);
  CCE_CHECK_OK(proxy.status());
  // Prime the context so Explains have something to be relative to.
  for (size_t row = 0; row < dataset->size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(dataset->instance(row),
                                  dataset->label(row)));
  }

  serving::ServingGroup::Options group_options;
  group_options.policy = serving::RoutePolicy::kLeaderOnly;
  auto group =
      serving::ServingGroup::Create(proxy->get(), {}, group_options);
  CCE_CHECK_OK(group.status());

  net::NetServer::Options server_options;
  server_options.port = port;
  auto server = net::NetServer::Create(group->get(), server_options);
  CCE_CHECK_OK(server.status());
  CCE_CHECK_OK((*server)->Start());

  std::printf(
      "cce net server on 127.0.0.1:%u\n"
      "  dataset %s (seed %llu, %zu rows recorded) — point cce_loadgen at\n"
      "  it with the same --dataset/--data-seed/--rows flags\n"
      "  curl http://127.0.0.1:%u/metrics for Prometheus text\n",
      (*server)->port(), dataset_name.c_str(),
      static_cast<unsigned long long>(data_seed), dataset->size(),
      (*server)->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_ms > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::milliseconds(duration_ms)) {
      break;
    }
  }
  std::printf("draining...\n");
  (*server)->Stop();
  const auto stats = (*server)->GetStats();
  std::printf("served %llu requests over %llu connections (%llu sheds)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.sheds));
  return 0;
}
