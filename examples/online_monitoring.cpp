// Online explanation monitoring (paper Sections 5 and 7.4): maintain
// relative keys for a stream of served predictions with OSRK, and use the
// succinctness of the monitored keys to detect a model-accuracy dip caused
// by noisy inputs — without ever seeing ground-truth labels.

#include <cstdio>

#include "common/logging.h"

#include "core/cce.h"
#include "data/drift.h"
#include "data/generators.h"
#include "ml/gbdt.h"

int main() {
  using namespace cce;

  // Train on clean Adult data; serve a stream whose last 40% is noisy.
  data::AdultOptions adult_options;
  adult_options.rows = 6000;
  adult_options.seed = 5;
  Dataset adult = data::GenerateAdult(adult_options);
  Rng rng(1);
  auto [train, serving] = adult.Split(0.7, &rng);
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 40;
  auto model = ml::Gbdt::Train(train, gbdt_options);
  CCE_CHECK_OK(model.status());

  Rng noise_rng(2);
  Dataset noisy_serving =
      data::InjectTailNoise(serving, /*tail_fraction=*/0.4,
                            /*noise_rate=*/0.6, &noise_rng);

  // The client monitors the stream with a DriftMonitor (a panel of OSRK
  // probes) while the model serves predictions.
  DriftMonitor::Options monitor_options;
  monitor_options.probe_count = 6;
  monitor_options.alarm_growth = 0.45;
  monitor_options.alarm_window = 600;
  // The first ~55% of the stream is a known-healthy burn-in period during
  // which the probes' keys converge on the clean distribution.
  monitor_options.warmup = 1000;
  DriftMonitor monitor(adult.schema_ptr(), monitor_options);

  std::printf("%8s %14s %16s %10s\n", "stream%", "succinctness",
              "model accuracy", "alarm");
  size_t alarm_at = 0;
  const size_t total = noisy_serving.size();
  size_t window_correct = 0;
  size_t window_total = 0;
  for (size_t row = 0; row < total; ++row) {
    const Instance& x = noisy_serving.instance(row);
    Label prediction = (*model)->Predict(x);
    monitor.Observe(x, prediction);
    // Accuracy bookkeeping uses ground truth ONLY for this printout; the
    // monitor itself never sees it.
    window_correct += (prediction == noisy_serving.label(row));
    ++window_total;
    if ((row + 1) % (total / 10) == 0) {
      std::printf("%7zu%% %14.2f %15.1f%% %10s\n",
                  (row + 1) * 100 / total, monitor.AverageSuccinctness(),
                  100.0 * static_cast<double>(window_correct) /
                      static_cast<double>(window_total),
                  monitor.Alarmed() ? "ALARM" : "-");
      window_correct = 0;
      window_total = 0;
      if (monitor.Alarmed() && alarm_at == 0) alarm_at = row + 1;
    }
  }
  if (alarm_at > 0) {
    std::printf(
        "\nDrift alarm raised after %zu instances (%.0f%% of the stream); "
        "noise injection starts at 60%%.\n",
        alarm_at, 100.0 * static_cast<double>(alarm_at) /
                      static_cast<double>(total));
  } else {
    std::printf("\nNo drift alarm raised.\n");
  }
  return 0;
}
