// Quickstart: relative keys in ~60 lines.
//
// A client collects (instance, prediction) pairs while using a black-box
// model — that collection is the *context*. CCE explains any prediction as
// the most succinct feature set that determines the prediction over the
// context, with provable conformity. No model access required.

#include <cstdio>

#include "core/cce.h"
#include "core/schema.h"

int main() {
  using namespace cce;

  // 1. Describe the feature space (the paper's Figure 2 loan schema).
  auto schema = std::make_shared<Schema>();
  FeatureId gender = schema->AddFeature("Gender");
  FeatureId income = schema->AddFeature("Income");
  FeatureId credit = schema->AddFeature("Credit");
  FeatureId dependents = schema->AddFeature("Dependents");
  Label denied = schema->InternLabel("Denied");
  Label approved = schema->InternLabel("Approved");

  // 2. Record served predictions as the context.
  Dataset context(schema);
  auto add = [&](const char* g, const char* i, const char* c, const char* d,
                 Label y) {
    Instance x(4);
    x[gender] = schema->InternValue(gender, g);
    x[income] = schema->InternValue(income, i);
    x[credit] = schema->InternValue(credit, c);
    x[dependents] = schema->InternValue(dependents, d);
    context.Add(std::move(x), y);
  };
  add("Male", "3-4K", "poor", "1", denied);    // x0 — to be explained
  add("Male", "5-6K", "poor", "1", approved);
  add("Female", "3-4K", "poor", "2", denied);
  add("Male", "3-4K", "poor", "1", denied);
  add("Male", "1-2K", "poor", "1", denied);
  add("Male", "3-4K", "good", "0", approved);
  add("Male", "3-4K", "good", "1", approved);

  // 3. Explain x0 with a relative key (alpha = 1: perfect conformity).
  CceBatch cce(context, /*alpha=*/1.0);
  auto key = cce.Explain(0);
  if (!key.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 key.status().ToString().c_str());
    return 1;
  }

  std::printf("Relative key for x0 (prediction: Denied):\n  %s\n",
              FeatureSetToString(key->key, schema->FeatureNames()).c_str());
  std::printf("Rule: IF Income='3-4K' AND Credit='poor' THEN Denied\n");
  std::printf("Conformity over the context: %.0f%% (alpha-bound met: %s)\n",
              100.0 * key->achieved_alpha, key->satisfied ? "yes" : "no");

  // 4. Trade conformity for succinctness with alpha < 1 (Example 4).
  CceBatch relaxed(context, /*alpha=*/6.0 / 7.0);
  auto short_key = relaxed.Explain(0);
  std::printf(
      "6/7-conformant key: %s (%.1f%% of the context conforms)\n",
      FeatureSetToString(short_key->key, schema->FeatureNames()).c_str(),
      100.0 * short_key->achieved_alpha);
  return 0;
}
