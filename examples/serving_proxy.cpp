// Deployment walkthrough: wrap a model with the ExplainableProxy, serve
// traffic, persist the accrued context to disk, reload it in a fresh
// process (no model!), and keep explaining — the full client-centric
// lifecycle of paper Section 6.

#include <cstdio>

#include "common/logging.h"
#include "core/cce.h"
#include "core/conformity.h"
#include "data/generators.h"
#include "io/serialize.h"
#include "ml/gbdt.h"
#include "serving/proxy.h"

int main() {
  using namespace cce;

  // --- Day 1: a serving process with model access.
  data::GeneratorOptions compas_options;
  compas_options.rows = 4000;
  compas_options.seed = 5;
  Dataset compas = data::GenerateCompas(compas_options);
  Rng rng(1);
  auto [train, traffic] = compas.Split(0.7, &rng);
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 40;
  auto model = ml::Gbdt::Train(train, gbdt_options);
  CCE_CHECK_OK(model.status());

  serving::ExplainableProxy::Options proxy_options;
  proxy_options.context_capacity = 0;  // keep everything
  auto proxy = serving::ExplainableProxy::Create(compas.schema_ptr(),
                                                 model->get(),
                                                 proxy_options);
  CCE_CHECK_OK(proxy.status());
  for (size_t row = 0; row < traffic.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Predict(traffic.instance(row)).status());
  }
  std::printf("Day 1: served %zu predictions through the proxy.\n",
              (*proxy)->recorded());

  const Instance& x0 = traffic.instance(0);
  Label y0 = (*model)->Predict(x0);
  auto day1_key = (*proxy)->Explain(x0, y0);
  CCE_CHECK_OK(day1_key.status());
  std::printf("Day 1 explanation: %s (conformity %.0f%%)\n",
              FeatureSetToString(day1_key->key,
                                 compas.schema().FeatureNames())
                  .c_str(),
              100.0 * day1_key->achieved_alpha);

  // Persist the context.
  const std::string path = "/tmp/cce_served_context.txt";
  CCE_CHECK_OK(io::SaveDatasetToFile((*proxy)->ContextSnapshot(), path));
  std::printf("Context persisted to %s\n", path.c_str());

  // --- Day 2: a different process; the model is gone (e.g. a remote
  // service we no longer have credentials for). Explanations still work.
  auto restored = io::LoadDatasetFromFile(path);
  CCE_CHECK_OK(restored.status());
  CceBatch offline(*restored, /*alpha=*/1.0);
  auto day2_key = offline.ExplainInstance(x0, y0);
  CCE_CHECK_OK(day2_key.status());
  std::printf(
      "Day 2 (no model, reloaded context of %zu rows): %s (conformity "
      "%.0f%%)\n",
      restored->size(),
      FeatureSetToString(day2_key->key,
                         restored->schema().FeatureNames())
          .c_str(),
      100.0 * day2_key->achieved_alpha);
  CCE_CHECK(day1_key->key == day2_key->key);
  std::printf(
      "Same key before and after the round trip — the context alone "
      "carries the explanation.\n");

  // Batch-parallel explanation over the reloaded context.
  std::vector<size_t> rows;
  for (size_t r = 0; r < 200; ++r) rows.push_back(r);
  auto keys = offline.ExplainMany(rows, /*num_threads=*/4);
  size_t conformant = 0;
  for (const auto& key : keys) {
    conformant += key.ok() && key->satisfied;
  }
  std::printf("Parallel batch explain: %zu/%zu rows, all conformant: %s\n",
              conformant, keys.size(),
              conformant == keys.size() ? "yes" : "no");
  std::remove(path.c_str());
  return 0;
}
