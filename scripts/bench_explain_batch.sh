#!/usr/bin/env bash
# Records BENCH_explain_batch.json: the PR 9 20x open-loop flood with the
# explanation cache disabled, server micro-batching off (max_explain_batch
# = 1) vs on (default 16). The acceptance floor is a >= 3x live Explain
# keys/sec speedup from shared-build batch executions; see
# bench/bench_explain_batch.cc for the scenario and docs/benchmarks.md
# for the artifact index.
#
# Usage: scripts/bench_explain_batch.sh   # configures+builds ${BUILD_DIR:-build}
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_explain_batch

"$BUILD_DIR"/bench/bench_explain_batch > BENCH_explain_batch.json
cat BENCH_explain_batch.json
