#!/usr/bin/env bash
# Records BENCH_net.json: the network front end's two load stories
# (sustained cache-served Explain throughput over loopback, and a 20x
# open-loop flood that must be answered with typed RetryAfter sheds —
# no dropped connections). See bench/bench_net.cc for the scenarios and
# docs/operations.md ("Load-generator smoke") for the manual recipe.
#
# Usage: scripts/bench_net.sh            # configures+builds ${BUILD_DIR:-build}
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_net

"$BUILD_DIR"/bench/bench_net > BENCH_net.json
cat BENCH_net.json
