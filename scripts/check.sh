#!/usr/bin/env bash
# Sanitizer gate for the tier-1 suite. Default mode builds everything with
# AddressSanitizer + UndefinedBehaviorSanitizer and runs ctest. The
# concurrency paths (thread pool backpressure, retry/breaker machinery,
# deadline-bounded search, proxy locking) must stay sanitizer-clean.
#
# SANITIZER=thread switches to ThreadSanitizer (own build tree, since TSan
# is incompatible with ASan in one binary); use it over the concurrency
# suites, e.g.:
#   SANITIZER=thread scripts/check.sh -R 'ProxyConcurrency|ThreadPool'
#
# Usage: scripts/check.sh [extra ctest args...]
#   BUILD_DIR=build-asan JOBS=8 scripts/check.sh -R ProxyTest
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER=${SANITIZER:-address}
JOBS=${JOBS:-$(nproc)}

case "$SANITIZER" in
  address)
    BUILD_DIR=${BUILD_DIR:-build-asan}
    SAN_FLAGS="-fsanitize=address,undefined"
    ;;
  thread)
    BUILD_DIR=${BUILD_DIR:-build-tsan}
    SAN_FLAGS="-fsanitize=thread"
    ;;
  *)
    echo "unknown SANITIZER='$SANITIZER' (expected 'address' or 'thread')" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build "$BUILD_DIR" -j "$JOBS"

cd "$BUILD_DIR"
ctest --output-on-failure -j "$JOBS" "$@"
