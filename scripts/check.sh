#!/usr/bin/env bash
# Sanitizer gate for the tier-1 suite. Default mode builds everything with
# AddressSanitizer + UndefinedBehaviorSanitizer and runs ctest. The
# concurrency paths (thread pool backpressure, retry/breaker machinery,
# deadline-bounded search, proxy locking) must stay sanitizer-clean.
#
# SANITIZER=thread switches to ThreadSanitizer (own build tree, since TSan
# is incompatible with ASan in one binary); use it over the concurrency
# suites, e.g.:
#   SANITIZER=thread scripts/check.sh -R 'ProxyConcurrency|ThreadPool'
#
# SUITE=stress is the tier-2 gate (README "Stress suite"): forces
# ThreadSanitizer, exports CCE_STRESS=1 (the overload / durability stress
# tests scale up their thread counts and iteration budgets), and runs the
# overload, concurrency and durability suites — including the mixed-traffic
# test that drives the proxy's admission control against a fault injector in
# overload-burst (brownout) mode.
#
# SUITE=docs is the docs gate (tier 1, also runs inside the default ctest
# sweep via metrics_doc_test): a stdlib-only markdown link/anchor checker
# over every *.md in the repo, then the docs-vs-registry consistency test
# and the exposition golden tests. Builds only those test targets, so it
# is the fastest gate in the script.
#
# SUITE=crash is the kill-and-recover torture gate: AddressSanitizer build
# of the CrashTorture suite with CCE_CRASH_ITERS=200, so each scenario runs
# hundreds of write-crash-recover cycles with randomized kill points and
# injected I/O faults (torn appends, failed fsyncs, ENOSPC during
# compaction). Every surviving byte must replay cleanly and no recovery
# path may leak or scribble under ASan.
#
# SUITE=replica is the replication torture gate: AddressSanitizer build of
# the ReplicaTorture suite with CCE_REPLICA_ITERS=200 — dual kill-and-recover
# cycles that drop the leader AND the follower every iteration, with
# independent fault injectors on the shipping path and the catch-up path.
# The follower must never crash, never serve a torn view, and re-converge
# bit-for-bit once faults stop. Failures print the CCE_FAULT_SEED to replay.
#
# SUITE=ha is the self-healing serving-group gate: AddressSanitizer build
# of the HaTorture suite with CCE_HA_ITERS=200 — kill-and-recover cycles
# over a leader + replica + failover router + supervisor, with independent
# fault injectors on the leader's durability path and the replica's
# catch-up path. The group must keep answering, never serve a wrong
# non-degraded key, and converge back to fully-healthy with ZERO manual
# repair calls (the supervisor is the only repair authority). Failures
# print the CCE_FAULT_SEED to replay.
#
# SUITE=net is the network-front-end torture gate: AddressSanitizer build
# of the NetTorture suite with CCE_NET_ITERS=200 — seeded adversarial
# clients (garbage frames, mid-frame FIN/RST kills, body_len lies,
# slow-loris partial frames, dropped-response aborts) against a live
# NetServer while a well-behaved pipelined client must keep completing
# exchanges. The event loop must never crash, block the tick, or leak an
# fd (the test takes a /proc/self/fd census). Failures print under the
# CCE_NET_SEED that reproduces the schedule.
#
# Usage: scripts/check.sh [extra ctest args...]
#   BUILD_DIR=build-asan JOBS=8 scripts/check.sh -R ProxyTest
#   SUITE=stress scripts/check.sh
#   SUITE=docs scripts/check.sh
#   SUITE=crash scripts/check.sh
#   SUITE=replica scripts/check.sh
#   SUITE=ha scripts/check.sh
#   SUITE=net scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER=${SANITIZER:-address}
SUITE=${SUITE:-}
JOBS=${JOBS:-$(nproc)}

SUITE_ARGS=()
BUILD_TARGETS=()
if [[ "$SUITE" == "stress" ]]; then
  SANITIZER=thread
  export CCE_STRESS=1
  SUITE_ARGS=(-R 'Overload|TokenBucket|ProxyConcurrency|ProxyDurability|ContextWal|ThreadPool|ConformityStress|EngineEquivalence|BatchEquivalence|CacheFreshness|ShardEquivalence|ReplicaStaleness|RepairIdempotency')
elif [[ "$SUITE" == "docs" ]]; then
  python3 scripts/check_docs.py
  SUITE_ARGS=(-R 'MetricsDoc|ProtocolDoc|Exposition')
  BUILD_TARGETS=(--target metrics_doc_test protocol_doc_test obs_exposition_test)
elif [[ "$SUITE" == "crash" ]]; then
  SANITIZER=address
  export CCE_CRASH_ITERS=${CCE_CRASH_ITERS:-200}
  SUITE_ARGS=(-R 'CrashTorture')
elif [[ "$SUITE" == "replica" ]]; then
  SANITIZER=address
  export CCE_REPLICA_ITERS=${CCE_REPLICA_ITERS:-200}
  SUITE_ARGS=(-R 'ReplicaTorture')
elif [[ "$SUITE" == "ha" ]]; then
  SANITIZER=address
  export CCE_HA_ITERS=${CCE_HA_ITERS:-200}
  SUITE_ARGS=(-R 'HaTorture')
elif [[ "$SUITE" == "net" ]]; then
  SANITIZER=address
  export CCE_NET_ITERS=${CCE_NET_ITERS:-200}
  SUITE_ARGS=(-R 'NetTorture')
elif [[ -n "$SUITE" ]]; then
  echo "unknown SUITE='$SUITE' (expected 'stress', 'docs', 'crash', 'replica', 'ha', 'net' or unset)" >&2
  exit 2
fi

case "$SANITIZER" in
  address)
    BUILD_DIR=${BUILD_DIR:-build-asan}
    SAN_FLAGS="-fsanitize=address,undefined"
    ;;
  thread)
    BUILD_DIR=${BUILD_DIR:-build-tsan}
    SAN_FLAGS="-fsanitize=thread"
    ;;
  *)
    echo "unknown SANITIZER='$SANITIZER' (expected 'address' or 'thread')" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build "$BUILD_DIR" -j "$JOBS" ${BUILD_TARGETS[@]+"${BUILD_TARGETS[@]}"}

cd "$BUILD_DIR"
ctest --output-on-failure -j "$JOBS" ${SUITE_ARGS[@]+"${SUITE_ARGS[@]}"} "$@"
