#!/usr/bin/env bash
# Sanitizer gate for the tier-1 suite: builds everything with
# AddressSanitizer + UndefinedBehaviorSanitizer and runs ctest. The
# concurrency paths (thread pool backpressure, retry/breaker machinery,
# deadline-bounded search) must stay sanitizer-clean.
#
# Usage: scripts/check.sh [extra ctest args...]
#   BUILD_DIR=build-asan JOBS=8 scripts/check.sh -R ProxyTest
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$BUILD_DIR" -j "$JOBS"

cd "$BUILD_DIR"
ctest --output-on-failure -j "$JOBS" "$@"
