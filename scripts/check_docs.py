#!/usr/bin/env python3
"""Markdown integrity checker for the docs suite (SUITE=docs scripts/check.sh).

Walks every tracked *.md file and verifies, stdlib-only:

  - every relative link points at a file that exists in the repo;
  - every `#fragment` (same-file or cross-file) resolves to a real heading,
    using GitHub's heading -> anchor slug rules;
  - no absolute filesystem links (they break for everyone else).

External http(s)/mailto links are deliberately not fetched: this gate must
be deterministic and offline. Content-level doc drift (metric tables vs the
live registry) is covered separately by metrics_doc_test.

Two content-level gates do live here:

  - every tunable named in the first column of the docs/operations.md
    "Tunables" tables must correspond to a field that actually exists in
    some src/**/*.h header, so a renamed or deleted Options field cannot
    keep a ghost entry in the runbook;
  - every BENCH_*.json at the repo root must be referenced by name in
    docs/benchmarks.md, so a benchmark artifact cannot land without a row
    in the trajectory index.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SKIP_DIRS = {".git", "related"} | {d.name for d in REPO.glob("build*")}

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation,
    spaces to dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_]", "", text)                      # emphasis markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache: dict) -> set:
    if path not in cache:
        slugs, seen = set(), {}
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            # GitHub de-duplicates repeated headings as slug, slug-1, ...
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check_file(md: Path, anchor_cache: dict) -> list:
    errors = []
    in_fence = False
    for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            where = f"{md.relative_to(REPO)}:{lineno}"
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            if target.startswith("/"):
                errors.append(f"{where}: absolute link '{target}'")
                continue
            path_part, _, fragment = target.partition("#")
            dest = md if not path_part else (
                md.parent / Path(path_part)).resolve()
            if not dest.exists():
                errors.append(f"{where}: broken link '{target}'")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in anchors_of(dest, anchor_cache):
                    errors.append(
                        f"{where}: '{target}' — no heading for "
                        f"anchor '#{fragment}'")
    return errors


def check_options_drift() -> list:
    """Verify docs/operations.md tunables against the real Options fields.

    Scans the tables under the '## Tunables' heading. Each backticked
    token in a row's first column names an Options field (possibly dotted,
    e.g. `retry.max_attempts`, possibly a `prefix.*` family). Every dotted
    component must appear as an identifier somewhere in src/**/*.h;
    otherwise the doc row is stale and the gate fails.
    """
    ops = REPO / "docs" / "operations.md"
    if not ops.exists():
        return [f"{ops.relative_to(REPO)}: missing (options drift gate)"]
    headers = "\n".join(
        p.read_text(encoding="utf-8") for p in sorted((REPO / "src").rglob("*.h")))
    identifiers = set(re.findall(r"\w+", headers))
    errors = []
    in_tunables = False
    checked = 0
    for lineno, line in enumerate(
            ops.read_text(encoding="utf-8").splitlines(), start=1):
        if line.startswith("## "):
            in_tunables = line.lower().startswith("## tunables")
            continue
        if not in_tunables or not line.startswith("|"):
            continue
        cells = line.split("|")
        first = cells[1] if len(cells) > 1 else ""
        if set(first.strip()) <= set("-: ") or first.strip() == "Option":
            continue  # separator or header row
        for token in re.findall(r"`([^`]+)`", first):
            for component in token.rstrip("*").split("."):
                component = component.strip()
                if not component or not re.fullmatch(r"\w+", component):
                    continue
                checked += 1
                if component not in identifiers:
                    errors.append(
                        f"docs/operations.md:{lineno}: tunable `{token}` — "
                        f"no identifier '{component}' in any src/**/*.h "
                        f"(stale doc entry?)")
    if checked == 0:
        errors.append(
            "docs/operations.md: options drift gate found no tunables under "
            "'## Tunables' — table layout changed?")
    return errors


def check_bench_references() -> list:
    """Every repo-root BENCH_*.json must be named in docs/benchmarks.md."""
    index = REPO / "docs" / "benchmarks.md"
    if not index.exists():
        return [f"docs/benchmarks.md: missing (bench reference gate)"]
    text = index.read_text(encoding="utf-8")
    errors = []
    for bench in sorted(REPO.glob("BENCH_*.json")):
        if bench.name not in text:
            errors.append(
                f"{bench.name}: benchmark artifact at the repo root is not "
                f"referenced in docs/benchmarks.md (add a row to the "
                f"Artifacts table)")
    return errors


def main() -> int:
    markdown = sorted(
        p for p in REPO.rglob("*.md")
        if not any(part in SKIP_DIRS for part in p.parts))
    anchor_cache = {}
    errors = []
    for md in markdown:
        errors.extend(check_file(md, anchor_cache))
    errors.extend(check_options_drift())
    errors.extend(check_bench_references())
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    print(f"check_docs: {len(markdown)} markdown files + options drift "
          f"gate + bench reference gate, {len(errors)} problems")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
