#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# paper table/figure, teeing the outputs into the repository root
# (test_output.txt / bench_output.txt) as the canonical record.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

{
  for bench in build/bench/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    case "$bench" in
      *.a | *.cmake) continue ;;
    esac
    echo "##### $(basename "$bench")"
    "$bench"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "Done: test_output.txt and bench_output.txt written."
