#include "common/crc32c.h"

namespace cce::crc32c {
namespace {

/// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

/// Four 256-entry tables for slicing-by-4: table[0] is the classic
/// Sarwate byte table, table[k][b] is the CRC contribution of byte b seen
/// k positions earlier. Built once at first use.
struct Tables {
  uint32_t t[4][256];

  Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][b] = crc;
    }
    for (uint32_t b = 0; b < 256; ++b) {
      for (int k = 1; k < 4; ++k) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const Tables& tab = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Slicing-by-4 over the aligned middle; byte-at-a-time for the remainder.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tab.t[3][crc & 0xFFu] ^ tab.t[2][(crc >> 8) & 0xFFu] ^
          tab.t[1][(crc >> 16) & 0xFFu] ^ tab.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p) & 0xFFu];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace cce::crc32c
