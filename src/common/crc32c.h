#ifndef CCE_COMMON_CRC32C_H_
#define CCE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace cce::crc32c {

/// Software CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) with a
/// slicing-by-4 table-driven kernel. This is the checksum guarding every
/// write-ahead-log frame (io/context_wal.h): CRC-32C detects all single-bit
/// errors and all bursts up to 32 bits, which is exactly the corruption
/// model of torn writes and flipped disk bits.

/// CRC of the concatenation of the data previously summarised by `crc` and
/// `data[0, n)`.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC of `data[0, n)`.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

/// Masks a CRC before storing it alongside the data it covers. Computing
/// the CRC of a byte stream that embeds CRCs of its own prefix degenerates
/// (the checksum of data + its checksum is a constant); the rotate-and-add
/// mask (same scheme as LevelDB/RocksDB) breaks that structure.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of Mask.
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace cce::crc32c

#endif  // CCE_COMMON_CRC32C_H_
