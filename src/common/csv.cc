#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace cce {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvTable> ParseCsv(const std::string& text) {
  CsvTable table;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool record_has_data = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&]() -> Status {
    end_field();
    if (table.header.empty()) {
      table.header = std::move(record);
    } else {
      if (record.size() != table.header.size()) {
        return Status::InvalidArgument(
            "CSV row has " + std::to_string(record.size()) +
            " fields, header has " + std::to_string(table.header.size()));
      }
      table.rows.push_back(std::move(record));
    }
    record.clear();
    record_has_data = false;
    return Status::Ok();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');  // escaped quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        record_has_data = true;
        break;
      case ',':
        end_field();
        record_has_data = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n': {
        if (record_has_data || !field.empty() || !record.empty()) {
          Status s = end_record();
          if (!s.ok()) return s;
        }
        break;
      }
      default:
        field.push_back(c);
        record_has_data = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV ends inside a quoted field");
  }
  if (record_has_data || !field.empty() || !record.empty()) {
    Status s = end_record();
    if (!s.ok()) return s;
  }
  if (table.header.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str());
}

namespace {

void AppendField(const std::string& field, std::string* out) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    *out += field;
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendRecord(const std::vector<std::string>& record, std::string* out) {
  // A single empty field would serialise to a blank line, which parsers
  // (including ours) skip; quote it so the record round-trips.
  if (record.size() == 1 && record[0].empty()) {
    *out += "\"\"\n";
    return;
  }
  for (size_t i = 0; i < record.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendField(record[i], out);
  }
  out->push_back('\n');
}

}  // namespace

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  AppendRecord(table.header, &out);
  for (const auto& row : table.rows) AppendRecord(row, &out);
  return out;
}

}  // namespace cce
