#ifndef CCE_COMMON_CSV_H_
#define CCE_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cce {

/// A parsed CSV file: a header row plus data rows, all as strings.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of the named column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// Parses RFC-4180-style CSV text: quoted fields, embedded commas, doubled
/// quotes, CRLF line endings. The first record is treated as the header.
Result<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serialises a table back to CSV text (quoting fields that need it).
std::string WriteCsv(const CsvTable& table);

}  // namespace cce

#endif  // CCE_COMMON_CSV_H_
