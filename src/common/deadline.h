#ifndef CCE_COMMON_DEADLINE_H_
#define CCE_COMMON_DEADLINE_H_

#include <chrono>

namespace cce {

/// A per-call time budget on the monotonic clock. Deadlines are absolute
/// (a point in time, not a duration) so they compose across layers: a proxy
/// that spends part of the budget on retries hands the *same* deadline to
/// the key search, which then sees only the remainder.
///
/// The default-constructed deadline is infinite — existing call sites that
/// never set one keep their unbounded behaviour.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite deadline: never expires.
  Deadline() : expiry_(Clock::time_point::max()) {}

  /// A deadline `budget` from now.
  static Deadline After(std::chrono::nanoseconds budget) {
    return Deadline(Clock::now() + budget);
  }

  /// An already-expired deadline (useful in tests).
  static Deadline Expired() { return Deadline(Clock::time_point::min()); }

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(Clock::time_point expiry) { return Deadline(expiry); }

  bool infinite() const { return expiry_ == Clock::time_point::max(); }

  bool expired() const { return !infinite() && Clock::now() >= expiry_; }

  /// Time left before expiry; zero when already expired, the maximum
  /// duration when infinite.
  std::chrono::nanoseconds remaining() const {
    if (infinite()) return std::chrono::nanoseconds::max();
    Clock::time_point now = Clock::now();
    if (now >= expiry_) return std::chrono::nanoseconds::zero();
    return expiry_ - now;
  }

  Clock::time_point expiry() const { return expiry_; }

 private:
  explicit Deadline(Clock::time_point expiry) : expiry_(expiry) {}

  Clock::time_point expiry_;
};

}  // namespace cce

#endif  // CCE_COMMON_DEADLINE_H_
