#ifndef CCE_COMMON_LOGGING_H_
#define CCE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace cce {
namespace internal_logging {

/// Severity of a log record. kFatal aborts the process after emitting.
enum class Severity { kInfo, kWarning, kError, kFatal };

/// Accumulates one log line; flushes (and possibly aborts) on destruction.
/// Not for concurrent use on the same object; distinct objects are fine since
/// the final write is a single ostream << of the assembled line.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << Prefix() << file << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == Severity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* Prefix() const {
    switch (severity_) {
      case Severity::kInfo:
        return "I [";
      case Severity::kWarning:
        return "W [";
      case Severity::kError:
        return "E [";
      case Severity::kFatal:
        return "F [";
    }
    return "? [";
  }

  Severity severity_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a condition check passes.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace cce

#define CCE_LOG_INFO                                                       \
  ::cce::internal_logging::LogMessage(                                     \
      ::cce::internal_logging::Severity::kInfo, __FILE__, __LINE__)        \
      .stream()
#define CCE_LOG_WARNING                                                    \
  ::cce::internal_logging::LogMessage(                                     \
      ::cce::internal_logging::Severity::kWarning, __FILE__, __LINE__)     \
      .stream()
#define CCE_LOG_ERROR                                                      \
  ::cce::internal_logging::LogMessage(                                     \
      ::cce::internal_logging::Severity::kError, __FILE__, __LINE__)       \
      .stream()
#define CCE_LOG_FATAL                                                      \
  ::cce::internal_logging::LogMessage(                                     \
      ::cce::internal_logging::Severity::kFatal, __FILE__, __LINE__)       \
      .stream()

/// Aborts with a message when `cond` is false. Used for programmer errors
/// (precondition violations), never for data-dependent failures — those
/// return Status.
#define CCE_CHECK(cond)                                     \
  (cond) ? (void)0                                          \
         : (void)(CCE_LOG_FATAL << "Check failed: " #cond " ")

#define CCE_CHECK_OK(expr)                                            \
  do {                                                                \
    ::cce::Status cce_check_status_ = (expr);                         \
    if (!cce_check_status_.ok()) {                                    \
      CCE_LOG_FATAL << "Status not OK: " << cce_check_status_.ToString(); \
    }                                                                 \
  } while (0)

#endif  // CCE_COMMON_LOGGING_H_
