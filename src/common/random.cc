#include "common/random.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace cce {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the full 256-bit state from SplitMix64 per the xoshiro authors'
  // recommendation; guards against the all-zero state.
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  CCE_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CCE_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  // Box-Muller; draws until u1 is nonzero to keep log() finite.
  double u1 = 0.0;
  while (u1 == 0.0) u1 = UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  CCE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CCE_CHECK(w >= 0.0);
    total += w;
  }
  CCE_CHECK(total > 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CCE_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Uniform(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace cce
