#ifndef CCE_COMMON_RANDOM_H_
#define CCE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cce {

/// Deterministic, fast pseudo-random generator (xoshiro256**). All
/// randomised components of the library take an explicit Rng so experiments
/// are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal via Box-Muller.
  double Normal();

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

}  // namespace cce

#endif  // CCE_COMMON_RANDOM_H_
