#include "common/status.h"

#include "common/logging.h"

namespace cce {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

namespace internal_status {

void DieOkStatusInResult() {
  CCE_LOG_FATAL << "Result<T> constructed from an OK Status";
  std::abort();  // unreachable: the fatal log aborts; keeps [[noreturn]] honest
}

}  // namespace internal_status

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cce
