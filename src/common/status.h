#ifndef CCE_COMMON_STATUS_H_
#define CCE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cce {

/// Error categories used across the library. Kept deliberately small: callers
/// usually branch on ok() only and surface the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
};

/// Lightweight status object in the RocksDB/Abseil tradition. The library
/// does not throw; fallible operations return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad alpha".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-status union. `ok()` implies `value()` is valid. Accessing the
/// wrong arm is a programmer error and aborts via CHECK in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse: `return value;` or `return Status::InvalidArgument(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller; usable in functions returning
/// Status or Result<T>.
#define CCE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::cce::Status cce_status_ = (expr);          \
    if (!cce_status_.ok()) return cce_status_;   \
  } while (0)

}  // namespace cce

#endif  // CCE_COMMON_STATUS_H_
