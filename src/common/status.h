#ifndef CCE_COMMON_STATUS_H_
#define CCE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cce {

/// Error categories used across the library. Kept deliberately small: callers
/// usually branch on ok() only and surface the message. The serving layer
/// additionally branches on the retryability of a code (see IsRetryable).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  /// A per-call deadline elapsed before the operation completed. Not
  /// retryable: the caller's budget is already spent.
  kDeadlineExceeded,
  /// The backing service is temporarily unreachable (transient fault,
  /// open circuit breaker). Retryable with backoff.
  kUnavailable,
  /// A bounded resource (queue slot, probe budget) was exhausted.
  /// Retryable once load subsides.
  kResourceExhausted,
};

/// Lightweight status object in the RocksDB/Abseil tradition. The library
/// does not throw; fallible operations return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when the failure is transient and the same call may succeed if
  /// repeated (with backoff): kUnavailable and kResourceExhausted. Deadline
  /// misses are deliberately not retryable — the caller's budget is gone —
  /// and every other code reports a deterministic error.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kResourceExhausted;
  }

  /// Human-readable rendering, e.g. "InvalidArgument: bad alpha".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal_status {
/// Aborts: a Result<T> was constructed from an OK status, which would leave
/// it with neither a value nor an error. Defined in status.cc.
[[noreturn]] void DieOkStatusInResult();
}  // namespace internal_status

/// A value-or-status union. `ok()` implies `value()` is valid. Accessing the
/// wrong arm is a programmer error and aborts via CHECK in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse: `return value;` or `return Status::InvalidArgument(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    // An OK status carries no value; allowing it would turn every later
    // value() into a latent abort far from the bug. Fail loudly at the
    // construction site instead.
    if (std::get<Status>(data_).ok()) internal_status::DieOkStatusInResult();
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller; usable in functions returning
/// Status or Result<T>.
#define CCE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::cce::Status cce_status_ = (expr);          \
    if (!cce_status_.ok()) return cce_status_;   \
  } while (0)

/// Evaluates a Result<T>-returning expression; on success assigns the value
/// to `lhs` (a declaration or an existing lvalue), on error propagates the
/// status to the caller. Usable in functions returning Status or Result<U>:
///
///   CCE_ASSIGN_OR_RETURN(auto model, ml::Gbdt::Train(data, opts));
#define CCE_ASSIGN_OR_RETURN(lhs, expr)                                \
  CCE_ASSIGN_OR_RETURN_IMPL_(                                          \
      CCE_STATUS_CONCAT_(cce_result_, __LINE__), lhs, expr)

#define CCE_ASSIGN_OR_RETURN_IMPL_(result_var, lhs, expr)              \
  auto result_var = (expr);                                            \
  if (!result_var.ok()) return result_var.status();                    \
  lhs = std::move(result_var).value()

#define CCE_STATUS_CONCAT_(a, b) CCE_STATUS_CONCAT_IMPL_(a, b)
#define CCE_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace cce

#endif  // CCE_COMMON_STATUS_H_
