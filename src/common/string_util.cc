#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <set>

namespace cce {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row dynamic program: O(min(|a|,|b|)) memory.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t diagonal = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t next_diagonal = row[i];
      size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, substitution});
      diagonal = next_diagonal;
    }
  }
  return row[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

namespace {

std::set<std::string> TokenSet(std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  return std::set<std::string>(tokens.begin(), tokens.end());
}

}  // namespace

double TokenJaccard(std::string_view a, std::string_view b) {
  std::set<std::string> sa = TokenSet(a);
  std::set<std::string> sb = TokenSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  size_t intersection = 0;
  for (const auto& token : sa) intersection += sb.count(token);
  size_t union_size = sa.size() + sb.size() - intersection;
  return union_size == 0
             ? 1.0
             : static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

double TokenContainment(std::string_view a, std::string_view b) {
  std::set<std::string> sa = TokenSet(a);
  std::set<std::string> sb = TokenSet(b);
  if (sa.empty() || sb.empty()) return sa.empty() && sb.empty() ? 1.0 : 0.0;
  const std::set<std::string>& smaller = sa.size() <= sb.size() ? sa : sb;
  const std::set<std::string>& larger = sa.size() <= sb.size() ? sb : sa;
  size_t contained = 0;
  for (const auto& token : smaller) contained += larger.count(token);
  return static_cast<double>(contained) /
         static_cast<double>(smaller.size());
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace cce
