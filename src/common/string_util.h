#ifndef CCE_COMMON_STRING_UTIL_H_
#define CCE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cce {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// Whitespace tokenisation after lowercasing; used by the entity-matching
/// similarity features.
std::vector<std::string> Tokenize(std::string_view text);

/// Levenshtein edit distance (unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalised edit similarity in [0,1]: 1 - dist/max(|a|,|b|); 1 when both
/// strings are empty.
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of the token sets of `a` and `b`.
double TokenJaccard(std::string_view a, std::string_view b);

/// Containment of the smaller token set in the larger one.
double TokenContainment(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cce

#endif  // CCE_COMMON_STRING_UTIL_H_
