#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace cce {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  space_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::CheckNotWorkerThread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& worker : workers_) {
    if (worker.get_id() == self) {
      CCE_LOG_FATAL << "Submit/Wait from inside a pool task: reentrant use "
                       "deadlocks a full queue and breaks the Wait() "
                       "contract";
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  CheckNotWorkerThread();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_capacity_ > 0) {
      space_available_.wait(lock, [this] {
        return shutting_down_ || queue_.size() < queue_capacity_;
      });
    }
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  CheckNotWorkerThread();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_capacity_ > 0 && queue_.size() >= queue_capacity_) {
      return false;
    }
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

size_t ThreadPool::queued() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::Wait() {
  CheckNotWorkerThread();
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] {
    return queue_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) {
        // shutting_down_ with a drained queue: exit.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    space_available_.notify_one();
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cce
