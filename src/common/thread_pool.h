#ifndef CCE_COMMON_THREAD_POOL_H_
#define CCE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cce {

/// A fixed-size worker pool for embarrassingly parallel batch work (e.g.
/// explaining many instances against a read-only context). Tasks are plain
/// std::function<void()>; Wait() blocks until the queue drains and all
/// in-flight tasks finish. Not reentrant: do not Submit from inside a task.
class ThreadPool {
 public:
  /// `num_threads` = 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  template <typename Fn>
  void ParallelFor(size_t count, Fn&& fn) {
    for (size_t i = 0; i < count; ++i) {
      Submit([&fn, i] { fn(i); });
    }
    Wait();
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace cce

#endif  // CCE_COMMON_THREAD_POOL_H_
