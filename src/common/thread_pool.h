#ifndef CCE_COMMON_THREAD_POOL_H_
#define CCE_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cce {

/// A fixed-size worker pool for embarrassingly parallel batch work (e.g.
/// explaining many instances against a read-only context). Tasks are plain
/// std::function<void()>; Wait() blocks until the queue drains and all
/// in-flight tasks finish.
///
/// Not reentrant: submitting from inside a task deadlocks Wait()-based
/// drains and is a programmer error — enforced with a CHECK. Use a second
/// pool (or restructure into a flat task list) instead.
class ThreadPool {
 public:
  /// `num_threads` = 0 uses the hardware concurrency (at least 1).
  /// `queue_capacity` = 0 leaves the queue unbounded (the historical
  /// behaviour); a positive capacity bounds the number of *queued* (not yet
  /// running) tasks, at which point Submit blocks and TrySubmit rejects —
  /// backpressure instead of unbounded memory growth under a slow consumer.
  explicit ThreadPool(size_t num_threads = 0, size_t queue_capacity = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  /// Enqueues a task; blocks while the queue is at capacity.
  void Submit(std::function<void()> task);

  /// Enqueues a task unless the queue is at capacity; returns false (and
  /// does not enqueue) when full. Never blocks.
  bool TrySubmit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Tasks queued but not yet picked up by a worker.
  size_t queued() const;

  /// Runs fn(i) for i in [0, count) across the pool and waits. Work is
  /// chunked into contiguous ranges (~4 tasks per worker) rather than one
  /// task per item, so per-task overhead never dominates a small loop body
  /// and a bounded-queue pool never blocks the producer on huge counts.
  /// Within a chunk, indices run in order on one worker.
  template <typename Fn>
  void ParallelFor(size_t count, Fn&& fn) {
    if (count == 0) return;
    const size_t max_tasks = std::max<size_t>(1, num_threads()) * 4;
    const size_t chunk = (count + max_tasks - 1) / max_tasks;
    for (size_t begin = 0; begin < count; begin += chunk) {
      const size_t end = std::min(count, begin + chunk);
      Submit([&fn, begin, end] {
        for (size_t i = begin; i < end; ++i) fn(i);
      });
    }
    Wait();
  }

  /// Runs fn(begin, end) over fixed-size chunks of [0, count) across the
  /// pool and waits. Unlike ParallelFor, the chunk boundaries depend only on
  /// `chunk` — never on the pool width — so per-chunk results are identical
  /// for any number of workers (including one). Combine per-chunk partials
  /// in chunk order and a reduction is bit-identical across pool sizes:
  /// that is the determinism contract the parallel conformity engine is
  /// built on (docs/algorithms.md).
  template <typename Fn>
  void ParallelChunks(size_t count, size_t chunk, Fn&& fn) {
    if (count == 0) return;
    if (chunk == 0) chunk = 1;
    for (size_t begin = 0; begin < count; begin += chunk) {
      const size_t end = std::min(count, begin + chunk);
      Submit([&fn, begin, end] { fn(begin, end); });
    }
    Wait();
  }

 private:
  void WorkerLoop();

  /// CHECK-fails when called from one of this pool's own workers.
  void CheckNotWorkerThread() const;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  size_t queue_capacity_ = 0;  // 0 = unbounded
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::condition_variable space_available_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace cce

#endif  // CCE_COMMON_THREAD_POOL_H_
