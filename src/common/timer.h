#ifndef CCE_COMMON_TIMER_H_
#define CCE_COMMON_TIMER_H_

#include <chrono>

namespace cce {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction/Restart, in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cce

#endif  // CCE_COMMON_TIMER_H_
