#include "common/token_bucket.h"

#include <algorithm>
#include <cmath>

namespace cce {

TokenBucket::TokenBucket(const Options& options, ClockFn clock)
    : options_(options), clock_(std::move(clock)) {
  options_.burst = std::max(options_.burst, 1.0);
  if (!clock_) {
    clock_ = [] { return Clock::now(); };
  }
  tokens_ = options_.burst;  // start full: the first burst is free
  last_refill_ = clock_();
}

void TokenBucket::Refill() {
  const Clock::time_point now = clock_();
  if (now <= last_refill_) return;
  const double elapsed_sec =
      std::chrono::duration<double>(now - last_refill_).count();
  tokens_ = std::min(options_.burst,
                     tokens_ + elapsed_sec * options_.refill_per_sec);
  last_refill_ = now;
}

bool TokenBucket::TryAcquire(double tokens) {
  if (unlimited()) return true;
  Refill();
  if (tokens_ + 1e-9 < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::available() {
  if (unlimited()) return options_.burst;
  Refill();
  return tokens_;
}

std::chrono::milliseconds TokenBucket::RetryAfter(double tokens) {
  if (unlimited()) return std::chrono::milliseconds::zero();
  Refill();
  const double deficit = tokens - tokens_;
  if (deficit <= 0.0) return std::chrono::milliseconds::zero();
  const double ms = std::ceil(deficit / options_.refill_per_sec * 1000.0);
  return std::chrono::milliseconds(static_cast<int64_t>(ms));
}

}  // namespace cce
