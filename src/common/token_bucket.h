#ifndef CCE_COMMON_TOKEN_BUCKET_H_
#define CCE_COMMON_TOKEN_BUCKET_H_

#include <chrono>
#include <functional>

namespace cce {

/// Classic token-bucket rate limiter: the bucket holds up to `burst` tokens
/// and refills continuously at `refill_per_sec`. A request that finds a
/// token proceeds; one that does not is the caller's to reject (with the
/// RetryAfter() hint) or to queue. Continuous refill means a client that
/// stays under its rate keeps its full burst budget for traffic spikes.
///
/// Time is read through an injectable clock so refill schedules are exactly
/// reproducible in tests. Not thread-safe: the serving layer serialises
/// access under its own admission mutex.
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;
  using ClockFn = std::function<Clock::time_point()>;

  struct Options {
    /// Sustained admission rate in tokens per second. <= 0 disables the
    /// limiter entirely: every acquire succeeds (an unlimited class).
    double refill_per_sec = 0.0;
    /// Bucket capacity — the largest burst admitted at once. Clamped to at
    /// least 1 token so a positive rate can ever admit anything.
    double burst = 1.0;
  };

  explicit TokenBucket(const Options& options, ClockFn clock = nullptr);

  /// True (and consumes) when `tokens` are available now.
  bool TryAcquire(double tokens = 1.0);

  /// Time until `tokens` will be available at the current fill level; zero
  /// when they already are (or the bucket is unlimited). The natural
  /// retry-after hint for a rejected request.
  std::chrono::milliseconds RetryAfter(double tokens = 1.0);

  /// Tokens available right now (refreshes the fill level).
  double available();

  bool unlimited() const { return options_.refill_per_sec <= 0.0; }

  const Options& options() const { return options_; }

 private:
  /// Accrues tokens for the time elapsed since the last refill.
  void Refill();

  Options options_;
  ClockFn clock_;
  double tokens_;
  Clock::time_point last_refill_;
};

}  // namespace cce

#endif  // CCE_COMMON_TOKEN_BUCKET_H_
