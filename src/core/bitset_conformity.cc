#include "core/bitset_conformity.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace cce {

BitsetConformityChecker::BitsetConformityChecker(const Context* context,
                                                 const Options& options)
    : context_(context), pool_(options.pool) {
  const Schema& schema = context_->schema();
  value_bits_.resize(schema.num_features());
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    value_bits_[f].resize(schema.DomainSize(f));
  }
  label_bits_.resize(schema.num_labels());
  EnsureCapacity(context_->size());
  // Column-major build: one pass per feature over a contiguous column copy
  // keeps the bitmap writes local to that feature's value bitmaps.
  std::vector<ValueId> column;
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    context_->CopyColumn(f, &column);
    for (size_t row = 0; row < column.size(); ++row) {
      const ValueId v = column[row];
      if (v >= value_bits_[f].size()) {
        value_bits_[f].resize(v + 1, RowBitmap(capacity_rows_));
      }
      value_bits_[f][v].Set(row);
    }
  }
  for (size_t row = 0; row < context_->size(); ++row) {
    const Label y = context_->label(row);
    if (y >= label_bits_.size()) {
      label_bits_.resize(y + 1, RowBitmap(capacity_rows_));
    }
    label_bits_[y].Set(row);
    live_.Set(row);
  }
  next_row_ = context_->size();
  live_rows_ = context_->size();
}

void BitsetConformityChecker::EnsureCapacity(size_t rows) {
  if (rows <= capacity_rows_) return;
  size_t capacity = std::max<size_t>(64, capacity_rows_);
  while (capacity < rows) capacity *= 2;
  capacity_rows_ = capacity;
  for (auto& per_feature : value_bits_) {
    for (RowBitmap& bits : per_feature) bits.Resize(capacity_rows_);
  }
  for (RowBitmap& bits : label_bits_) bits.Resize(capacity_rows_);
  live_.Resize(capacity_rows_);
}

const RowBitmap* BitsetConformityChecker::ValueBits(FeatureId feature,
                                                    ValueId value) const {
  CCE_CHECK(feature < value_bits_.size());
  if (value >= value_bits_[feature].size()) return nullptr;
  return &value_bits_[feature][value];
}

size_t BitsetConformityChecker::CountFused(
    const std::vector<const uint64_t*>& ops,
    const RowBitmap* exclude_label) const {
  const size_t words = live_.num_words();
  const uint64_t* live = live_.data();
  const uint64_t* excl =
      exclude_label != nullptr ? exclude_label->data() : nullptr;
  auto count_range = [&](size_t begin, size_t end) {
    size_t count = 0;
    for (size_t w = begin; w < end; ++w) {
      uint64_t acc = live[w];
      if (excl != nullptr) acc &= ~excl[w];
      for (const uint64_t* op : ops) acc &= op[w];
      count += std::popcount(acc);
    }
    return count;
  };
  if (pool_ == nullptr || words <= RowBitmap::kShardWords) {
    return count_range(0, words);
  }
  const size_t num_shards =
      (words + RowBitmap::kShardWords - 1) / RowBitmap::kShardWords;
  std::vector<size_t> partial(num_shards, 0);
  pool_->ParallelChunks(words, RowBitmap::kShardWords,
                        [&](size_t begin, size_t end) {
                          partial[begin / RowBitmap::kShardWords] =
                              count_range(begin, end);
                        });
  shard_tasks_.fetch_add(num_shards, std::memory_order_relaxed);
  size_t count = 0;
  for (size_t p : partial) count += p;
  return count;
}

bool BitsetConformityChecker::IntersectInto(const Instance& x0,
                                            const FeatureSet& explanation,
                                            RowBitmap* out) const {
  *out = live_;
  for (FeatureId f : explanation) {
    const RowBitmap* bits = ValueBits(f, x0[f]);
    if (bits == nullptr) return false;
    out->AndWith(*bits);
  }
  return true;
}

std::vector<size_t> BitsetConformityChecker::AgreeingRows(
    const Instance& x0, const FeatureSet& explanation) const {
  RowBitmap agree;
  if (!IntersectInto(x0, explanation, &agree)) return {};
  return agree.ToRows();
}

size_t BitsetConformityChecker::CountViolators(
    const Instance& x0, Label y0, const FeatureSet& explanation) const {
  std::vector<const uint64_t*> ops;
  ops.reserve(explanation.size());
  for (FeatureId f : explanation) {
    const RowBitmap* bits = ValueBits(f, x0[f]);
    if (bits == nullptr) return 0;  // unseen value: nothing agrees
    ops.push_back(bits->data());
  }
  const RowBitmap* label =
      y0 < label_bits_.size() ? &label_bits_[y0] : nullptr;
  return CountFused(ops, label);
}

double BitsetConformityChecker::Precision(const Instance& x0, Label y0,
                                          const FeatureSet& explanation)
    const {
  if (live_rows_ == 0) return 1.0;
  const size_t violators = CountViolators(x0, y0, explanation);
  return 1.0 - static_cast<double>(violators) /
                   static_cast<double>(live_rows_);
}

size_t BitsetConformityChecker::ViolatorBudget(double alpha) const {
  const double budget = (1.0 - alpha) * static_cast<double>(live_rows_);
  return static_cast<size_t>(std::floor(budget + 1e-9));
}

bool BitsetConformityChecker::IsAlphaConformant(const Instance& x0, Label y0,
                                                const FeatureSet& explanation,
                                                double alpha) const {
  return CountViolators(x0, y0, explanation) <= ViolatorBudget(alpha);
}

std::vector<size_t> BitsetConformityChecker::CoveredRows(
    const Instance& x0, Label y0, const FeatureSet& explanation) const {
  RowBitmap agree;
  if (!IntersectInto(x0, explanation, &agree)) return {};
  if (y0 >= label_bits_.size()) return {};  // unseen label covers nothing
  agree.AndWith(label_bits_[y0]);
  return agree.ToRows();
}

size_t BitsetConformityChecker::AddRow(const Instance& x, Label y) {
  CCE_CHECK(x.size() == value_bits_.size());
  const size_t row = next_row_++;
  EnsureCapacity(next_row_);
  for (FeatureId f = 0; f < x.size(); ++f) {
    const ValueId v = x[f];
    if (v >= value_bits_[f].size()) {
      value_bits_[f].resize(v + 1, RowBitmap(capacity_rows_));
    }
    value_bits_[f][v].Set(row);
  }
  if (y >= label_bits_.size()) {
    label_bits_.resize(y + 1, RowBitmap(capacity_rows_));
  }
  label_bits_[y].Set(row);
  live_.Set(row);
  ++live_rows_;
  return row;
}

void BitsetConformityChecker::RemoveRow(size_t row) {
  CCE_CHECK(row < next_row_);
  if (!live_.Test(row)) return;
  live_.Clear(row);
  --live_rows_;
}

}  // namespace cce
