#ifndef CCE_CORE_BITSET_CONFORMITY_H_
#define CCE_CORE_BITSET_CONFORMITY_H_

#include <cstdint>
#include <atomic>
#include <vector>

#include "core/dataset.h"
#include "core/row_bitmap.h"
#include "core/types.h"

namespace cce {

class ThreadPool;

/// The blocked-bitset conformity engine: the word-parallel counterpart of
/// ConformityChecker (docs/algorithms.md "The bitset conformity engine").
///
/// Every (feature, value) predicate of the context maps to a RowBitmap over
/// row ids, and so does every label. A violator count for a key E is then
///
///   popcount( live & ~label[y0] & AND_{f in E} value[f][x0[f]] )
///
/// one streaming pass of word-AND + popcount over 64-row blocks — no sorted
/// merges, no intermediate row lists. With a ThreadPool the word range is
/// sharded into fixed-size blocks (RowBitmap::kShardWords) and partial
/// popcounts are summed in shard order, so every count is identical with
/// 0, 1 or N worker threads.
///
/// Incremental maintenance (the streaming path): AddRow appends one row id
/// (O(n) bit sets, amortised), RemoveRow clears one bit of the live mask
/// (O(1)) — stale bits left behind in the value/label bitmaps are masked
/// out by `live` on every count, so a window slide costs O(changed rows),
/// not O(context).
///
/// Determinism contract: for the same logical context, every query returns
/// exactly the same result as ConformityChecker — counts are exact
/// integers and row lists come back ascending from both engines. The
/// contract is enforced by tests/conformity_parallel_test.cc.
///
/// Thread safety: queries (const methods) may run concurrently; AddRow /
/// RemoveRow require external synchronisation against queries and each
/// other, like std::vector.
class BitsetConformityChecker {
 public:
  struct Options {
    /// Shards block ranges of large counts across this pool (not owned;
    /// null = serial). The pool must not be one whose worker is the
    /// calling thread (ThreadPool is non-reentrant).
    ThreadPool* pool = nullptr;
  };

  /// Indexes the context. `context` is not owned and must outlive the
  /// checker; AddRow may extend the checker past the context's rows (the
  /// streaming case), after which context() no longer reflects the
  /// indexed rows and only the query methods are meaningful.
  explicit BitsetConformityChecker(const Context* context,
                                   const Options& options);
  explicit BitsetConformityChecker(const Context* context)
      : BitsetConformityChecker(context, Options()) {}

  // -- Query surface: same shape and semantics as ConformityChecker. -----

  /// Live rows that agree with x0 on every feature of E, ascending.
  std::vector<size_t> AgreeingRows(const Instance& x0,
                                   const FeatureSet& explanation) const;

  size_t CountViolators(const Instance& x0, Label y0,
                        const FeatureSet& explanation) const;

  double Precision(const Instance& x0, Label y0,
                   const FeatureSet& explanation) const;

  bool IsAlphaConformant(const Instance& x0, Label y0,
                         const FeatureSet& explanation, double alpha) const;

  /// floor((1 - alpha) * live_rows) with the same epsilon guard as the
  /// reference engine.
  size_t ViolatorBudget(double alpha) const;

  std::vector<size_t> CoveredRows(const Instance& x0, Label y0,
                                  const FeatureSet& explanation) const;

  const Context& context() const { return *context_; }

  // -- Incremental maintenance (streaming contexts). ---------------------

  /// Appends a row and returns its row id. O(num_features) amortised.
  size_t AddRow(const Instance& x, Label y);

  /// Removes a row from the live set. O(1); id remains allocated.
  void RemoveRow(size_t row);

  /// Rows currently live (the |I| of every budget computation).
  size_t live_rows() const { return live_rows_; }

  /// Row ids ever allocated (bitmap length). Grows monotonically; rebuild
  /// the checker when the live fraction gets small to reclaim space.
  size_t allocated_rows() const { return next_row_; }

  /// Cumulative pool tasks dispatched by sharded counts — the "shard
  /// fanout" observability signal. 0 while everything ran serial.
  uint64_t shard_tasks() const {
    return shard_tasks_.load(std::memory_order_relaxed);
  }

 private:
  /// The value bitmap for (feature, value); null when the value was never
  /// indexed (unseen dictionary code) — i.e. no row matches.
  const RowBitmap* ValueBits(FeatureId feature, ValueId value) const;

  /// live & ~label[y0] & AND of `ops`; returns the popcount. Sharded
  /// across the pool when the word range is large enough.
  size_t CountFused(const std::vector<const uint64_t*>& ops,
                    const RowBitmap* exclude_label) const;

  /// Materialises live & AND of E's predicate bitmaps into `out`; false
  /// when some predicate is unseen (empty agreement set).
  bool IntersectInto(const Instance& x0, const FeatureSet& explanation,
                     RowBitmap* out) const;

  /// Grows every bitmap to hold at least `rows` row ids (geometric).
  void EnsureCapacity(size_t rows);

  const Context* context_;  // not owned
  ThreadPool* pool_;        // not owned; may be null

  // value_bits_[f][v] = rows with context value v for feature f. Inner
  // vectors grow on demand when a row carries a value beyond the interned
  // domain (mirrors the reference engine's postings table).
  std::vector<std::vector<RowBitmap>> value_bits_;
  std::vector<RowBitmap> label_bits_;  // label_bits_[y] = rows labelled y
  RowBitmap live_;                     // rows not yet removed

  size_t capacity_rows_ = 0;  // current bitmap length
  size_t next_row_ = 0;       // next row id to allocate
  size_t live_rows_ = 0;      // popcount(live_), tracked incrementally

  mutable std::atomic<uint64_t> shard_tasks_{0};
};

}  // namespace cce

#endif  // CCE_CORE_BITSET_CONFORMITY_H_
