#include "core/cce.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace cce {

// ---------------------------------------------------------------- CceBatch

CceBatch::CceBatch(Context context, double alpha)
    : context_(std::move(context)), alpha_(alpha) {}

Result<KeyResult> CceBatch::Explain(size_t row) const {
  Srk::Options options;
  options.alpha = alpha_;
  return Srk::Explain(context_, row, options);
}

Result<KeyResult> CceBatch::ExplainInstance(const Instance& x0,
                                            Label y0) const {
  Srk::Options options;
  options.alpha = alpha_;
  return Srk::ExplainInstance(context_, x0, y0, options);
}

std::vector<Result<KeyResult>> CceBatch::ExplainMany(
    const std::vector<size_t>& rows, size_t num_threads) const {
  std::vector<Result<KeyResult>> results(
      rows.size(), Result<KeyResult>(Status::Internal("not computed")));
  ThreadPool pool(num_threads);
  // Pull-style gauges in the process registry; unbound when the pool dies.
  obs::ThreadPoolGauges pool_gauges(&obs::GlobalRegistry(), &pool,
                                    "explain_many");
  pool.ParallelFor(rows.size(), [&](size_t i) {
    results[i] = Explain(rows[i]);
  });
  return results;
}

// --------------------------------------------------------------- CceOnline

CceOnline::CceOnline(std::unique_ptr<Osrk> osrk) : osrk_(std::move(osrk)) {}

Result<std::unique_ptr<CceOnline>> CceOnline::Create(
    std::shared_ptr<const Schema> schema, Instance x0, Label y0,
    const Options& options) {
  Osrk::Options osrk_options;
  osrk_options.alpha = options.alpha;
  osrk_options.seed = options.seed;
  auto osrk = Osrk::Create(std::move(schema), std::move(x0), y0,
                           osrk_options);
  if (!osrk.ok()) return osrk.status();
  return std::unique_ptr<CceOnline>(
      new CceOnline(std::move(osrk).value()));
}

const FeatureSet& CceOnline::Observe(const Instance& x, Label y) {
  return osrk_->Observe(x, y);
}

const FeatureSet& CceOnline::key() const { return osrk_->key(); }
size_t CceOnline::context_size() const { return osrk_->context_size(); }
double CceOnline::achieved_alpha() const { return osrk_->achieved_alpha(); }

// -------------------------------------------------- SlidingWindowExplainer

SlidingWindowExplainer::SlidingWindowExplainer(
    std::shared_ptr<const Schema> schema, const Options& options)
    : schema_(std::move(schema)), options_(options) {}

Result<std::unique_ptr<SlidingWindowExplainer>>
SlidingWindowExplainer::Create(std::shared_ptr<const Schema> schema,
                               const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.window_size == 0) {
    return Status::InvalidArgument("window_size must be positive");
  }
  if (options.step == 0 || options.step > options.window_size) {
    return Status::InvalidArgument(
        "step must be in [1, window_size]");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  return std::unique_ptr<SlidingWindowExplainer>(
      new SlidingWindowExplainer(std::move(schema), options));
}

void SlidingWindowExplainer::Observe(const Instance& x, Label y) {
  CCE_CHECK(x.size() == schema_->num_features());
  window_.emplace_back(x, y);
  while (window_.size() > options_.window_size) window_.pop_front();
  if (++since_last_step_ >= options_.step) {
    since_last_step_ = 0;
    ++window_epoch_;
  }
}

Context SlidingWindowExplainer::CurrentWindowContext() const {
  Context context(schema_);
  for (const auto& [x, y] : window_) context.Add(x, y);
  return context;
}

std::string SlidingWindowExplainer::InstanceKey(const Instance& x, Label y) {
  std::string key;
  key.reserve(x.size() * 4 + 4);
  for (ValueId v : x) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  key.append(reinterpret_cast<const char*>(&y), sizeof(y));
  return key;
}

Result<KeyResult> SlidingWindowExplainer::Explain(const Instance& x0,
                                                  Label y0) {
  if (x0.size() != schema_->num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  const std::string cache_key = InstanceKey(x0, y0);
  auto cached = resolved_.find(cache_key);
  const bool have_cached = cached != resolved_.end();
  const bool same_epoch =
      have_cached && resolved_epoch_[cache_key] == window_epoch_;

  if (have_cached &&
      (options_.policy == KeyResolutionPolicy::kFirstWins || same_epoch)) {
    return cached->second;
  }

  Context context = CurrentWindowContext();
  Srk::Options options;
  options.alpha = options_.alpha;
  Result<KeyResult> fresh = Srk::ExplainInstance(context, x0, y0, options);
  if (!fresh.ok()) return fresh.status();

  KeyResult resolved = std::move(fresh).value();
  if (have_cached && options_.policy == KeyResolutionPolicy::kUnionKey) {
    for (FeatureId f : cached->second.key) {
      FeatureSetInsert(&resolved.key, f);
    }
  }
  resolved_[cache_key] = resolved;
  resolved_epoch_[cache_key] = window_epoch_;
  return resolved;
}

// ------------------------------------------------------------ DriftMonitor

DriftMonitor::DriftMonitor(std::shared_ptr<const Schema> schema,
                           Options options)
    : schema_(std::move(schema)), options_(std::move(options)) {
  CCE_CHECK(options_.probe_count > 0);
}

void DriftMonitor::Observe(const Instance& x, Label y) {
  ++observed_;
  if (probes_.size() < options_.probe_count) {
    Osrk::Options osrk_options;
    osrk_options.alpha = options_.alpha;
    osrk_options.seed = options_.seed + probes_.size();
    auto probe = Osrk::Create(schema_, x, y, osrk_options);
    CCE_CHECK_OK(probe.status());
    probes_.push_back(std::move(probe).value());
  }
  for (auto& probe : probes_) probe->Observe(x, y);

  history_.emplace_back(observed_, AverageSuccinctness());
  while (!history_.empty() &&
         history_.front().first + options_.alarm_window <
             history_.back().first) {
    history_.pop_front();
  }
  if (history_.size() >= 2 && observed_ > options_.warmup) {
    double growth = history_.back().second - history_.front().second;
    if (growth >= options_.alarm_growth) alarmed_ = true;
  }
}

double DriftMonitor::AverageSuccinctness() const {
  if (probes_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& probe : probes_) {
    total += static_cast<double>(probe->key().size());
  }
  return total / static_cast<double>(probes_.size());
}

}  // namespace cce
