#ifndef CCE_CORE_CCE_H_
#define CCE_CORE_CCE_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/osrk.h"
#include "core/schema.h"
#include "core/srk.h"
#include "core/types.h"

namespace cce {

/// CCE — Client-Centric feature Explanation (paper Section 6).
///
/// CCE sits between a possibly remote black-box model and its client. It
/// never queries the model: the context consists of inference instances and
/// the predictions the client already received during serving.
///
/// Batch mode: the client holds the full inference set; explanations are
/// relative keys computed by SRK. Online mode: inference instances stream
/// in; OSRK maintains coherent keys per monitored instance.
class CceBatch {
 public:
  /// Takes ownership of the context (instances + served predictions).
  CceBatch(Context context, double alpha);

  /// Relative key for the context row `row`.
  Result<KeyResult> Explain(size_t row) const;

  /// Relative key for an ad-hoc (x0, prediction) pair in the same schema.
  Result<KeyResult> ExplainInstance(const Instance& x0, Label y0) const;

  /// Explains many context rows in parallel (SRK is read-only over the
  /// context, so batch explanation parallelises embarrassingly).
  /// `num_threads` = 0 uses the hardware concurrency. The result is
  /// row-aligned with `rows`; a bad row index yields that entry's error.
  std::vector<Result<KeyResult>> ExplainMany(const std::vector<size_t>& rows,
                                             size_t num_threads = 0) const;

  const Context& context() const { return context_; }
  double alpha() const { return alpha_; }

 private:
  Context context_;
  double alpha_;
};

/// Online explanation monitoring for one target instance (paper Section 5).
class CceOnline {
 public:
  struct Options {
    double alpha = 1.0;
    uint64_t seed = 42;
  };

  static Result<std::unique_ptr<CceOnline>> Create(
      std::shared_ptr<const Schema> schema, Instance x0, Label y0,
      const Options& options);

  /// Feeds the next served (instance, prediction); returns the updated key.
  const FeatureSet& Observe(const Instance& x, Label y);

  const FeatureSet& key() const;
  size_t context_size() const;
  double achieved_alpha() const;

 private:
  explicit CceOnline(std::unique_ptr<Osrk> osrk);
  std::unique_ptr<Osrk> osrk_;
};

/// How overlapping sliding-window contexts resolve to one explanation per
/// instance (paper Appendix B, Exp-4).
enum class KeyResolutionPolicy {
  kFirstWins,  // keep the key from the earliest window containing x
  kLastWins,   // keep the key from the latest window (CCE default)
  kUnionKey,   // union of all keys across windows containing x
};

/// Sliding-window CCE for dynamic models that evolve without notice: the
/// context holds the most recent `window_size` served instances and shifts
/// by `step` instances at a time, so explanations track the current model.
class SlidingWindowExplainer {
 public:
  struct Options {
    size_t window_size = 512;
    size_t step = 64;  // ΔI of the paper; must be <= window_size
    double alpha = 1.0;
    KeyResolutionPolicy policy = KeyResolutionPolicy::kLastWins;
  };

  static Result<std::unique_ptr<SlidingWindowExplainer>> Create(
      std::shared_ptr<const Schema> schema, const Options& options);

  /// Feeds the next served (instance, prediction).
  void Observe(const Instance& x, Label y);

  /// Explains (x0, y0) against the current window, applying the resolution
  /// policy across the windows that contained x0.
  Result<KeyResult> Explain(const Instance& x0, Label y0);

  size_t window_population() const { return window_.size(); }

 private:
  SlidingWindowExplainer(std::shared_ptr<const Schema> schema,
                         const Options& options);

  Context CurrentWindowContext() const;
  static std::string InstanceKey(const Instance& x, Label y);

  std::shared_ptr<const Schema> schema_;
  Options options_;
  std::deque<std::pair<Instance, Label>> window_;
  size_t since_last_step_ = 0;
  uint64_t window_epoch_ = 0;  // bumped every `step` arrivals
  // Cached per-instance resolutions across window epochs.
  std::unordered_map<std::string, KeyResult> resolved_;
  std::unordered_map<std::string, uint64_t> resolved_epoch_;
};

/// Monitors model health during serving (paper Section 7.4): tracks the
/// succinctness of OSRK-maintained keys for a small panel of probe
/// instances; an abnormal growth in average key size signals an accuracy
/// dip (noise / concept drift) without ever consulting ground truth.
class DriftMonitor {
 public:
  struct Options {
    size_t probe_count = 8;  // instances adopted as monitoring targets
    double alpha = 1.0;
    uint64_t seed = 42;
    /// Alarm when average succinctness grows by this many features within
    /// `alarm_window` observations.
    double alarm_growth = 1.5;
    size_t alarm_window = 200;
    /// Ignore growth during the first `warmup` observations, while the
    /// probes' keys are still converging on the clean distribution.
    size_t warmup = 300;
  };

  explicit DriftMonitor(std::shared_ptr<const Schema> schema,
                        Options options);

  /// Feeds the next served (instance, prediction). The first
  /// `probe_count` distinct arrivals become probes.
  void Observe(const Instance& x, Label y);

  /// Average key size across probes (0 before any probe exists).
  double AverageSuccinctness() const;

  /// True when succinctness grew faster than the configured alarm rate.
  bool Alarmed() const { return alarmed_; }

  size_t observed() const { return observed_; }

 private:
  std::shared_ptr<const Schema> schema_;
  Options options_;
  std::vector<std::unique_ptr<Osrk>> probes_;
  size_t observed_ = 0;
  std::deque<std::pair<size_t, double>> history_;  // (observed, avg size)
  bool alarmed_ = false;
};

}  // namespace cce

#endif  // CCE_CORE_CCE_H_
