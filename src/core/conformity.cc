#include "core/conformity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cce {
namespace {

const std::vector<size_t>& EmptyRows() {
  static const std::vector<size_t>* kEmpty = new std::vector<size_t>();
  return *kEmpty;
}

// Intersects two sorted row-id vectors.
std::vector<size_t> Intersect(const std::vector<size_t>& a,
                              const std::vector<size_t>& b) {
  std::vector<size_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

ConformityChecker::ConformityChecker(const Context* context)
    : context_(context) {
  const Schema& schema = context_->schema();
  postings_.resize(schema.num_features());
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    postings_[f].resize(schema.DomainSize(f));
  }
  for (size_t row = 0; row < context_->size(); ++row) {
    const Instance& x = context_->instance(row);
    for (FeatureId f = 0; f < schema.num_features(); ++f) {
      ValueId v = x[f];
      if (v >= postings_[f].size()) postings_[f].resize(v + 1);
      postings_[f][v].push_back(row);
    }
  }
}

const std::vector<size_t>& ConformityChecker::Postings(FeatureId feature,
                                                       ValueId value) const {
  CCE_CHECK(feature < postings_.size());
  if (value >= postings_[feature].size()) return EmptyRows();
  return postings_[feature][value];
}

std::vector<size_t> ConformityChecker::AgreeingRows(
    const Instance& x0, const FeatureSet& explanation) const {
  if (explanation.empty()) {
    std::vector<size_t> all(context_->size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  // Intersect shortest-first to keep intermediate results small.
  std::vector<FeatureId> order(explanation);
  std::sort(order.begin(), order.end(), [&](FeatureId a, FeatureId b) {
    return Postings(a, x0[a]).size() < Postings(b, x0[b]).size();
  });
  std::vector<size_t> rows = Postings(order[0], x0[order[0]]);
  for (size_t i = 1; i < order.size() && !rows.empty(); ++i) {
    rows = Intersect(rows, Postings(order[i], x0[order[i]]));
  }
  return rows;
}

size_t ConformityChecker::CountViolators(const Instance& x0, Label y0,
                                         const FeatureSet& explanation) const {
  size_t violators = 0;
  for (size_t row : AgreeingRows(x0, explanation)) {
    if (context_->label(row) != y0) ++violators;
  }
  return violators;
}

double ConformityChecker::Precision(const Instance& x0, Label y0,
                                    const FeatureSet& explanation) const {
  if (context_->empty()) return 1.0;
  size_t violators = CountViolators(x0, y0, explanation);
  return 1.0 - static_cast<double>(violators) /
                   static_cast<double>(context_->size());
}

size_t ConformityChecker::ViolatorBudget(double alpha) const {
  double budget = (1.0 - alpha) * static_cast<double>(context_->size());
  return static_cast<size_t>(std::floor(budget + 1e-9));
}

bool ConformityChecker::IsAlphaConformant(const Instance& x0, Label y0,
                                          const FeatureSet& explanation,
                                          double alpha) const {
  return CountViolators(x0, y0, explanation) <= ViolatorBudget(alpha);
}

std::vector<size_t> ConformityChecker::CoveredRows(
    const Instance& x0, Label y0, const FeatureSet& explanation) const {
  std::vector<size_t> covered;
  for (size_t row : AgreeingRows(x0, explanation)) {
    if (context_->label(row) == y0) covered.push_back(row);
  }
  return covered;
}

}  // namespace cce
