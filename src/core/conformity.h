#ifndef CCE_CORE_CONFORMITY_H_
#define CCE_CORE_CONFORMITY_H_

#include <vector>

#include "core/dataset.h"
#include "core/types.h"

namespace cce {

/// Conformity bookkeeping over a fixed context I (paper Section 3.1).
///
/// For an instance x0 with prediction y0, a *violator* of a feature set E is
/// an instance x' in I with x'[E] = x0[E] and M(x') != y0. E is an
/// alpha-conformant key for x0 relative to I iff the violator count is at
/// most (1 - alpha) * |I|.
///
/// The checker indexes the context by (feature, value) posting lists so that
/// violator counting is an intersection of sorted row-id lists.
class ConformityChecker {
 public:
  explicit ConformityChecker(const Context* context);

  /// Rows of the context that agree with x0 on every feature of E.
  /// With empty E this is every row.
  std::vector<size_t> AgreeingRows(const Instance& x0,
                                   const FeatureSet& explanation) const;

  /// Number of violators of `explanation` for (x0, y0).
  size_t CountViolators(const Instance& x0, Label y0,
                        const FeatureSet& explanation) const;

  /// Largest alpha for which `explanation` is alpha-conformant — the
  /// *precision* of the explanation (paper Section 7.1(b)). Empty contexts
  /// yield 1.
  double Precision(const Instance& x0, Label y0,
                   const FeatureSet& explanation) const;

  /// True iff `explanation` is alpha-conformant for (x0, y0) relative to the
  /// context: violators <= (1 - alpha) * |I|.
  bool IsAlphaConformant(const Instance& x0, Label y0,
                         const FeatureSet& explanation, double alpha) const;

  /// The tolerated violator budget floor((1 - alpha) * |I|) used by the
  /// algorithms' stopping rule (with an epsilon guard against FP error).
  size_t ViolatorBudget(double alpha) const;

  /// Rows covered by the explanation in the recall sense (Section 7.1(c)):
  /// rows that agree with x0 on E *and* share its prediction.
  std::vector<size_t> CoveredRows(const Instance& x0, Label y0,
                                  const FeatureSet& explanation) const;

  const Context& context() const { return *context_; }

 private:
  const std::vector<size_t>& Postings(FeatureId feature, ValueId value) const;

  const Context* context_;  // not owned; must outlive the checker
  // postings_[feature][value] = sorted rows with that value. Values beyond
  // the interned domain (possible when x0 carries an unseen value) resolve
  // to an empty list.
  std::vector<std::vector<std::vector<size_t>>> postings_;
};

}  // namespace cce

#endif  // CCE_CORE_CONFORMITY_H_
