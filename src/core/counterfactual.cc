#include "core/counterfactual.h"

#include <algorithm>
#include <set>

namespace cce {

Result<std::vector<RelativeCounterfactual>>
CounterfactualFinder::FindForInstance(const Context& context,
                                      const Instance& x0, Label y0,
                                      const Options& options) {
  if (x0.size() != context.num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  if (options.max_witnesses == 0) {
    return Status::InvalidArgument("max_witnesses must be positive");
  }

  std::vector<RelativeCounterfactual> candidates;
  for (size_t row = 0; row < context.size(); ++row) {
    if (context.label(row) == y0) continue;
    RelativeCounterfactual c;
    c.witness_row = row;
    c.witness_label = context.label(row);
    for (FeatureId f = 0; f < context.num_features(); ++f) {
      if (context.value(row, f) != x0[f]) {
        c.changed_features.push_back(f);
      }
    }
    candidates.push_back(std::move(c));
  }
  if (candidates.empty()) {
    return Status::NotFound(
        "every context instance shares the prediction; no counterfactual "
        "witness exists");
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const RelativeCounterfactual& a,
                      const RelativeCounterfactual& b) {
                     return a.changed_features.size() <
                            b.changed_features.size();
                   });
  // Keep the closest witnesses with pairwise-distinct change sets, so the
  // result offers genuinely different "ways out".
  std::vector<RelativeCounterfactual> out;
  std::set<FeatureSet> seen;
  for (RelativeCounterfactual& c : candidates) {
    if (out.size() >= options.max_witnesses) break;
    if (seen.insert(c.changed_features).second) {
      out.push_back(std::move(c));
    }
  }
  return out;
}

Result<std::vector<RelativeCounterfactual>> CounterfactualFinder::Find(
    const Context& context, size_t row, const Options& options) {
  if (row >= context.size()) {
    return Status::OutOfRange("row out of range");
  }
  return FindForInstance(context, context.instance(row),
                         context.label(row), options);
}

}  // namespace cce
