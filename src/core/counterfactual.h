#ifndef CCE_CORE_COUNTERFACTUAL_H_
#define CCE_CORE_COUNTERFACTUAL_H_

#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/types.h"

namespace cce {

/// Context-relative counterfactuals — the dual view of relative keys.
/// A relative key says which features *lock in* the prediction over the
/// context; a relative counterfactual exhibits a *witness*: an actual
/// context instance with a different prediction and the smallest feature
/// distance to x0. Because the witness comes from the context, it is a
/// real served case, not a synthetic point that may be infeasible —
/// sidestepping the plausibility problem of perturbation-based
/// counterfactuals (paper Section 2, instance-based explanations).
struct RelativeCounterfactual {
  /// Row of the witness in the context.
  size_t witness_row = 0;
  /// The witness's prediction (differs from x0's).
  Label witness_label = 0;
  /// Features where the witness disagrees with x0 ("change these").
  FeatureSet changed_features;
};

class CounterfactualFinder {
 public:
  struct Options {
    /// Return up to this many witnesses with pairwise-distinct change
    /// sets, ordered by ascending distance.
    size_t max_witnesses = 3;
  };

  /// Closest differently-predicted witnesses for the context row.
  /// NotFound when every context instance shares x0's prediction.
  static Result<std::vector<RelativeCounterfactual>> Find(
      const Context& context, size_t row, const Options& options);

  /// Instance-based overload (x0 need not be a context row).
  static Result<std::vector<RelativeCounterfactual>> FindForInstance(
      const Context& context, const Instance& x0, Label y0,
      const Options& options);
};

}  // namespace cce

#endif  // CCE_CORE_COUNTERFACTUAL_H_
