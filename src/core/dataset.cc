#include "core/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace cce {

void Dataset::Add(Instance values, Label label) {
  CCE_CHECK(values.size() == schema_->num_features());
  instances_.push_back(std::move(values));
  labels_.push_back(label);
}

void Dataset::CopyColumn(FeatureId feature,
                         std::vector<ValueId>* out) const {
  CCE_CHECK(feature < schema_->num_features());
  out->resize(instances_.size());
  for (size_t row = 0; row < instances_.size(); ++row) {
    (*out)[row] = instances_[row][feature];
  }
}

Dataset Dataset::Subset(const std::vector<size_t>& rows) const {
  Dataset out(schema_);
  out.instances_.reserve(rows.size());
  out.labels_.reserve(rows.size());
  for (size_t row : rows) {
    CCE_CHECK(row < size());
    out.instances_.push_back(instances_[row]);
    out.labels_.push_back(labels_[row]);
  }
  return out;
}

Dataset Dataset::Prefix(size_t count) const {
  count = std::min(count, size());
  Dataset out(schema_);
  out.instances_.assign(instances_.begin(),
                        instances_.begin() + static_cast<long>(count));
  out.labels_.assign(labels_.begin(),
                     labels_.begin() + static_cast<long>(count));
  return out;
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction,
                                           Rng* rng) const {
  CCE_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<size_t> rows(size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  rng->Shuffle(&rows);
  size_t train_count =
      static_cast<size_t>(train_fraction * static_cast<double>(size()));
  std::vector<size_t> train_rows(rows.begin(),
                                 rows.begin() + static_cast<long>(train_count));
  std::vector<size_t> test_rows(rows.begin() + static_cast<long>(train_count),
                                rows.end());
  return {Subset(train_rows), Subset(test_rows)};
}

double Dataset::LabelAgreement(const std::vector<Label>& reference) const {
  CCE_CHECK(reference.size() == labels_.size());
  if (labels_.empty()) return 1.0;
  size_t agree = 0;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == reference[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(labels_.size());
}

}  // namespace cce
