#ifndef CCE_CORE_DATASET_H_
#define CCE_CORE_DATASET_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/schema.h"
#include "core/types.h"

namespace cce {

/// A collection of labelled instances over a shared Schema. Serves as the
/// training set for models, the inference set for serving, and — paired with
/// model predictions as labels — as the *context* I of relative keys (paper
/// Section 3.1).
class Dataset {
 public:
  explicit Dataset(std::shared_ptr<const Schema> schema)
      : schema_(std::move(schema)) {}

  /// Appends an instance. `values` must have one entry per schema feature.
  void Add(Instance values, Label label);

  size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }
  size_t num_features() const { return schema_->num_features(); }

  const Instance& instance(size_t row) const { return instances_[row]; }
  ValueId value(size_t row, FeatureId feature) const {
    return instances_[row][feature];
  }
  Label label(size_t row) const { return labels_[row]; }
  void set_label(size_t row, Label label) { labels_[row] = label; }

  const std::vector<Instance>& instances() const { return instances_; }
  const std::vector<Label>& labels() const { return labels_; }

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }

  /// Fills `out` with the column of `feature` (out[row] = value(row,
  /// feature)). Row-id-aligned columnar plumbing for the bitset conformity
  /// engine, which builds its per-(feature, value) bitmaps one feature at a
  /// time over a contiguous copy instead of striding across row storage.
  void CopyColumn(FeatureId feature, std::vector<ValueId>* out) const;

  /// New dataset holding the rows at `rows` (in that order).
  Dataset Subset(const std::vector<size_t>& rows) const;

  /// New dataset with the first `count` rows (count clamped to size()).
  Dataset Prefix(size_t count) const;

  /// Shuffled split into (train, test) with `train_fraction` of the rows in
  /// train. Matches the paper's 70/30 protocol when train_fraction = 0.7.
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng* rng) const;

  /// Fraction of rows whose label equals `reference(row)` — used for
  /// accuracy-style computations over predicted vs actual labels.
  double LabelAgreement(const std::vector<Label>& reference) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Instance> instances_;
  std::vector<Label> labels_;
};

/// A context is an inference set whose labels are the (blackbox) model's
/// predictions. The alias documents intent at call sites.
using Context = Dataset;

}  // namespace cce

#endif  // CCE_CORE_DATASET_H_
