#include "core/diagnostics.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace cce {

Result<ContextDiagnostics> DiagnoseContext(const Context& context) {
  if (context.empty()) {
    return Status::InvalidArgument("cannot diagnose an empty context");
  }
  ContextDiagnostics d;
  d.instances = context.size();
  d.features = context.num_features();
  d.labels = context.schema().num_labels();

  // Group identical feature vectors; count label disagreement inside
  // groups and redundant exact duplicates.
  std::map<Instance, std::map<Label, size_t>> groups;
  for (size_t row = 0; row < context.size(); ++row) {
    ++groups[context.instance(row)][context.label(row)];
  }
  for (const auto& [vector, by_label] : groups) {
    size_t group_size = 0;
    for (const auto& [label, count] : by_label) {
      group_size += count;
      d.redundant_duplicates += count - 1;
    }
    if (by_label.size() > 1) {
      ++d.conflicting_groups;
      d.conflicting_instances += group_size;
    }
  }

  // Label balance.
  std::map<Label, size_t> label_counts;
  for (size_t row = 0; row < context.size(); ++row) {
    ++label_counts[context.label(row)];
  }
  size_t majority = 0;
  for (const auto& [label, count] : label_counts) {
    majority = std::max(majority, count);
  }
  d.majority_label_share = static_cast<double>(majority) /
                           static_cast<double>(context.size());

  // Constant features.
  for (FeatureId f = 0; f < context.num_features(); ++f) {
    ValueId first = context.value(0, f);
    bool varies = false;
    for (size_t row = 1; row < context.size(); ++row) {
      if (context.value(row, f) != first) {
        varies = true;
        break;
      }
    }
    if (!varies) d.constant_features.push_back(f);
  }

  // Derive warnings.
  if (d.conflicting_groups > 0) {
    d.warnings.push_back(StrFormat(
        "%zu instance group(s) (%zu instances, %.1f%%) carry conflicting "
        "predictions: perfect conformity (alpha=1) is unattainable for "
        "them — consider alpha < 1",
        d.conflicting_groups, d.conflicting_instances,
        100.0 * static_cast<double>(d.conflicting_instances) /
            static_cast<double>(d.instances)));
  }
  if (label_counts.size() < 2) {
    d.warnings.push_back(
        "single-class context: every relative key is empty and carries no "
        "information");
  } else if (d.majority_label_share > 0.99) {
    d.warnings.push_back(StrFormat(
        "extreme class imbalance (majority %.1f%%): keys for majority "
        "instances will be near-empty",
        100.0 * d.majority_label_share));
  }
  if (!d.constant_features.empty()) {
    d.warnings.push_back(StrFormat(
        "%zu feature(s) are constant over the context and can never enter "
        "a key",
        d.constant_features.size()));
  }
  if (d.instances < 30) {
    d.warnings.push_back(StrFormat(
        "context holds only %zu instances: conformity guarantees are weak "
        "evidence at this size",
        d.instances));
  }
  return d;
}

}  // namespace cce
