#ifndef CCE_CORE_DIAGNOSTICS_H_
#define CCE_CORE_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace cce {

/// Health report for a context before it is used for explanation. Keys
/// relative to a degenerate context are technically correct but practically
/// misleading; these diagnostics surface the common problems (CLI and
/// serving users see them as warnings).
struct ContextDiagnostics {
  size_t instances = 0;
  size_t features = 0;
  size_t labels = 0;

  /// Distinct feature vectors appearing with more than one prediction.
  /// Any of their members has NO relative key (alpha = 1 unattainable).
  size_t conflicting_groups = 0;
  /// Instances belonging to a conflicting group.
  size_t conflicting_instances = 0;

  /// Exact duplicate (vector, prediction) pairs beyond the first copy.
  size_t redundant_duplicates = 0;

  /// Share of the majority prediction (1.0 = single-class context:
  /// every key is empty and explains nothing).
  double majority_label_share = 0.0;

  /// Features whose value never varies (dead weight for every algorithm).
  std::vector<FeatureId> constant_features;

  /// Human-readable warnings derived from the numbers above.
  std::vector<std::string> warnings;

  bool healthy() const { return warnings.empty(); }
};

/// Computes diagnostics for `context`. InvalidArgument on empty input.
Result<ContextDiagnostics> DiagnoseContext(const Context& context);

}  // namespace cce

#endif  // CCE_CORE_DIAGNOSTICS_H_
