#include "core/discretizer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace cce {

Discretizer::Discretizer(std::vector<double> cuts) : cuts_(std::move(cuts)) {
  for (size_t i = 1; i < cuts_.size(); ++i) {
    CCE_CHECK(cuts_[i - 1] < cuts_[i]);
  }
  if (!cuts_.empty()) {
    lo_hint_ = cuts_.front() - (cuts_.size() > 1
                                    ? (cuts_[1] - cuts_[0])
                                    : 1.0);
    hi_hint_ = cuts_.back() + (cuts_.size() > 1
                                   ? (cuts_[cuts_.size() - 1] -
                                      cuts_[cuts_.size() - 2])
                                   : 1.0);
  }
}

Discretizer Discretizer::EquiWidth(double lo, double hi, int num_buckets) {
  CCE_CHECK(num_buckets >= 1);
  CCE_CHECK(lo < hi);
  std::vector<double> cuts;
  cuts.reserve(static_cast<size_t>(num_buckets - 1));
  double width = (hi - lo) / num_buckets;
  for (int i = 1; i < num_buckets; ++i) {
    cuts.push_back(lo + width * i);
  }
  Discretizer d(std::move(cuts));
  d.lo_hint_ = lo;
  d.hi_hint_ = hi;
  return d;
}

Discretizer Discretizer::WithCuts(std::vector<double> cuts) {
  return Discretizer(std::move(cuts));
}

ValueId Discretizer::Bucket(double value) const {
  // First cut point strictly greater than value identifies the bucket.
  auto it = std::upper_bound(cuts_.begin(), cuts_.end(), value);
  return static_cast<ValueId>(it - cuts_.begin());
}

Result<ValueId> Discretizer::TryBucket(double value) const {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument(
        "non-finite feature value cannot be discretized (" +
        std::string(std::isnan(value) ? "NaN" : "Inf") + ")");
  }
  return Bucket(value);
}

std::string Discretizer::BucketName(ValueId bucket) const {
  CCE_CHECK(bucket < num_buckets());
  if (cuts_.empty()) return "all";
  if (bucket == 0) {
    return StrFormat("<%.3g", cuts_.front());
  }
  if (bucket == cuts_.size()) {
    return StrFormat(">=%.3g", cuts_.back());
  }
  return StrFormat("[%.3g,%.3g)", cuts_[bucket - 1], cuts_[bucket]);
}

double Discretizer::BucketMidpoint(ValueId bucket) const {
  CCE_CHECK(bucket < num_buckets());
  if (cuts_.empty()) return (lo_hint_ + hi_hint_) / 2.0;
  if (bucket == 0) return std::min(lo_hint_, cuts_.front()) / 2.0 +
                          cuts_.front() / 2.0;
  if (bucket == cuts_.size()) {
    return cuts_.back() / 2.0 + std::max(hi_hint_, cuts_.back()) / 2.0;
  }
  return (cuts_[bucket - 1] + cuts_[bucket]) / 2.0;
}

}  // namespace cce
