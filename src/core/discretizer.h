#ifndef CCE_CORE_DISCRETIZER_H_
#define CCE_CORE_DISCRETIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace cce {

/// Maps a numerical feature onto a fixed number of discrete buckets.
/// Relative keys (and all compared explainers) operate over discrete
/// features, so numerics are bucketed first; the bucket count is the
/// "#-bucket" knob of Figures 3h/3i/4d.
class Discretizer {
 public:
  /// Equi-width buckets over [lo, hi]; values outside are clamped.
  static Discretizer EquiWidth(double lo, double hi, int num_buckets);

  /// Buckets with explicit cut points: bucket i covers
  /// [cuts[i-1], cuts[i]), with open ends below cuts[0] / above cuts.back().
  static Discretizer WithCuts(std::vector<double> cuts);

  /// Bucket index of `value`, in [0, num_buckets()). `value` must be
  /// finite: a NaN silently lands in the top bucket (NaN compares false
  /// against every cut), which would poison any downstream context. Use
  /// TryBucket for untrusted input.
  ValueId Bucket(double value) const;

  /// Bucket() for untrusted input: rejects non-finite values (NaN, ±Inf)
  /// with kInvalidArgument instead of silently clamping them into an end
  /// bucket.
  Result<ValueId> TryBucket(double value) const;

  /// Human-readable bucket label, e.g. "[3.0,4.0)".
  std::string BucketName(ValueId bucket) const;

  /// Representative (mid-point) value of a bucket; inverse-ish of Bucket().
  double BucketMidpoint(ValueId bucket) const;

  size_t num_buckets() const { return cuts_.size() + 1; }

 private:
  explicit Discretizer(std::vector<double> cuts);

  std::vector<double> cuts_;  // strictly increasing internal cut points
  double lo_hint_ = 0.0;      // for midpoint/naming of the open end buckets
  double hi_hint_ = 1.0;
};

}  // namespace cce

#endif  // CCE_CORE_DISCRETIZER_H_
