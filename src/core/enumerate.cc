#include "core/enumerate.h"

#include <algorithm>
#include <set>

namespace cce {
namespace {

// True iff `e` hits (intersects) `d`.
bool Hits(const FeatureSet& e, const std::vector<FeatureId>& d) {
  for (FeatureId f : d) {
    if (FeatureSetContains(e, f)) return true;
  }
  return false;
}

// Minimality: every chosen feature has a private set it alone hits.
bool IsMinimalHittingSet(const FeatureSet& e,
                         const std::vector<std::vector<FeatureId>>& sets) {
  for (FeatureId chosen : e) {
    bool has_private = false;
    for (const auto& d : sets) {
      size_t hits = 0;
      bool by_chosen = false;
      for (FeatureId f : d) {
        if (FeatureSetContains(e, f)) {
          ++hits;
          by_chosen |= (f == chosen);
        }
      }
      if (hits == 1 && by_chosen) {
        has_private = true;
        break;
      }
    }
    if (!has_private) return false;
  }
  return true;
}

struct SearchState {
  const std::vector<std::vector<FeatureId>>* sets;
  KeyEnumerator::Options options;
  size_t nodes = 0;
  bool exhausted = false;
  std::set<FeatureSet> found;
};

// MMCS-style branch-and-bound: pick the first unhit set, branch on its
// elements with an exclusion list to avoid re-generating permutations.
void Search(SearchState* state, FeatureSet* current,
            std::vector<bool>* excluded) {
  if (state->exhausted) return;
  if (state->options.max_keys > 0 &&
      state->found.size() >= state->options.max_keys) {
    return;
  }
  if (++state->nodes > state->options.max_nodes) {
    state->exhausted = true;
    return;
  }

  const std::vector<FeatureId>* unhit = nullptr;
  for (const auto& d : *state->sets) {
    if (!Hits(*current, d)) {
      unhit = &d;
      break;
    }
  }
  if (unhit == nullptr) {
    // All sets hit; record if minimal.
    if (IsMinimalHittingSet(*current, *state->sets)) {
      state->found.insert(*current);
    }
    return;
  }
  std::vector<FeatureId> newly_excluded;
  for (FeatureId f : *unhit) {
    if ((*excluded)[f]) continue;
    FeatureSetInsert(current, f);
    Search(state, current, excluded);
    current->erase(
        std::find(current->begin(), current->end(), f));
    (*excluded)[f] = true;
    newly_excluded.push_back(f);
    if (state->exhausted) break;
  }
  for (FeatureId f : newly_excluded) (*excluded)[f] = false;
}

}  // namespace

Result<std::vector<FeatureSet>>
KeyEnumerator::EnumerateMinimalKeysForInstance(const Context& context,
                                               const Instance& x0, Label y0,
                                               const Options& options) {
  if (x0.size() != context.num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  // Difference hypergraph: one (deduped, minimal) set per differently-
  // predicted instance.
  std::set<std::vector<FeatureId>> distinct;
  for (size_t row = 0; row < context.size(); ++row) {
    if (context.label(row) == y0) continue;
    std::vector<FeatureId> d;
    for (FeatureId f = 0; f < context.num_features(); ++f) {
      if (context.value(row, f) != x0[f]) d.push_back(f);
    }
    if (d.empty()) {
      return Status::FailedPrecondition(
          "conflicting duplicate: no key exists for this instance");
    }
    distinct.insert(std::move(d));
  }
  // Drop supersets: hitting a subset implies hitting its supersets.
  std::vector<std::vector<FeatureId>> sets(distinct.begin(),
                                           distinct.end());
  std::sort(sets.begin(), sets.end(),
            [](const auto& a, const auto& b) {
              return a.size() < b.size();
            });
  std::vector<std::vector<FeatureId>> minimal_sets;
  for (const auto& candidate : sets) {
    bool redundant = false;
    for (const auto& kept : minimal_sets) {
      if (std::includes(candidate.begin(), candidate.end(), kept.begin(),
                        kept.end())) {
        redundant = true;
        break;
      }
    }
    if (!redundant) minimal_sets.push_back(candidate);
  }

  SearchState state;
  state.sets = &minimal_sets;
  state.options = options;
  FeatureSet current;
  std::vector<bool> excluded(context.num_features(), false);
  Search(&state, &current, &excluded);
  if (state.exhausted) {
    return Status::FailedPrecondition(
        "node budget exhausted before enumeration finished");
  }

  std::vector<FeatureSet> keys(state.found.begin(), state.found.end());
  std::sort(keys.begin(), keys.end(),
            [](const FeatureSet& a, const FeatureSet& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return keys;
}

Result<std::vector<FeatureSet>> KeyEnumerator::EnumerateMinimalKeys(
    const Context& context, size_t row, const Options& options) {
  if (row >= context.size()) {
    return Status::OutOfRange("row out of range");
  }
  return EnumerateMinimalKeysForInstance(context, context.instance(row),
                                         context.label(row), options);
}

}  // namespace cce
