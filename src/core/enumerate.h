#ifndef CCE_CORE_ENUMERATE_H_
#define CCE_CORE_ENUMERATE_H_

#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/types.h"

namespace cce {

/// Enumeration of ALL minimal relative keys for an instance.
///
/// Duality: E is a (1-conformant) key for x0 relative to I iff for every
/// differently-predicted instance x_i, E contains some feature where x_i
/// disagrees with x0. Writing D_i = {f : x_i[f] != x0[f]}, the minimal
/// keys are exactly the minimal hitting sets of {D_i}. This enumerator
/// walks that hypergraph with branch-and-bound, which lets users present
/// *alternative* explanations of the same prediction (diversity — a
/// recurring ask in the XAI literature the paper surveys in Section 2).
class KeyEnumerator {
 public:
  struct Options {
    /// Stop after this many minimal keys (0 = no bound).
    size_t max_keys = 64;
    /// Give up (ResourceExhausted-style FailedPrecondition) beyond this
    /// many search nodes.
    size_t max_nodes = 1'000'000;
  };

  /// All minimal relative keys (alpha = 1) for the context row, sorted by
  /// size then lexicographically. FailedPrecondition if a conflicting
  /// duplicate makes no key exist, or the node budget is exhausted.
  static Result<std::vector<FeatureSet>> EnumerateMinimalKeys(
      const Context& context, size_t row, const Options& options);

  /// Instance-based overload.
  static Result<std::vector<FeatureSet>> EnumerateMinimalKeysForInstance(
      const Context& context, const Instance& x0, Label y0,
      const Options& options);
};

}  // namespace cce

#endif  // CCE_CORE_ENUMERATE_H_
