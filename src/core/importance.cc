#include "core/importance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cce {
namespace {

// Incremental coalition walker: starts from the empty coalition (violators
// = all differently-predicted rows) and adds features one at a time,
// reporting the conformity v(S) after each addition. Walking a permutation
// costs O(n * |violators_0|) total because the violator set only shrinks.
class CoalitionWalker {
 public:
  CoalitionWalker(const Context& context, const Instance& x0, Label y0)
      : context_(context), x0_(x0) {
    for (size_t row = 0; row < context.size(); ++row) {
      if (context.label(row) != y0) initial_violators_.push_back(row);
    }
  }

  /// Conformity of the empty coalition.
  double EmptyValue() const {
    return Value(initial_violators_.size());
  }

  /// Walks `order`, invoking visit(feature, v_before, v_after) per step.
  template <typename Visitor>
  void Walk(const std::vector<FeatureId>& order, Visitor&& visit) const {
    std::vector<size_t> violators = initial_violators_;
    double value_before = Value(violators.size());
    for (FeatureId f : order) {
      std::vector<size_t> surviving;
      surviving.reserve(violators.size());
      for (size_t row : violators) {
        if (context_.value(row, f) == x0_[f]) surviving.push_back(row);
      }
      violators = std::move(surviving);
      double value_after = Value(violators.size());
      visit(f, value_before, value_after);
      value_before = value_after;
    }
  }

 private:
  double Value(size_t violator_count) const {
    if (context_.empty()) return 1.0;
    return 1.0 - static_cast<double>(violator_count) /
                     static_cast<double>(context_.size());
  }

  const Context& context_;
  const Instance& x0_;
  std::vector<size_t> initial_violators_;
};

double Factorial(size_t n) {
  double out = 1.0;
  for (size_t i = 2; i <= n; ++i) out *= static_cast<double>(i);
  return out;
}

}  // namespace

Result<std::vector<double>> ContextShapley::Compute(const Context& context,
                                                    const Instance& x0,
                                                    Label y0,
                                                    const Options& options) {
  const size_t n = context.num_features();
  if (x0.size() != n) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  if (options.permutations <= 0) {
    return Status::InvalidArgument("permutations must be positive");
  }
  std::vector<double> shapley(n, 0.0);
  if (n == 0) return shapley;

  CoalitionWalker walker(context, x0, y0);
  std::vector<FeatureId> order(n);
  for (FeatureId f = 0; f < n; ++f) order[f] = f;

  const bool exact =
      Factorial(n) <= static_cast<double>(options.exact_limit);
  size_t walks = 0;
  if (exact) {
    std::sort(order.begin(), order.end());
    do {
      walker.Walk(order, [&](FeatureId f, double before, double after) {
        shapley[f] += after - before;
      });
      ++walks;
    } while (std::next_permutation(order.begin(), order.end()));
  } else {
    Rng rng(options.seed);
    for (int p = 0; p < options.permutations; ++p) {
      rng.Shuffle(&order);
      walker.Walk(order, [&](FeatureId f, double before, double after) {
        shapley[f] += after - before;
      });
      ++walks;
    }
  }
  for (double& value : shapley) value /= static_cast<double>(walks);
  return shapley;
}

Result<std::vector<double>> ContextShapley::ComputeForRow(
    const Context& context, size_t row, const Options& options) {
  if (row >= context.size()) {
    return Status::OutOfRange("row out of range");
  }
  return Compute(context, context.instance(row), context.label(row),
                 options);
}

// ------------------------------------------------- OnlineContextShapley

OnlineContextShapley::OnlineContextShapley(
    std::shared_ptr<const Schema> schema, Instance x0, Label y0,
    const Options& options)
    : schema_(std::move(schema)),
      x0_(std::move(x0)),
      y0_(y0),
      options_(options),
      importances_(schema_->num_features(), 0.0) {}

Result<std::unique_ptr<OnlineContextShapley>> OnlineContextShapley::Create(
    std::shared_ptr<const Schema> schema, Instance x0, Label y0,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (x0.size() != schema->num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  if (options.window_size == 0 || options.refresh_every == 0) {
    return Status::InvalidArgument(
        "window_size and refresh_every must be positive");
  }
  return std::unique_ptr<OnlineContextShapley>(new OnlineContextShapley(
      std::move(schema), std::move(x0), y0, options));
}

Status OnlineContextShapley::Observe(const Instance& x, Label y) {
  if (x.size() != schema_->num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  window_.emplace_back(x, y);
  while (window_.size() > options_.window_size) window_.pop_front();
  ++observed_;
  if (++since_refresh_ >= options_.refresh_every) {
    since_refresh_ = 0;
    CCE_RETURN_IF_ERROR(Refresh());
  }
  return Status::Ok();
}

Status OnlineContextShapley::Refresh() {
  Context context(schema_);
  for (const auto& [x, y] : window_) context.Add(x, y);
  Result<std::vector<double>> fresh =
      ContextShapley::Compute(context, x0_, y0_, options_.shapley);
  if (!fresh.ok()) return fresh.status();
  importances_ = std::move(fresh).value();
  return Status::Ok();
}

}  // namespace cce
