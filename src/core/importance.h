#ifndef CCE_CORE_IMPORTANCE_H_
#define CCE_CORE_IMPORTANCE_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/conformity.h"
#include "core/dataset.h"
#include "core/types.h"

namespace cce {

/// Context-relative feature importance — the paper's first future-work
/// direction (Section 8): "extend relative keys for feature importance
/// based explanations, by extending the notion and computation of Shapley
/// values to the online setting with a dynamic context."
///
/// The coalition game: for an instance x0 with prediction y0 over context
/// I, the value of a feature coalition S is the conformity it achieves,
///   v(S) = 1 - violators(x0, S) / |I|  (the precision of S as a key).
/// The Shapley value of feature f is its average marginal contribution to
/// v across feature orderings — how much of the explanation's conformity
/// is attributable to f. Like relative keys, this needs *no model access*.
class ContextShapley {
 public:
  struct Options {
    /// Monte-Carlo permutations; exact enumeration is used when
    /// n! <= exact_limit.
    int permutations = 256;
    int exact_limit = 720;  // 6! — exact for up to 6 features
    uint64_t seed = 31;
  };

  /// Computes context-relative Shapley importances of every feature for
  /// (x0, y0) over `context`. The values sum to v(all) - v(empty)
  /// (efficiency), exactly under enumeration and approximately under
  /// sampling.
  static Result<std::vector<double>> Compute(const Context& context,
                                             const Instance& x0, Label y0,
                                             const Options& options);

  /// Convenience overload for a context row.
  static Result<std::vector<double>> ComputeForRow(const Context& context,
                                                   size_t row,
                                                   const Options& options);
};

/// Online/dynamic variant: maintains context-relative Shapley importances
/// over a sliding window of served (instance, prediction) pairs, so the
/// importance profile tracks a drifting model — Shapley values "in the
/// online setting with a dynamic context".
class OnlineContextShapley {
 public:
  struct Options {
    size_t window_size = 512;
    /// Recompute cadence (arrivals between refreshes).
    size_t refresh_every = 64;
    ContextShapley::Options shapley;
  };

  static Result<std::unique_ptr<OnlineContextShapley>> Create(
      std::shared_ptr<const Schema> schema, Instance x0, Label y0,
      const Options& options);

  /// Feeds the next served (instance, prediction).
  Status Observe(const Instance& x, Label y);

  /// Latest importance vector (all zeros before the first refresh).
  const std::vector<double>& importances() const { return importances_; }

  size_t observed() const { return observed_; }

 private:
  OnlineContextShapley(std::shared_ptr<const Schema> schema, Instance x0,
                       Label y0, const Options& options);

  Status Refresh();

  std::shared_ptr<const Schema> schema_;
  Instance x0_;
  Label y0_;
  Options options_;
  std::deque<std::pair<Instance, Label>> window_;
  std::vector<double> importances_;
  size_t observed_ = 0;
  size_t since_refresh_ = 0;
};

}  // namespace cce

#endif  // CCE_CORE_IMPORTANCE_H_
