#ifndef CCE_CORE_KEY_RESULT_H_
#define CCE_CORE_KEY_RESULT_H_

#include <vector>

#include "core/types.h"

namespace cce {

/// Outcome of a relative-key computation.
struct KeyResult {
  /// The alpha-conformant relative key (sorted feature set).
  FeatureSet key;

  /// Features in the order the algorithm picked them; CCE uses this order to
  /// rank features inside the key (paper Section 6, Remark (2)).
  std::vector<FeatureId> pick_order;

  /// The conformity actually achieved: 1 - violators / |I|.
  double achieved_alpha = 1.0;

  /// True when achieved_alpha meets the requested bound. False only for
  /// degenerate contexts (duplicate instances with conflicting predictions)
  /// where no feature set can reach the target; in that case `key` holds all
  /// features and `achieved_alpha` reports the best attainable value.
  bool satisfied = true;

  /// True when a per-call deadline cut the greedy search short and the key
  /// was completed by padding instead of minimised: still alpha-conformant
  /// (when `satisfied`), but possibly far from succinct. Serving-layer
  /// callers surface this so clients can re-ask with a larger budget.
  bool degraded = false;

  /// True when the serving layer answered from its explanation cache: a
  /// real, recently minimal key for the identical discretized instance,
  /// computed against a context at most a bounded number of records older
  /// than the current one (the cached rung of the degradation ladder).
  bool cached = false;

  size_t succinctness() const { return key.size(); }
};

}  // namespace cce

#endif  // CCE_CORE_KEY_RESULT_H_
