#include "core/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace cce {

double Conformity(const Context& eval_context,
                  const std::vector<ExplainedInstance>& explained) {
  if (explained.empty()) return 100.0;
  ConformityChecker checker(&eval_context);
  size_t conformant = 0;
  for (const auto& e : explained) {
    if (checker.CountViolators(e.x, e.y, e.explanation) == 0) ++conformant;
  }
  return 100.0 * static_cast<double>(conformant) /
         static_cast<double>(explained.size());
}

double AveragePrecision(const Context& eval_context,
                        const std::vector<ExplainedInstance>& explained) {
  if (explained.empty()) return 1.0;
  ConformityChecker checker(&eval_context);
  double total = 0.0;
  for (const auto& e : explained) {
    total += checker.Precision(e.x, e.y, e.explanation);
  }
  return total / static_cast<double>(explained.size());
}

double Recall(const Context& eval_context, const Instance& x, Label y,
              const FeatureSet& mine, const FeatureSet& theirs) {
  ConformityChecker checker(&eval_context);
  std::vector<size_t> covered_mine = checker.CoveredRows(x, y, mine);
  std::vector<size_t> covered_theirs = checker.CoveredRows(x, y, theirs);
  std::vector<size_t> covered_union;
  std::set_union(covered_mine.begin(), covered_mine.end(),
                 covered_theirs.begin(), covered_theirs.end(),
                 std::back_inserter(covered_union));
  if (covered_union.empty()) return 1.0;
  return static_cast<double>(covered_mine.size()) /
         static_cast<double>(covered_union.size());
}

double AverageSuccinctness(const std::vector<ExplainedInstance>& explained) {
  if (explained.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : explained) {
    total += static_cast<double>(e.explanation.size());
  }
  return total / static_cast<double>(explained.size());
}

double Faithfulness(const Model& model, const Dataset& reference,
                    const std::vector<ExplainedInstance>& explained,
                    int samples_per_instance, Rng* rng) {
  CCE_CHECK(samples_per_instance > 0);
  CCE_CHECK(!reference.empty());
  if (explained.empty()) return 0.0;
  double unchanged_total = 0.0;
  for (const auto& e : explained) {
    int unchanged = 0;
    for (int s = 0; s < samples_per_instance; ++s) {
      Instance masked = e.x;
      // Mask each explained feature with the value of a random reference
      // row — the standard masking perturbation of [19].
      for (FeatureId f : e.explanation) {
        size_t row = rng->Uniform(reference.size());
        masked[f] = reference.value(row, f);
      }
      if (model.Predict(masked) == e.y) ++unchanged;
    }
    unchanged_total +=
        static_cast<double>(unchanged) / samples_per_instance;
  }
  return unchanged_total / static_cast<double>(explained.size());
}

QualityReport EvaluateQuality(
    const Context& eval_context,
    const std::vector<ExplainedInstance>& explained) {
  QualityReport report;
  if (explained.empty()) return report;
  ConformityChecker checker(&eval_context);
  size_t conformant = 0;
  double precision_total = 0.0;
  double size_total = 0.0;
  for (const auto& e : explained) {
    size_t violators = checker.CountViolators(e.x, e.y, e.explanation);
    if (violators == 0) ++conformant;
    precision_total += eval_context.empty()
                           ? 1.0
                           : 1.0 - static_cast<double>(violators) /
                                       static_cast<double>(
                                           eval_context.size());
    size_total += static_cast<double>(e.explanation.size());
  }
  const double count = static_cast<double>(explained.size());
  report.conformity = 100.0 * static_cast<double>(conformant) / count;
  report.precision = precision_total / count;
  report.succinctness = size_total / count;
  return report;
}

}  // namespace cce
