#ifndef CCE_CORE_METRICS_H_
#define CCE_CORE_METRICS_H_

#include <vector>

#include "common/random.h"
#include "core/conformity.h"
#include "core/dataset.h"
#include "core/model.h"
#include "core/types.h"

namespace cce {

/// Explanation quality measures of paper Section 7.1. Unless stated
/// otherwise they are computed against an evaluation context (the set of all
/// instances explained / the inference set).

/// One explained instance together with the explanation produced for it.
struct ExplainedInstance {
  Instance x;
  Label y;
  FeatureSet explanation;
};

/// (a) Conformity: percentage of explained instances whose explanation is
/// conformant over `eval_context` (no agreeing instance with a different
/// prediction).
double Conformity(const Context& eval_context,
                  const std::vector<ExplainedInstance>& explained);

/// (b) Precision: average over explained instances of the maximum alpha for
/// which the explanation is alpha-conformant.
double AveragePrecision(const Context& eval_context,
                        const std::vector<ExplainedInstance>& explained);

/// (c) Recall of explanation `mine` against a competing conformant
/// explanation `theirs` for the same instance:
/// |D(mine)| / |D(mine) ∪ D(theirs)| where D(E) is the set of rows covered
/// by E (agreeing with x and sharing its prediction).
double Recall(const Context& eval_context, const Instance& x, Label y,
              const FeatureSet& mine, const FeatureSet& theirs);

/// (d) Succinctness: average explanation size.
double AverageSuccinctness(const std::vector<ExplainedInstance>& explained);

/// (e) Faithfulness: for each explained instance, mask the features named by
/// the explanation with values drawn from `reference` rows and test whether
/// the model prediction survives; report the fraction of unchanged
/// predictions (lower is better). `samples_per_instance` perturbations are
/// averaged per instance.
double Faithfulness(const Model& model, const Dataset& reference,
                    const std::vector<ExplainedInstance>& explained,
                    int samples_per_instance, Rng* rng);

/// Aggregate quality report used by the benchmark harnesses.
struct QualityReport {
  double conformity = 0.0;        // percent in [0, 100]
  double precision = 0.0;         // average max-alpha in [0, 1]
  double succinctness = 0.0;      // average #features
};

/// Computes conformity/precision/succinctness in one pass.
QualityReport EvaluateQuality(const Context& eval_context,
                              const std::vector<ExplainedInstance>& explained);

}  // namespace cce

#endif  // CCE_CORE_METRICS_H_
