#ifndef CCE_CORE_MODEL_H_
#define CCE_CORE_MODEL_H_

#include <vector>

#include "core/dataset.h"
#include "core/types.h"

namespace cce {

/// Abstract classifier over a discrete feature space. The explanation
/// baselines (Anchor, LIME, SHAP, GAM, Xreason) query this interface;
/// relative keys deliberately do *not* — they consume only the recorded
/// (instance, prediction) pairs of the context (paper Section 6).
class Model {
 public:
  virtual ~Model() = default;

  /// The model's prediction M(x).
  virtual Label Predict(const Instance& x) const = 0;

  /// Raw positive-class score for binary models; default maps the label.
  virtual double Score(const Instance& x) const {
    return static_cast<double>(Predict(x));
  }

  /// Predicts every row of `dataset`.
  std::vector<Label> PredictAll(const Dataset& dataset) const {
    std::vector<Label> out;
    out.reserve(dataset.size());
    for (size_t i = 0; i < dataset.size(); ++i) {
      out.push_back(Predict(dataset.instance(i)));
    }
    return out;
  }

  /// Builds the inference context: a copy of `dataset` whose labels are this
  /// model's predictions — exactly what a client observes during serving.
  Dataset MakeContext(const Dataset& dataset) const {
    Dataset context = dataset;
    for (size_t i = 0; i < context.size(); ++i) {
      context.set_label(i, Predict(context.instance(i)));
    }
    return context;
  }

  /// Fraction of rows whose prediction matches the dataset label.
  double Accuracy(const Dataset& dataset) const {
    if (dataset.empty()) return 1.0;
    size_t correct = 0;
    for (size_t i = 0; i < dataset.size(); ++i) {
      if (Predict(dataset.instance(i)) == dataset.label(i)) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(dataset.size());
  }
};

}  // namespace cce

#endif  // CCE_CORE_MODEL_H_
