#include "core/optimal.h"

#include <cmath>

#include "core/conformity.h"

namespace cce {
namespace {

// Enumerates k-subsets of [0, n) in lexicographic order, invoking visit().
// visit returns true to stop enumeration.
template <typename Visitor>
bool ForEachSubset(size_t n, size_t k, Visitor visit) {
  std::vector<FeatureId> subset(k);
  for (size_t i = 0; i < k; ++i) subset[i] = static_cast<FeatureId>(i);
  if (k == 0) return visit(subset);
  while (true) {
    if (visit(subset)) return true;
    // Advance to the next combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (subset[i] != i + n - k) {
        ++subset[i];
        for (size_t j = i + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
        break;
      }
      if (i == 0) return false;
    }
  }
}

}  // namespace

Result<KeyResult> OptimalKeyFinder::Find(const Context& context,
                                         const Instance& x0, Label y0,
                                         const Options& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  const size_t n = context.num_features();
  if (n > options.max_features) {
    return Status::FailedPrecondition(
        "exhaustive search limited to " +
        std::to_string(options.max_features) + " features, got " +
        std::to_string(n));
  }
  if (x0.size() != n) {
    return Status::InvalidArgument("instance arity does not match schema");
  }

  ConformityChecker checker(&context);
  KeyResult result;
  for (size_t k = 0; k <= n; ++k) {
    bool found = ForEachSubset(n, k, [&](const FeatureSet& subset) {
      if (checker.IsAlphaConformant(x0, y0, subset, options.alpha)) {
        result.key = subset;
        return true;
      }
      return false;
    });
    if (found) {
      result.pick_order.assign(result.key.begin(), result.key.end());
      result.achieved_alpha = checker.Precision(x0, y0, result.key);
      result.satisfied = true;
      return result;
    }
  }
  // Even the full feature set fails: conflicting duplicates.
  result.key.resize(n);
  for (FeatureId f = 0; f < n; ++f) result.key[f] = f;
  result.pick_order = result.key;
  result.achieved_alpha = checker.Precision(x0, y0, result.key);
  result.satisfied = false;
  return result;
}

Result<KeyResult> OptimalKeyFinder::FindForRow(const Context& context,
                                               size_t row,
                                               const Options& options) {
  if (row >= context.size()) {
    return Status::OutOfRange("row out of range");
  }
  return Find(context, context.instance(row), context.label(row), options);
}

}  // namespace cce
