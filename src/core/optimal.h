#ifndef CCE_CORE_OPTIMAL_H_
#define CCE_CORE_OPTIMAL_H_

#include "common/status.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/types.h"

namespace cce {

/// Exhaustive solver for the minimum relative key problem (MRKP). MRKP is
/// NP-complete (paper Theorem 1), so this enumerates feature subsets by
/// increasing size; it is usable only for small n and exists to (a) validate
/// the approximation guarantees of SRK/OSRK/SSRK in tests and (b) drive the
/// p-boundedness ablation benchmarks.
class OptimalKeyFinder {
 public:
  struct Options {
    double alpha = 1.0;
    /// Refuse inputs with more features than this (cost is C(n, k) scans).
    size_t max_features = 24;
  };

  /// The most succinct alpha-conformant key for (x0, y0) relative to
  /// `context`, or the full feature set flagged unsatisfied when even that
  /// fails the bound.
  static Result<KeyResult> Find(const Context& context, const Instance& x0,
                                Label y0, const Options& options);

  /// Convenience overload for a context row.
  static Result<KeyResult> FindForRow(const Context& context, size_t row,
                                      const Options& options);
};

}  // namespace cce

#endif  // CCE_CORE_OPTIMAL_H_
