#include "core/osrk.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace cce {

Result<std::unique_ptr<Osrk>> Osrk::Create(
    std::shared_ptr<const Schema> schema, Instance x0, Label y0,
    const Options& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (x0.size() != schema->num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  return std::unique_ptr<Osrk>(
      new Osrk(std::move(schema), std::move(x0), y0, options));
}

Osrk::Osrk(std::shared_ptr<const Schema> schema, Instance x0, Label y0,
           const Options& options)
    : schema_(std::move(schema)),
      x0_(std::move(x0)),
      y0_(y0),
      options_(options),
      rng_(options.seed),
      weights_(schema_->num_features(), 0.0) {}

bool Osrk::OverBudget() const {
  double budget = (1.0 - options_.alpha) * static_cast<double>(arrived_);
  return static_cast<double>(violators_.size()) > budget + 1e-9;
}

double Osrk::achieved_alpha() const {
  if (arrived_ == 0) return 1.0;
  return 1.0 - static_cast<double>(violators_.size()) /
                   static_cast<double>(arrived_);
}

bool Osrk::satisfied() const {
  return !OverBudget();
}

void Osrk::AddFeatureToKey(FeatureId feature) {
  if (FeatureSetContains(key_, feature)) return;
  FeatureSetInsert(&key_, feature);
  // Fixed chunk size so chunk boundaries never depend on the pool width;
  // concatenating per-chunk survivors in chunk order then reproduces the
  // serial filter's output exactly (the determinism contract).
  constexpr size_t kFilterChunk = 1024;
  if (options_.parallel_conformity && options_.pool != nullptr &&
      violators_.size() > 2 * kFilterChunk) {
    const size_t count = violators_.size();
    const size_t num_chunks = (count + kFilterChunk - 1) / kFilterChunk;
    std::vector<std::vector<Instance>> parts(num_chunks);
    options_.pool->ParallelChunks(
        count, kFilterChunk, [&](size_t begin, size_t end) {
          std::vector<Instance>& part = parts[begin / kFilterChunk];
          part.reserve(end - begin);
          for (size_t i = begin; i < end; ++i) {
            if (violators_[i][feature] == x0_[feature]) {
              part.push_back(std::move(violators_[i]));
            }
          }
        });
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    std::vector<Instance> surviving;
    surviving.reserve(total);
    for (auto& part : parts) {
      for (Instance& v : part) surviving.push_back(std::move(v));
    }
    violators_ = std::move(surviving);
    return;
  }
  std::vector<Instance> surviving;
  surviving.reserve(violators_.size());
  for (Instance& v : violators_) {
    if (v[feature] == x0_[feature]) surviving.push_back(std::move(v));
  }
  violators_ = std::move(surviving);
}

const FeatureSet& Osrk::Observe(const Instance& x, Label y) {
  CCE_CHECK(x.size() == schema_->num_features());
  ++arrived_;  // line 1: I <- I ∪ {x_t}

  // Line 2: same prediction — the key is untouched (coherence for free).
  if (y == y0_) return key_;

  ++diff_count_;  // p_t

  const size_t n = schema_->num_features();

  // Lines 3-6: the first differently-predicted arrival initialises every
  // feature weight to the largest power of two below 1/n and seeds the key
  // randomly with those probabilities.
  if (!weights_initialized_) {
    weights_initialized_ = true;
    double w = 1.0;
    while (w >= 1.0 / static_cast<double>(n)) w /= 2.0;
    for (FeatureId f = 0; f < n; ++f) {
      weights_[f] = w;
      if (rng_.Bernoulli(w)) AddFeatureToKey(f);
    }
  }

  // Track x as a violator if it agrees with x0 on the current key.
  bool agrees = true;
  for (FeatureId f : key_) {
    if (x[f] != x0_[f]) {
      agrees = false;
      break;
    }
  }
  if (agrees) violators_.push_back(x);

  // Line 7: features on which x_t and x0 differ, outside the key.
  std::vector<FeatureId> candidates;
  for (FeatureId f = 0; f < n; ++f) {
    if (x[f] != x0_[f] && !FeatureSetContains(key_, f)) {
      candidates.push_back(f);
    }
  }

  // Lines 8-15: expand the key until alpha-conformance is restored.
  while (OverBudget()) {
    if (candidates.empty()) {
      // x_t is a conflicting duplicate of x0 (or the key already covers all
      // its differing features) and older tolerated violators exceed the
      // budget: no feature of S_t can help. Report best effort via
      // satisfied().
      break;
    }
    double mu = 0.0;
    for (FeatureId f : candidates) mu += weights_[f];
    double threshold = std::log(static_cast<double>(diff_count_));
    if (mu > threshold) {
      // Line 11: cover x_t deterministically with an arbitrary candidate.
      // (We re-check the while condition rather than exiting outright so
      // that the returned E_t is alpha-conformant whenever that is
      // attainable, per the paper's correctness claim.)
      AddFeatureToKey(candidates.front());
      candidates.erase(candidates.begin());
      continue;
    }
    // Lines 12-15: weight augmentation — double each candidate weight below
    // one, then add it to the key with probability w_i.
    std::vector<FeatureId> remaining;
    for (FeatureId f : candidates) {
      if (weights_[f] < 1.0) weights_[f] = std::min(2.0 * weights_[f], 2.0);
      if (rng_.Bernoulli(std::min(weights_[f], 1.0))) {
        AddFeatureToKey(f);
      } else {
        remaining.push_back(f);
      }
    }
    candidates = std::move(remaining);
  }
  return key_;
}

}  // namespace cce
