#ifndef CCE_CORE_OSRK_H_
#define CCE_CORE_OSRK_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/key_result.h"
#include "core/schema.h"
#include "core/types.h"

namespace cce {

class ThreadPool;

/// Algorithm OSRK (paper Algorithm 2): randomized online maintenance of an
/// alpha-conformant relative key for a fixed instance x0 as the context I
/// grows one inference instance at a time.
///
/// The maintained keys are *coherent*: E_t ⊆ E_{t+1} (paper Section 5.1).
/// For alpha = 1 the key is (log t · log n)-bounded in expectation (paper
/// Theorem 5). Each arrival costs O(n log n) amortised, independent of |I|.
class Osrk {
 public:
  struct Options {
    double alpha = 1.0;
    uint64_t seed = 42;
    /// Filters the active-violator set in parallel when a feature joins the
    /// key. The filter is chunk-order-preserving and the rng consumption
    /// sequence is untouched, so the maintained keys are bit-identical to
    /// the serial path for the same seed (determinism contract,
    /// tests/conformity_parallel_test.cc).
    bool parallel_conformity = false;
    /// Pool for the parallel filter (not owned); only read when
    /// parallel_conformity is set, null keeps the filter serial.
    ThreadPool* pool = nullptr;
  };

  /// Creates a monitor for (x0, y0). The context starts empty.
  static Result<std::unique_ptr<Osrk>> Create(
      std::shared_ptr<const Schema> schema, Instance x0, Label y0,
      const Options& options);

  /// Feeds the next online instance and its model prediction; returns the
  /// updated key E_t.
  const FeatureSet& Observe(const Instance& x, Label y);

  /// Current key E_t.
  const FeatureSet& key() const { return key_; }

  /// Number of instances observed so far (|I|).
  size_t context_size() const { return arrived_; }

  /// Conformity achieved over the observed context: 1 - violators / |I|.
  double achieved_alpha() const;

  /// False only when a conflicting duplicate of x0 (same features, different
  /// prediction) forces the violator budget to be exceeded.
  bool satisfied() const;

  const Instance& target() const { return x0_; }
  Label target_label() const { return y0_; }

 private:
  Osrk(std::shared_ptr<const Schema> schema, Instance x0, Label y0,
       const Options& options);

  /// Adds `feature` to the key and drops newly-disagreeing violators.
  void AddFeatureToKey(FeatureId feature);

  /// True while the violator count exceeds the tolerated budget.
  bool OverBudget() const;

  std::shared_ptr<const Schema> schema_;
  Instance x0_;
  Label y0_;
  Options options_;
  Rng rng_;

  FeatureSet key_;
  std::vector<double> weights_;   // per-feature w_i
  bool weights_initialized_ = false;

  size_t arrived_ = 0;            // t
  size_t diff_count_ = 0;         // p_t: arrivals predicted differently
  // Instances predicted differently from x0 that still agree with x0 on the
  // current key (the "active violators").
  std::vector<Instance> violators_;
};

}  // namespace cce

#endif  // CCE_CORE_OSRK_H_
