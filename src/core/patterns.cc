#include "core/patterns.h"

#include <algorithm>
#include <map>

#include "common/random.h"
#include "core/srk.h"

namespace cce {

bool ContextPattern::Matches(const Instance& x) const {
  for (const auto& [feature, value] : condition) {
    if (x[feature] != value) return false;
  }
  return true;
}

std::string ContextPattern::ToString(const Schema& schema) const {
  std::string out = "IF ";
  for (size_t i = 0; i < condition.size(); ++i) {
    if (i > 0) out += " AND ";
    const auto& [feature, value] = condition[i];
    out += schema.FeatureName(feature) + "='" +
           schema.ValueName(feature, value) + "'";
  }
  if (condition.empty()) out += "TRUE";
  out += " THEN " + schema.LabelName(consequent);
  return out;
}

Result<std::vector<ContextPattern>> ContextPatternMiner::Mine(
    const Context& context, const Options& options) {
  if (context.empty()) {
    return Status::InvalidArgument("cannot mine an empty context");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }

  // Pick seed rows.
  std::vector<size_t> seeds;
  if (options.seeds == 0 || options.seeds >= context.size()) {
    seeds.resize(context.size());
    for (size_t i = 0; i < seeds.size(); ++i) seeds[i] = i;
  } else {
    Rng rng(options.seed);
    seeds = rng.SampleWithoutReplacement(context.size(), options.seeds);
  }

  // Ground each seed's relative key into a pattern; dedupe by condition.
  Srk::Options srk_options;
  srk_options.alpha = options.alpha;
  std::map<std::vector<std::pair<FeatureId, ValueId>>, Label> seen;
  for (size_t row : seeds) {
    Result<KeyResult> key = Srk::Explain(context, row, srk_options);
    if (!key.ok()) return key.status();
    std::vector<std::pair<FeatureId, ValueId>> condition;
    condition.reserve(key->key.size());
    for (FeatureId f : key->key) {
      condition.emplace_back(f, context.value(row, f));
    }
    seen.emplace(std::move(condition), context.label(row));
  }

  // Measure support and conformity over the full context.
  std::vector<ContextPattern> patterns;
  patterns.reserve(seen.size());
  for (auto& [condition, consequent] : seen) {
    ContextPattern pattern;
    pattern.condition = condition;
    pattern.consequent = consequent;
    size_t agreeing = 0;
    for (size_t row = 0; row < context.size(); ++row) {
      if (!pattern.Matches(context.instance(row))) continue;
      ++pattern.support;
      if (context.label(row) == consequent) ++agreeing;
    }
    pattern.conformity =
        pattern.support == 0
            ? 1.0
            : static_cast<double>(agreeing) /
                  static_cast<double>(pattern.support);
    patterns.push_back(std::move(pattern));
  }

  std::sort(patterns.begin(), patterns.end(),
            [](const ContextPattern& a, const ContextPattern& b) {
              return a.support > b.support;
            });
  if (options.max_patterns > 0 && patterns.size() > options.max_patterns) {
    patterns.resize(options.max_patterns);
  }
  return patterns;
}

double ContextPatternMiner::ExplainedFraction(
    const Context& context, const std::vector<ContextPattern>& rules) {
  if (context.empty()) return 1.0;
  size_t explained = 0;
  for (size_t row = 0; row < context.size(); ++row) {
    for (const ContextPattern& rule : rules) {
      if (rule.consequent == context.label(row) &&
          rule.Matches(context.instance(row))) {
        ++explained;
        break;
      }
    }
  }
  return static_cast<double>(explained) /
         static_cast<double>(context.size());
}

}  // namespace cce
