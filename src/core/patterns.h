#ifndef CCE_CORE_PATTERNS_H_
#define CCE_CORE_PATTERNS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/types.h"

namespace cce {

/// Context-relative pattern-level explanations — the paper's second
/// future-work direction (Section 8): "revisit global pattern-level
/// explanations relative to a context".
///
/// Instead of mining heuristic rules over the feature space (IDS), each
/// pattern here is a *grounded relative key*: the key of some sampled
/// instance, instantiated with that instance's values. Patterns therefore
/// inherit the alpha-conformance guarantee for their seed instance, and the
/// miner additionally measures each pattern's support and conformity over
/// the whole context.
struct ContextPattern {
  /// Conjunction of (feature, value) equality predicates.
  std::vector<std::pair<FeatureId, ValueId>> condition;
  Label consequent = 0;
  size_t support = 0;      // context rows matching the condition
  double conformity = 1.0; // fraction of matching rows with the consequent

  bool Matches(const Instance& x) const;
  std::string ToString(const Schema& schema) const;
};

class ContextPatternMiner {
 public:
  struct Options {
    /// Instances sampled as pattern seeds (0 = every context row).
    size_t seeds = 64;
    /// Conformity bound used when computing the seed keys.
    double alpha = 1.0;
    /// Keep at most this many patterns, by descending support (0 = all).
    size_t max_patterns = 0;
    uint64_t seed = 37;
  };

  /// Mines a context-level pattern summary.
  static Result<std::vector<ContextPattern>> Mine(const Context& context,
                                                  const Options& options);

  /// Fraction of context rows matched by at least one pattern whose
  /// consequent equals the row's prediction.
  static double ExplainedFraction(const Context& context,
                                  const std::vector<ContextPattern>& rules);
};

}  // namespace cce

#endif  // CCE_CORE_PATTERNS_H_
