#include "core/row_bitmap.h"

#include <bit>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace cce {

void RowBitmap::Resize(size_t rows) {
  rows_ = rows;
  words_.resize((rows + 63) / 64, 0);
  ClearTail();
}

void RowBitmap::SetAll() {
  for (uint64_t& word : words_) word = ~uint64_t{0};
  ClearTail();
}

void RowBitmap::ClearAll() {
  for (uint64_t& word : words_) word = 0;
}

void RowBitmap::ClearTail() {
  const size_t tail = rows_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

size_t RowBitmap::Count() const {
  size_t count = 0;
  for (uint64_t word : words_) count += std::popcount(word);
  return count;
}

size_t RowBitmap::CountPrefix(size_t limit) const {
  if (limit >= rows_) return Count();
  const size_t full_words = limit >> 6;
  size_t count = 0;
  for (size_t w = 0; w < full_words; ++w) count += std::popcount(words_[w]);
  const size_t tail = limit & 63;
  if (tail != 0) {
    count += std::popcount(words_[full_words] & ((uint64_t{1} << tail) - 1));
  }
  return count;
}

void RowBitmap::AndWith(const RowBitmap& other) {
  CCE_CHECK(rows_ == other.rows_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

void RowBitmap::AndNotWith(const RowBitmap& other) {
  CCE_CHECK(rows_ == other.rows_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
}

size_t RowBitmap::AndCount(const RowBitmap& a, const RowBitmap& b,
                           ThreadPool* pool, uint64_t* shards) {
  CCE_CHECK(a.rows_ == b.rows_);
  const size_t words = a.words_.size();
  // Below one shard of words the dispatch overhead dwarfs the AND itself.
  if (pool == nullptr || words <= kShardWords) {
    size_t count = 0;
    for (size_t w = 0; w < words; ++w) {
      count += std::popcount(a.words_[w] & b.words_[w]);
    }
    return count;
  }
  const size_t num_shards = (words + kShardWords - 1) / kShardWords;
  std::vector<size_t> partial(num_shards, 0);
  const uint64_t* wa = a.words_.data();
  const uint64_t* wb = b.words_.data();
  pool->ParallelChunks(words, kShardWords,
                       [wa, wb, &partial](size_t begin, size_t end) {
                         size_t count = 0;
                         for (size_t w = begin; w < end; ++w) {
                           count += std::popcount(wa[w] & wb[w]);
                         }
                         partial[begin / kShardWords] = count;
                       });
  size_t count = 0;
  for (size_t p : partial) count += p;
  if (shards != nullptr) *shards += num_shards;
  return count;
}

size_t RowBitmap::AndNotAndCount(const RowBitmap& a, const RowBitmap& b,
                                 const RowBitmap& c) {
  CCE_CHECK(a.rows_ == b.rows_ && a.rows_ == c.rows_);
  size_t count = 0;
  for (size_t w = 0; w < a.words_.size(); ++w) {
    count += std::popcount(a.words_[w] & ~b.words_[w] & c.words_[w]);
  }
  return count;
}

std::vector<size_t> RowBitmap::ToRows() const {
  std::vector<size_t> rows;
  rows.reserve(Count());
  ForEachSetBit([&rows](size_t row) { rows.push_back(row); });
  return rows;
}

int RowBitmap::CountTrailingZeros(uint64_t word) {
  return std::countr_zero(word);
}

}  // namespace cce
