#ifndef CCE_CORE_ROW_BITMAP_H_
#define CCE_CORE_ROW_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cce {

class ThreadPool;

/// A dense bitmap over context row ids, blocked into 64-bit words — the
/// storage unit of the bitset conformity engine. Each (feature, value)
/// predicate of a context becomes one RowBitmap; violator counting is then
/// word-AND + popcount instead of a sorted-row-id merge.
///
/// All counting results are exact integers, so sharding a count across a
/// ThreadPool is deterministic by construction: shard boundaries are fixed
/// word ranges (independent of the pool width) and partial popcounts are
/// summed in shard order.
///
/// Thread safety: const methods may be called concurrently; mutation
/// requires external synchronisation, like std::vector.
class RowBitmap {
 public:
  RowBitmap() = default;
  /// All-zero bitmap over `rows` row ids.
  explicit RowBitmap(size_t rows) { Resize(rows); }

  /// Grows (or shrinks) to `rows`, preserving existing bits; new bits are 0.
  void Resize(size_t rows);

  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  size_t num_words() const { return words_.size(); }
  const uint64_t* data() const { return words_.data(); }

  /// Mutable word access for bulk construction (one store per 64 rows
  /// instead of 64 Set calls). Writers must keep the tail bits at
  /// positions >= size() clear — every counting routine relies on it.
  uint64_t* mutable_data() { return words_.data(); }

  void Set(size_t row) { words_[row >> 6] |= uint64_t{1} << (row & 63); }
  void Clear(size_t row) { words_[row >> 6] &= ~(uint64_t{1} << (row & 63)); }
  bool Test(size_t row) const {
    return (words_[row >> 6] >> (row & 63)) & 1;
  }

  /// Sets every bit in [0, size()).
  void SetAll();
  /// Clears every bit.
  void ClearAll();

  /// Number of set bits.
  size_t Count() const;

  /// Number of set bits among rows [0, limit) — e.g. the frequency of a
  /// predicate within a prefix sample of the context.
  size_t CountPrefix(size_t limit) const;

  /// this &= other. Both bitmaps must have the same size.
  void AndWith(const RowBitmap& other);

  /// this &= ~other (clears the rows set in `other`).
  void AndNotWith(const RowBitmap& other);

  /// popcount(a & b) without materialising the intersection. When `pool` is
  /// non-null and the bitmaps are large enough to amortise task dispatch,
  /// the word range is sharded across the pool; `shards` (if non-null) is
  /// incremented by the number of tasks dispatched (0 for the serial path).
  /// The result is identical with and without a pool.
  static size_t AndCount(const RowBitmap& a, const RowBitmap& b,
                         ThreadPool* pool = nullptr,
                         uint64_t* shards = nullptr);

  /// popcount(a & ~b & c) — e.g. rows agreeing on a predicate (a), not
  /// removed (c = live rows), predicted differently (b = rows with y0).
  static size_t AndNotAndCount(const RowBitmap& a, const RowBitmap& b,
                               const RowBitmap& c);

  /// Invokes fn(row) for every set bit, ascending.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = CountTrailingZeros(word);
        fn((w << 6) + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// The set rows as a sorted vector — the bridge back to the sorted-row-id
  /// world of the reference engine.
  std::vector<size_t> ToRows() const;

  /// Word count of the fixed shard size used by parallel counting. Exposed
  /// so callers can predict fanout (`ceil(num_words / kShardWords)`).
  static constexpr size_t kShardWords = 4096;  // 256 KiB of rows per shard

 private:
  static int CountTrailingZeros(uint64_t word);

  /// Zeroes the bits at positions >= rows_ in the last word; every counting
  /// routine relies on the tail staying clear.
  void ClearTail();

  std::vector<uint64_t> words_;
  size_t rows_ = 0;
};

}  // namespace cce

#endif  // CCE_CORE_ROW_BITMAP_H_
