#include "core/schema.h"

#include "common/logging.h"

namespace cce {

FeatureId Schema::AddFeature(const std::string& name) {
  CCE_CHECK(feature_ids_.find(name) == feature_ids_.end());
  FeatureId id = static_cast<FeatureId>(features_.size());
  features_.push_back(FeatureInfo{name, {}, {}});
  feature_ids_.emplace(name, id);
  return id;
}

ValueId Schema::InternValue(FeatureId feature, const std::string& value) {
  CCE_CHECK(feature < features_.size());
  FeatureInfo& info = features_[feature];
  auto it = info.value_ids.find(value);
  if (it != info.value_ids.end()) return it->second;
  ValueId id = static_cast<ValueId>(info.value_names.size());
  info.value_names.push_back(value);
  info.value_ids.emplace(value, id);
  return id;
}

Result<ValueId> Schema::LookupValue(FeatureId feature,
                                    const std::string& value) const {
  if (feature >= features_.size()) {
    return Status::OutOfRange("feature id out of range");
  }
  const FeatureInfo& info = features_[feature];
  auto it = info.value_ids.find(value);
  if (it == info.value_ids.end()) {
    return Status::NotFound("value '" + value + "' not in dom(" + info.name +
                            ")");
  }
  return it->second;
}

Label Schema::InternLabel(const std::string& name) {
  auto it = label_ids_.find(name);
  if (it != label_ids_.end()) return it->second;
  Label id = static_cast<Label>(label_names_.size());
  label_names_.push_back(name);
  label_ids_.emplace(name, id);
  return id;
}

Result<Label> Schema::LookupLabel(const std::string& name) const {
  auto it = label_ids_.find(name);
  if (it == label_ids_.end()) {
    return Status::NotFound("label '" + name + "' not interned");
  }
  return it->second;
}

Result<FeatureId> Schema::FeatureIndex(const std::string& name) const {
  auto it = feature_ids_.find(name);
  if (it == feature_ids_.end()) {
    return Status::NotFound("feature '" + name + "' not in schema");
  }
  return it->second;
}

size_t Schema::DomainSize(FeatureId feature) const {
  CCE_CHECK(feature < features_.size());
  return features_[feature].value_names.size();
}

const std::string& Schema::FeatureName(FeatureId feature) const {
  CCE_CHECK(feature < features_.size());
  return features_[feature].name;
}

const std::string& Schema::ValueName(FeatureId feature, ValueId value) const {
  CCE_CHECK(feature < features_.size());
  const FeatureInfo& info = features_[feature];
  CCE_CHECK(value < info.value_names.size());
  return info.value_names[value];
}

const std::string& Schema::LabelName(Label label) const {
  CCE_CHECK(label < label_names_.size());
  return label_names_[label];
}

std::vector<std::string> Schema::FeatureNames() const {
  std::vector<std::string> names;
  names.reserve(features_.size());
  for (const auto& info : features_) names.push_back(info.name);
  return names;
}

Status Schema::ValidateInstance(const Instance& x) const {
  if (x.size() != features_.size()) {
    return Status::InvalidArgument(
        "instance has " + std::to_string(x.size()) + " values, schema has " +
        std::to_string(features_.size()) + " features");
  }
  for (FeatureId f = 0; f < x.size(); ++f) {
    if (x[f] >= features_[f].value_names.size()) {
      return Status::InvalidArgument(
          "value code " + std::to_string(x[f]) + " of feature '" +
          features_[f].name + "' is outside its domain of " +
          std::to_string(features_[f].value_names.size()) + " values");
    }
  }
  return Status::Ok();
}

Status Schema::ValidateLabel(Label y) const {
  if (y >= label_names_.size()) {
    return Status::InvalidArgument(
        "label " + std::to_string(y) +
        " is not in the schema's label dictionary (" +
        std::to_string(label_names_.size()) + " labels)");
  }
  return Status::Ok();
}

}  // namespace cce
