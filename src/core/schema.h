#ifndef CCE_CORE_SCHEMA_H_
#define CCE_CORE_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace cce {

/// Describes the discrete feature space X(A_1, ..., A_n) of a model (paper
/// Section 2): feature names, the interned value dictionary of each feature,
/// and the label dictionary. Construction interns values; once shared with a
/// Dataset the schema is treated as immutable by readers.
class Schema {
 public:
  Schema() = default;

  /// Registers a feature and returns its id. Names must be unique.
  FeatureId AddFeature(const std::string& name);

  /// Interns `value` in the domain of `feature` (get-or-add).
  ValueId InternValue(FeatureId feature, const std::string& value);

  /// Looks up an already-interned value. NotFound if absent.
  Result<ValueId> LookupValue(FeatureId feature,
                              const std::string& value) const;

  /// Interns a label name (get-or-add).
  Label InternLabel(const std::string& name);

  /// Looks up an already-interned label. NotFound if absent.
  Result<Label> LookupLabel(const std::string& name) const;

  /// Feature id for `name`; NotFound if no such feature.
  Result<FeatureId> FeatureIndex(const std::string& name) const;

  size_t num_features() const { return features_.size(); }
  size_t num_labels() const { return label_names_.size(); }

  /// dom(A_i) size for feature i.
  size_t DomainSize(FeatureId feature) const;

  const std::string& FeatureName(FeatureId feature) const;
  const std::string& ValueName(FeatureId feature, ValueId value) const;
  const std::string& LabelName(Label label) const;

  /// All feature names in id order; handy for rendering FeatureSets.
  std::vector<std::string> FeatureNames() const;

  /// Checks that `x` is a well-formed instance over this schema: one value
  /// per feature and every code inside the feature's interned domain.
  /// The serving boundary calls this on every request so a poisoned
  /// instance (truncated arity, out-of-range categorical code) never
  /// reaches the context, the write-ahead log, or a key search.
  Status ValidateInstance(const Instance& x) const;

  /// Checks that `y` exists in the label dictionary.
  Status ValidateLabel(Label y) const;

 private:
  struct FeatureInfo {
    std::string name;
    std::vector<std::string> value_names;
    std::unordered_map<std::string, ValueId> value_ids;
  };

  std::vector<FeatureInfo> features_;
  std::unordered_map<std::string, FeatureId> feature_ids_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, Label> label_ids_;
};

}  // namespace cce

#endif  // CCE_CORE_SCHEMA_H_
