#include "core/srk.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/conformity.h"
#include "core/row_bitmap.h"

namespace cce {

namespace {

/// The greedy half of the bitset engine, shared by the single-instance and
/// batched entry points: the same decision sequence as the sorted-row-id
/// loop in ExplainInstance below, expressed over prebuilt per-feature
/// agreement bitmaps (`agree`, n of them) and a violator bitmap (mutated in
/// place). `pool` shards only the candidate *counting*; the arg-min scan is
/// always serial in ascending feature order, so the picks — and therefore
/// the key — are independent of pool width and of whether the bitmaps were
/// built alone or as one slice of a batch build.
KeyResult RunBitsetGreedy(size_t n, size_t context_size, size_t tolerated,
                          const Deadline& deadline, RowBitmap* agree,
                          RowBitmap* violators_in,
                          const std::vector<size_t>& value_frequency,
                          ThreadPool* pool, Srk::EngineStats* stats) {
  KeyResult result;
  RowBitmap& violators = *violators_in;

  // Runs fn(f) for every feature, across the pool when one is configured.
  // Each task stays serial inside (no nested pool use: non-reentrant).
  auto for_each_feature = [&](auto&& fn) {
    if (pool == nullptr) {
      for (FeatureId f = 0; f < n; ++f) fn(f);
    } else {
      pool->ParallelFor(n, [&](size_t f) { fn(static_cast<FeatureId>(f)); });
      if (stats != nullptr) {
        stats->shard_tasks.fetch_add(n, std::memory_order_relaxed);
      }
    }
  };

  std::vector<bool> in_key(n, false);
  size_t violator_count = violators.Count();

  const bool bounded = !deadline.infinite();
  auto finish_degraded = [&]() -> KeyResult {
    for (FeatureId f = 0; f < n; ++f) {
      if (!in_key[f]) FeatureSetInsert(&result.key, f);
    }
    // Survivors of the all-feature key are exact duplicates of x0: the
    // intersection of V with every agreement bitmap.
    RowBitmap duplicates = violators;
    for (FeatureId f = 0; f < n; ++f) duplicates.AndWith(agree[f]);
    const size_t surviving = duplicates.Count();
    result.degraded = true;
    result.achieved_alpha =
        1.0 - static_cast<double>(surviving) /
                  static_cast<double>(context_size);
    result.satisfied = surviving <= tolerated;
    return result;
  };

  std::vector<size_t> counts(n, 0);
  while (violator_count > tolerated) {
    if (bounded && deadline.expired()) return finish_degraded();
    for_each_feature([&](FeatureId f) {
      if (!in_key[f]) counts[f] = RowBitmap::AndCount(violators, agree[f]);
    });
    FeatureId best_feature = 0;
    size_t best_count = std::numeric_limits<size_t>::max();
    size_t best_frequency = 0;
    for (FeatureId f = 0; f < n; ++f) {
      if (in_key[f]) continue;
      if (counts[f] < best_count ||
          (counts[f] == best_count &&
           value_frequency[f] > best_frequency)) {
        best_count = counts[f];
        best_feature = f;
        best_frequency = value_frequency[f];
      }
    }
    if (best_count == std::numeric_limits<size_t>::max() ||
        best_count == violator_count) {
      result.satisfied = false;
      break;
    }

    in_key[best_feature] = true;
    FeatureSetInsert(&result.key, best_feature);
    result.pick_order.push_back(best_feature);
    violators.AndWith(agree[best_feature]);
    violator_count = best_count;
  }

  result.achieved_alpha =
      context_size == 0
          ? 1.0
          : 1.0 - static_cast<double>(violator_count) /
                      static_cast<double>(context_size);
  if (violator_count <= tolerated) result.satisfied = true;
  return result;
}

/// The bitset path: for a fixed x0 the greedy only ever reads the
/// (f, x0[f]) slice of the (feature, value) bitmap family, so only that
/// slice is built: A_f with A_f[row] = (context[row][f] == x0[f]), plus a
/// violator bitmap V with V[row] = (label[row] != y0). Each candidate count
/// is then popcount(V & A_f); taking feature f updates V &= A_f.
///
/// Determinism: every quantity compared by the greedy (candidate counts,
/// tie-break frequencies) is an exact integer popcount, so the arg-min scan
/// — which always runs serially in ascending feature order — picks the same
/// feature as the reference loop regardless of how the counting work was
/// sharded. Identical keys with 0, 1 or N pool threads.
KeyResult ExplainInstanceBitset(const Context& context, const Instance& x0,
                                Label y0, const Srk::Options& options,
                                size_t tolerated) {
  const size_t n = context.num_features();
  const size_t context_size = context.size();
  ThreadPool* pool = options.pool;
  Srk::EngineStats* stats = options.stats;

  // One row-major pass builds every agreement bitmap and the violator
  // bitmap together: each row is touched once (instances are row-major, so
  // per-feature column walks would chase the same row pointers n times)
  // and words are accumulated locally, one store per 64 rows per bitmap.
  std::vector<RowBitmap> agree(n);
  for (FeatureId f = 0; f < n; ++f) agree[f].Resize(context_size);
  RowBitmap violators(context_size);
  const size_t num_words = violators.num_words();
  auto build_words = [&](size_t word_begin, size_t word_end) {
    std::vector<uint64_t> acc(n);
    for (size_t w = word_begin; w < word_end; ++w) {
      std::fill(acc.begin(), acc.end(), 0);
      uint64_t viol = 0;
      const size_t row_begin = w << 6;
      const size_t row_end = std::min(context_size, row_begin + 64);
      for (size_t row = row_begin; row < row_end; ++row) {
        const Instance& xr = context.instance(row);
        const uint64_t bit = uint64_t{1} << (row - row_begin);
        for (FeatureId f = 0; f < n; ++f) {
          if (xr[f] == x0[f]) acc[f] |= bit;
        }
        if (context.label(row) != y0) viol |= bit;
      }
      for (FeatureId f = 0; f < n; ++f) agree[f].mutable_data()[w] = acc[f];
      violators.mutable_data()[w] = viol;
    }
  };
  // Chunks write disjoint word ranges of every bitmap, so the result is
  // positional — identical for any pool width, including none.
  constexpr size_t kBuildChunkWords = 1024;  // 64 Ki rows per task
  if (pool != nullptr && num_words > kBuildChunkWords) {
    pool->ParallelChunks(num_words, kBuildChunkWords, build_words);
    if (stats != nullptr) {
      stats->shard_tasks.fetch_add(
          (num_words + kBuildChunkWords - 1) / kBuildChunkWords,
          std::memory_order_relaxed);
    }
  } else {
    build_words(0, num_words);
  }
  if (stats != nullptr) {
    stats->bitmap_builds.fetch_add(1, std::memory_order_relaxed);
  }

  // Same sampled tie-break frequencies as the reference loop; a prefix
  // popcount of A_f is the same integer the sampled row scan produces.
  constexpr size_t kFrequencySample = 2048;
  const size_t sample_rows = std::min(context_size, kFrequencySample);
  std::vector<size_t> value_frequency(n, 0);
  for (FeatureId f = 0; f < n; ++f) {
    value_frequency[f] = agree[f].CountPrefix(sample_rows);
  }

  return RunBitsetGreedy(n, context_size, tolerated, options.deadline,
                         agree.data(), &violators, value_frequency, pool,
                         stats);
}

/// The batched bitset path: one fused row-major pass fills EVERY item's
/// agreement bitmaps and violator bitmap together — each context row's
/// instance pointer is chased once for the whole batch instead of once per
/// item — then each item's greedy runs serially inside a per-item task.
/// Chunks write disjoint word ranges of every bitmap, so the build is
/// positional: identical bits at any pool width, including none.
std::vector<KeyResult> ExplainBatchBitset(const Context& context,
                                          const std::vector<Srk::BatchItem>& items,
                                          const Srk::Options& options,
                                          size_t tolerated) {
  const size_t n = context.num_features();
  const size_t m = items.size();
  const size_t context_size = context.size();
  ThreadPool* pool = options.pool;
  Srk::EngineStats* stats = options.stats;

  // agree[i * n + f] is item i's agreement bitmap for feature f.
  std::vector<RowBitmap> agree(m * n);
  for (RowBitmap& bitmap : agree) bitmap.Resize(context_size);
  std::vector<RowBitmap> violators(m);
  for (RowBitmap& bitmap : violators) bitmap.Resize(context_size);
  const size_t num_words = violators[0].num_words();

  auto build_words = [&](size_t word_begin, size_t word_end) {
    std::vector<uint64_t> acc(m * n);
    std::vector<uint64_t> viol(m);
    for (size_t w = word_begin; w < word_end; ++w) {
      std::fill(acc.begin(), acc.end(), 0);
      std::fill(viol.begin(), viol.end(), 0);
      const size_t row_begin = w << 6;
      const size_t row_end = std::min(context_size, row_begin + 64);
      for (size_t row = row_begin; row < row_end; ++row) {
        const Instance& xr = context.instance(row);
        const Label yr = context.label(row);
        const uint64_t bit = uint64_t{1} << (row - row_begin);
        for (size_t i = 0; i < m; ++i) {
          const Instance& x0 = items[i].x;
          uint64_t* item_acc = acc.data() + i * n;
          for (FeatureId f = 0; f < n; ++f) {
            if (xr[f] == x0[f]) item_acc[f] |= bit;
          }
          if (yr != items[i].y) viol[i] |= bit;
        }
      }
      for (size_t i = 0; i < m; ++i) {
        for (FeatureId f = 0; f < n; ++f) {
          agree[i * n + f].mutable_data()[w] = acc[i * n + f];
        }
        violators[i].mutable_data()[w] = viol[i];
      }
    }
  };
  constexpr size_t kBuildChunkWords = 1024;  // 64 Ki rows per task
  if (pool != nullptr && num_words > kBuildChunkWords) {
    pool->ParallelChunks(num_words, kBuildChunkWords, build_words);
    if (stats != nullptr) {
      stats->shard_tasks.fetch_add(
          (num_words + kBuildChunkWords - 1) / kBuildChunkWords,
          std::memory_order_relaxed);
    }
  } else {
    build_words(0, num_words);
  }
  // The shared build is the amortization: one bitmap build for the whole
  // batch, where N serial Explains would have counted N.
  if (stats != nullptr) {
    stats->bitmap_builds.fetch_add(1, std::memory_order_relaxed);
  }

  constexpr size_t kFrequencySample = 2048;
  const size_t sample_rows = std::min(context_size, kFrequencySample);

  std::vector<KeyResult> results(m);
  // Per-item greedy, fanned across the pool. Each task is fully serial
  // inside (ThreadPool is non-reentrant), which is also why the greedy's
  // own candidate counting gets no pool here: the keys are unchanged —
  // every compared quantity is an exact popcount either way.
  auto run_item = [&](size_t i) {
    RowBitmap* item_agree = agree.data() + i * n;
    std::vector<size_t> value_frequency(n, 0);
    for (FeatureId f = 0; f < n; ++f) {
      value_frequency[f] = item_agree[f].CountPrefix(sample_rows);
    }
    results[i] = RunBitsetGreedy(n, context_size, tolerated,
                                 items[i].deadline, item_agree, &violators[i],
                                 value_frequency, /*pool=*/nullptr, stats);
  };
  if (pool != nullptr) {
    pool->ParallelFor(m, run_item);
    if (stats != nullptr) {
      stats->shard_tasks.fetch_add(m, std::memory_order_relaxed);
    }
  } else {
    for (size_t i = 0; i < m; ++i) run_item(i);
  }
  return results;
}

}  // namespace

Result<KeyResult> Srk::Explain(const Context& context, size_t row,
                               const Options& options) {
  if (row >= context.size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " outside context of size " +
                              std::to_string(context.size()));
  }
  return ExplainInstance(context, context.instance(row), context.label(row),
                         options);
}

Result<std::vector<Srk::SweepPoint>> Srk::SweepTradeoff(
    const Context& context, size_t row) {
  if (row >= context.size()) {
    return Status::OutOfRange("row outside context");
  }
  const Instance& x0 = context.instance(row);
  const Label y0 = context.label(row);
  const size_t n = context.num_features();
  const double context_size = static_cast<double>(context.size());

  std::vector<size_t> violators;
  for (size_t r = 0; r < context.size(); ++r) {
    if (context.label(r) != y0) violators.push_back(r);
  }

  std::vector<SweepPoint> curve;
  curve.push_back(SweepPoint{
      0, 1.0 - static_cast<double>(violators.size()) / context_size,
      static_cast<FeatureId>(n)});  // sentinel: no pick for the empty key

  // Same sampled-frequency tie-break as ExplainInstance, so the sweep's
  // pick sequence matches per-alpha Explain calls exactly.
  constexpr size_t kFrequencySample = 2048;
  const size_t sample_rows =
      std::min(context.size(), kFrequencySample);
  std::vector<size_t> value_frequency(n, 0);
  for (size_t r = 0; r < sample_rows; ++r) {
    for (FeatureId f = 0; f < n; ++f) {
      if (context.value(r, f) == x0[f]) ++value_frequency[f];
    }
  }

  std::vector<bool> in_key(n, false);
  size_t key_size = 0;
  // Greedy to exhaustion: each step records the conformity the prefix key
  // achieves, yielding the whole alpha-vs-succinctness curve in one run.
  while (!violators.empty() && key_size < n) {
    FeatureId best_feature = 0;
    size_t best_count = std::numeric_limits<size_t>::max();
    size_t best_frequency = 0;
    for (FeatureId f = 0; f < n; ++f) {
      if (in_key[f]) continue;
      size_t count = 0;
      for (size_t r : violators) {
        if (context.value(r, f) == x0[f]) ++count;
      }
      if (count < best_count ||
          (count == best_count && value_frequency[f] > best_frequency)) {
        best_count = count;
        best_feature = f;
        best_frequency = value_frequency[f];
      }
    }
    if (best_count == violators.size()) break;  // no feature helps
    in_key[best_feature] = true;
    ++key_size;
    std::vector<size_t> surviving;
    surviving.reserve(best_count);
    for (size_t r : violators) {
      if (context.value(r, best_feature) == x0[best_feature]) {
        surviving.push_back(r);
      }
    }
    violators = std::move(surviving);
    curve.push_back(SweepPoint{
        key_size,
        1.0 - static_cast<double>(violators.size()) / context_size,
        best_feature});
  }
  return curve;
}

Result<KeyResult> Srk::ExplainInstance(const Context& context,
                                       const Instance& x0, Label y0,
                                       const Options& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (x0.size() != context.num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }

  const size_t n = context.num_features();
  const size_t context_size = context.size();
  const double budget =
      std::floor((1.0 - options.alpha) * static_cast<double>(context_size) +
                 1e-9);
  const size_t tolerated = static_cast<size_t>(budget);

  if (options.parallel_conformity) {
    return ExplainInstanceBitset(context, x0, y0, options, tolerated);
  }

  KeyResult result;

  // Violators: rows that agree with x0 on the current key E yet are
  // predicted differently. With E empty that is every differently-predicted
  // row. The greedy loop shrinks this set monotonically.
  std::vector<size_t> violators;
  for (size_t row = 0; row < context_size; ++row) {
    if (context.label(row) != y0) violators.push_back(row);
  }

  std::vector<bool> in_key(n, false);

  // Note: Algorithm 1 as printed always selects at least one feature; we
  // first check whether the empty key already satisfies the bound (possible
  // for alpha < 1 or single-class contexts), which is strictly more succinct
  // and still alpha-conformant.
  // Per-feature context frequency of x0's value, used only to break ties in
  // the greedy step: among equally-violator-minimising features, prefer the
  // one agreeing with the most context rows, which keeps the key's coverage
  // (and hence recall, Section 7.1(c)) high. Algorithm 1 leaves ties open.
  // A fixed-size prefix sample suffices — ties only need approximate
  // frequencies — keeping this pass O(n) amortised for large contexts.
  constexpr size_t kFrequencySample = 2048;
  const size_t sample_rows = std::min(context_size, kFrequencySample);
  std::vector<size_t> value_frequency(n, 0);
  for (size_t row = 0; row < sample_rows; ++row) {
    for (FeatureId f = 0; f < n; ++f) {
      if (context.value(row, f) == x0[f]) ++value_frequency[f];
    }
  }

  // Deadline handling: when the per-call budget expires mid-search we stop
  // enumerating candidates and *pad* the key with every remaining feature.
  // The all-feature key is the most conformant key that exists (only exact
  // duplicates of x0 with a different prediction survive it), so the result
  // remains alpha-conformant whenever any key is — just not minimal. The
  // caller sees `degraded = true`.
  const bool bounded = !options.deadline.infinite();
  auto finish_degraded = [&]() -> KeyResult {
    for (FeatureId f = 0; f < n; ++f) {
      if (!in_key[f]) FeatureSetInsert(&result.key, f);
    }
    std::vector<size_t> surviving;
    for (size_t row : violators) {
      bool duplicate = true;
      for (FeatureId f = 0; f < n && duplicate; ++f) {
        duplicate = context.value(row, f) == x0[f];
      }
      if (duplicate) surviving.push_back(row);
    }
    violators = std::move(surviving);
    result.degraded = true;
    result.achieved_alpha =
        1.0 - static_cast<double>(violators.size()) /
                  static_cast<double>(context_size);
    result.satisfied = violators.size() <= tolerated;
    return result;
  };

  while (violators.size() > tolerated) {
    if (bounded && options.deadline.expired()) return finish_degraded();
    // Greedy step (Algorithm 1 lines 1-6): pick the feature minimising the
    // number of surviving violators, i.e. |I[A_i = a_i] ∩ violators|.
    FeatureId best_feature = 0;
    size_t best_count = std::numeric_limits<size_t>::max();
    size_t best_frequency = 0;
    bool scan_expired = false;
    for (FeatureId f = 0; f < n; ++f) {
      if (in_key[f]) continue;
      // Check inside the candidate scan too: one full scan over a large
      // violator set can dwarf a millisecond-scale budget.
      if (bounded && options.deadline.expired()) {
        scan_expired = true;
        break;
      }
      size_t count = 0;
      for (size_t row : violators) {
        if (context.value(row, f) == x0[f]) ++count;
      }
      if (count < best_count ||
          (count == best_count && value_frequency[f] > best_frequency)) {
        best_count = count;
        best_feature = f;
        best_frequency = value_frequency[f];
      }
    }
    if (scan_expired) return finish_degraded();
    if (best_count == std::numeric_limits<size_t>::max() ||
        best_count == violators.size()) {
      // Either all features are used up, or no remaining feature removes a
      // single violator (conflicting duplicates): the target is unreachable.
      if (best_count == violators.size() &&
          best_count != std::numeric_limits<size_t>::max()) {
        // Adding more features cannot help; stop with the current key.
      }
      result.satisfied = false;
      break;
    }

    in_key[best_feature] = true;
    FeatureSetInsert(&result.key, best_feature);
    result.pick_order.push_back(best_feature);

    std::vector<size_t> surviving;
    surviving.reserve(best_count);
    for (size_t row : violators) {
      if (context.value(row, best_feature) == x0[best_feature]) {
        surviving.push_back(row);
      }
    }
    violators = std::move(surviving);
  }

  result.achieved_alpha =
      context_size == 0
          ? 1.0
          : 1.0 - static_cast<double>(violators.size()) /
                      static_cast<double>(context_size);
  if (violators.size() <= tolerated) result.satisfied = true;
  return result;
}

Result<std::vector<KeyResult>> Srk::ExplainBatch(
    const Context& context, const std::vector<BatchItem>& items,
    const Options& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  const size_t n = context.num_features();
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].x.size() != n) {
      return Status::InvalidArgument(
          "batch item " + std::to_string(i) +
          ": instance arity does not match schema");
    }
  }
  std::vector<KeyResult> results;
  if (items.empty()) return results;

  const double budget =
      std::floor((1.0 - options.alpha) * static_cast<double>(context.size()) +
                 1e-9);
  const size_t tolerated = static_cast<size_t>(budget);

  if (options.parallel_conformity) {
    return ExplainBatchBitset(context, items, options, tolerated);
  }

  // Reference engine: nothing to amortize, but the batch entry point keeps
  // its contract — item i's result equals a standalone ExplainInstance.
  results.reserve(items.size());
  for (const BatchItem& item : items) {
    Options per_item = options;
    per_item.deadline = item.deadline;
    Result<KeyResult> key = ExplainInstance(context, item.x, item.y, per_item);
    if (!key.ok()) return key.status();
    results.push_back(std::move(*key));
  }
  return results;
}

}  // namespace cce
