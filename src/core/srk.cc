#include "core/srk.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/conformity.h"

namespace cce {

Result<KeyResult> Srk::Explain(const Context& context, size_t row,
                               const Options& options) {
  if (row >= context.size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " outside context of size " +
                              std::to_string(context.size()));
  }
  return ExplainInstance(context, context.instance(row), context.label(row),
                         options);
}

Result<std::vector<Srk::SweepPoint>> Srk::SweepTradeoff(
    const Context& context, size_t row) {
  if (row >= context.size()) {
    return Status::OutOfRange("row outside context");
  }
  const Instance& x0 = context.instance(row);
  const Label y0 = context.label(row);
  const size_t n = context.num_features();
  const double context_size = static_cast<double>(context.size());

  std::vector<size_t> violators;
  for (size_t r = 0; r < context.size(); ++r) {
    if (context.label(r) != y0) violators.push_back(r);
  }

  std::vector<SweepPoint> curve;
  curve.push_back(SweepPoint{
      0, 1.0 - static_cast<double>(violators.size()) / context_size,
      static_cast<FeatureId>(n)});  // sentinel: no pick for the empty key

  // Same sampled-frequency tie-break as ExplainInstance, so the sweep's
  // pick sequence matches per-alpha Explain calls exactly.
  constexpr size_t kFrequencySample = 2048;
  const size_t sample_rows =
      std::min(context.size(), kFrequencySample);
  std::vector<size_t> value_frequency(n, 0);
  for (size_t r = 0; r < sample_rows; ++r) {
    for (FeatureId f = 0; f < n; ++f) {
      if (context.value(r, f) == x0[f]) ++value_frequency[f];
    }
  }

  std::vector<bool> in_key(n, false);
  size_t key_size = 0;
  // Greedy to exhaustion: each step records the conformity the prefix key
  // achieves, yielding the whole alpha-vs-succinctness curve in one run.
  while (!violators.empty() && key_size < n) {
    FeatureId best_feature = 0;
    size_t best_count = std::numeric_limits<size_t>::max();
    size_t best_frequency = 0;
    for (FeatureId f = 0; f < n; ++f) {
      if (in_key[f]) continue;
      size_t count = 0;
      for (size_t r : violators) {
        if (context.value(r, f) == x0[f]) ++count;
      }
      if (count < best_count ||
          (count == best_count && value_frequency[f] > best_frequency)) {
        best_count = count;
        best_feature = f;
        best_frequency = value_frequency[f];
      }
    }
    if (best_count == violators.size()) break;  // no feature helps
    in_key[best_feature] = true;
    ++key_size;
    std::vector<size_t> surviving;
    surviving.reserve(best_count);
    for (size_t r : violators) {
      if (context.value(r, best_feature) == x0[best_feature]) {
        surviving.push_back(r);
      }
    }
    violators = std::move(surviving);
    curve.push_back(SweepPoint{
        key_size,
        1.0 - static_cast<double>(violators.size()) / context_size,
        best_feature});
  }
  return curve;
}

Result<KeyResult> Srk::ExplainInstance(const Context& context,
                                       const Instance& x0, Label y0,
                                       const Options& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (x0.size() != context.num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }

  const size_t n = context.num_features();
  const size_t context_size = context.size();
  const double budget =
      std::floor((1.0 - options.alpha) * static_cast<double>(context_size) +
                 1e-9);
  const size_t tolerated = static_cast<size_t>(budget);

  KeyResult result;

  // Violators: rows that agree with x0 on the current key E yet are
  // predicted differently. With E empty that is every differently-predicted
  // row. The greedy loop shrinks this set monotonically.
  std::vector<size_t> violators;
  for (size_t row = 0; row < context_size; ++row) {
    if (context.label(row) != y0) violators.push_back(row);
  }

  std::vector<bool> in_key(n, false);

  // Note: Algorithm 1 as printed always selects at least one feature; we
  // first check whether the empty key already satisfies the bound (possible
  // for alpha < 1 or single-class contexts), which is strictly more succinct
  // and still alpha-conformant.
  // Per-feature context frequency of x0's value, used only to break ties in
  // the greedy step: among equally-violator-minimising features, prefer the
  // one agreeing with the most context rows, which keeps the key's coverage
  // (and hence recall, Section 7.1(c)) high. Algorithm 1 leaves ties open.
  // A fixed-size prefix sample suffices — ties only need approximate
  // frequencies — keeping this pass O(n) amortised for large contexts.
  constexpr size_t kFrequencySample = 2048;
  const size_t sample_rows = std::min(context_size, kFrequencySample);
  std::vector<size_t> value_frequency(n, 0);
  for (size_t row = 0; row < sample_rows; ++row) {
    for (FeatureId f = 0; f < n; ++f) {
      if (context.value(row, f) == x0[f]) ++value_frequency[f];
    }
  }

  // Deadline handling: when the per-call budget expires mid-search we stop
  // enumerating candidates and *pad* the key with every remaining feature.
  // The all-feature key is the most conformant key that exists (only exact
  // duplicates of x0 with a different prediction survive it), so the result
  // remains alpha-conformant whenever any key is — just not minimal. The
  // caller sees `degraded = true`.
  const bool bounded = !options.deadline.infinite();
  auto finish_degraded = [&]() -> KeyResult {
    for (FeatureId f = 0; f < n; ++f) {
      if (!in_key[f]) FeatureSetInsert(&result.key, f);
    }
    std::vector<size_t> surviving;
    for (size_t row : violators) {
      bool duplicate = true;
      for (FeatureId f = 0; f < n && duplicate; ++f) {
        duplicate = context.value(row, f) == x0[f];
      }
      if (duplicate) surviving.push_back(row);
    }
    violators = std::move(surviving);
    result.degraded = true;
    result.achieved_alpha =
        1.0 - static_cast<double>(violators.size()) /
                  static_cast<double>(context_size);
    result.satisfied = violators.size() <= tolerated;
    return result;
  };

  while (violators.size() > tolerated) {
    if (bounded && options.deadline.expired()) return finish_degraded();
    // Greedy step (Algorithm 1 lines 1-6): pick the feature minimising the
    // number of surviving violators, i.e. |I[A_i = a_i] ∩ violators|.
    FeatureId best_feature = 0;
    size_t best_count = std::numeric_limits<size_t>::max();
    size_t best_frequency = 0;
    bool scan_expired = false;
    for (FeatureId f = 0; f < n; ++f) {
      if (in_key[f]) continue;
      // Check inside the candidate scan too: one full scan over a large
      // violator set can dwarf a millisecond-scale budget.
      if (bounded && options.deadline.expired()) {
        scan_expired = true;
        break;
      }
      size_t count = 0;
      for (size_t row : violators) {
        if (context.value(row, f) == x0[f]) ++count;
      }
      if (count < best_count ||
          (count == best_count && value_frequency[f] > best_frequency)) {
        best_count = count;
        best_feature = f;
        best_frequency = value_frequency[f];
      }
    }
    if (scan_expired) return finish_degraded();
    if (best_count == std::numeric_limits<size_t>::max() ||
        best_count == violators.size()) {
      // Either all features are used up, or no remaining feature removes a
      // single violator (conflicting duplicates): the target is unreachable.
      if (best_count == violators.size() &&
          best_count != std::numeric_limits<size_t>::max()) {
        // Adding more features cannot help; stop with the current key.
      }
      result.satisfied = false;
      break;
    }

    in_key[best_feature] = true;
    FeatureSetInsert(&result.key, best_feature);
    result.pick_order.push_back(best_feature);

    std::vector<size_t> surviving;
    surviving.reserve(best_count);
    for (size_t row : violators) {
      if (context.value(row, best_feature) == x0[best_feature]) {
        surviving.push_back(row);
      }
    }
    violators = std::move(surviving);
  }

  result.achieved_alpha =
      context_size == 0
          ? 1.0
          : 1.0 - static_cast<double>(violators.size()) /
                      static_cast<double>(context_size);
  if (violators.size() <= tolerated) result.satisfied = true;
  return result;
}

}  // namespace cce
