#ifndef CCE_CORE_SRK_H_
#define CCE_CORE_SRK_H_

#include "common/deadline.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/types.h"

namespace cce {

/// Algorithm SRK (paper Algorithm 1): greedy computation of an
/// alpha-conformant relative key for an instance x0 over a static context I.
///
/// Guarantees (paper Lemma 3): the returned key is alpha-conformant and
/// ln(alpha*|I|)-bounded, i.e. at most a logarithmic factor larger than the
/// most succinct alpha-conformant key. Runs in O(n^2 * |I|) worst case.
class Srk {
 public:
  struct Options {
    /// Conformity bound in (0, 1]; 1 demands a (perfectly conformant)
    /// relative key.
    double alpha = 1.0;
    /// Per-call budget for the greedy search. When it expires mid-search
    /// the candidate enumeration stops and the key is completed by adding
    /// every remaining feature — maximally conformant but non-minimal —
    /// and the result is flagged `degraded`. Infinite by default.
    Deadline deadline;
  };

  /// Explains the instance stored at `row` of `context`, whose label is the
  /// model prediction.
  static Result<KeyResult> Explain(const Context& context, size_t row,
                                   const Options& options);

  /// Explains an arbitrary (x0, y0) against `context`. x0 need not be a row
  /// of the context; its values must be expressed in the context schema.
  static Result<KeyResult> ExplainInstance(const Context& context,
                                           const Instance& x0, Label y0,
                                           const Options& options);

  /// One point of the conformity-succinctness trade-off curve.
  struct SweepPoint {
    size_t succinctness = 0;      // key size after this greedy step
    double achieved_alpha = 1.0;  // conformity at that size
    FeatureId picked = 0;         // feature added at this step
  };

  /// The full trade-off curve from a single greedy run: point k gives the
  /// conformity achieved by the first k greedy picks, so the most succinct
  /// greedy key for ANY alpha can be read off without re-running
  /// (Figures 3f/4a in one pass). The first entry is the empty key
  /// (succinctness 0); the curve's alphas are non-decreasing.
  static Result<std::vector<SweepPoint>> SweepTradeoff(
      const Context& context, size_t row);
};

}  // namespace cce

#endif  // CCE_CORE_SRK_H_
