#ifndef CCE_CORE_SRK_H_
#define CCE_CORE_SRK_H_

#include <atomic>
#include <cstdint>

#include "common/deadline.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/types.h"

namespace cce {

class ThreadPool;

/// Algorithm SRK (paper Algorithm 1): greedy computation of an
/// alpha-conformant relative key for an instance x0 over a static context I.
///
/// Guarantees (paper Lemma 3): the returned key is alpha-conformant and
/// ln(alpha*|I|)-bounded, i.e. at most a logarithmic factor larger than the
/// most succinct alpha-conformant key. Runs in O(n^2 * |I|) worst case.
class Srk {
 public:
  /// Counters the bitset engine reports back to the caller (e.g. the proxy's
  /// observability layer). Fields are atomic so a shared instance can absorb
  /// concurrent Explain calls.
  struct EngineStats {
    /// Full per-call bitmap builds (one per bitset-path Explain).
    std::atomic<uint64_t> bitmap_builds{0};
    /// Work items dispatched to the pool — the shard fanout signal. Zero
    /// when the bitset path ran without a pool.
    std::atomic<uint64_t> shard_tasks{0};
  };

  struct Options {
    /// Conformity bound in (0, 1]; 1 demands a (perfectly conformant)
    /// relative key.
    double alpha = 1.0;
    /// Per-call budget for the greedy search. When it expires mid-search
    /// the candidate enumeration stops and the key is completed by adding
    /// every remaining feature — maximally conformant but non-minimal —
    /// and the result is flagged `degraded`. Infinite by default.
    ///
    /// The bitset engine checks the deadline between greedy rounds rather
    /// than between candidate features, so expiry can be detected up to one
    /// candidate scan later than on the serial path.
    Deadline deadline;
    /// Selects the blocked-bitset conformity engine (docs/algorithms.md):
    /// violator counting becomes word-AND + popcount over per-feature
    /// agreement bitmaps instead of sorted-row-id scans. Produces
    /// bit-identical keys to the serial path (determinism contract,
    /// enforced by tests/conformity_parallel_test.cc).
    bool parallel_conformity = false;
    /// Shards candidate evaluation across this pool (not owned). Only read
    /// when parallel_conformity is set; null runs the bitset engine serially
    /// — still the same keys. Must not be a pool whose worker is the calling
    /// thread (ThreadPool is non-reentrant).
    ThreadPool* pool = nullptr;
    /// Optional sink for engine counters (not owned); may be shared across
    /// concurrent calls.
    EngineStats* stats = nullptr;
  };

  /// Explains the instance stored at `row` of `context`, whose label is the
  /// model prediction.
  static Result<KeyResult> Explain(const Context& context, size_t row,
                                   const Options& options);

  /// Explains an arbitrary (x0, y0) against `context`. x0 need not be a row
  /// of the context; its values must be expressed in the context schema.
  static Result<KeyResult> ExplainInstance(const Context& context,
                                           const Instance& x0, Label y0,
                                           const Options& options);

  /// One instance of a batched Explain. The per-item deadline bounds that
  /// item's greedy search alone (expiry degrades that item, not the batch);
  /// the shared bitmap build is charged to no item in particular.
  struct BatchItem {
    Instance x;
    Label y = 0;
    Deadline deadline;
  };

  /// Batched ExplainInstance: scores every item against ONE shared row-major
  /// pass over the context — each context row is touched once for the whole
  /// batch instead of once per item — then runs each item's greedy serially
  /// inside a per-item task (fanned across `options.pool` when set).
  ///
  /// Determinism contract: the returned keys are bit-identical to calling
  /// ExplainInstance on each item independently, at any pool width and any
  /// batch split (enforced by tests/batch_equivalence_test.cc). Every
  /// quantity the greedy compares is an exact integer popcount and the
  /// arg-min scan is always serial, so sharing the build cannot change a
  /// pick. `options.deadline` is ignored; per-item deadlines apply.
  static Result<std::vector<KeyResult>> ExplainBatch(
      const Context& context, const std::vector<BatchItem>& items,
      const Options& options);

  /// One point of the conformity-succinctness trade-off curve.
  struct SweepPoint {
    size_t succinctness = 0;      // key size after this greedy step
    double achieved_alpha = 1.0;  // conformity at that size
    FeatureId picked = 0;         // feature added at this step
  };

  /// The full trade-off curve from a single greedy run: point k gives the
  /// conformity achieved by the first k greedy picks, so the most succinct
  /// greedy key for ANY alpha can be read off without re-running
  /// (Figures 3f/4a in one pass). The first entry is the empty key
  /// (succinctness 0); the curve's alphas are non-decreasing.
  static Result<std::vector<SweepPoint>> SweepTradeoff(
      const Context& context, size_t row);
};

}  // namespace cce

#endif  // CCE_CORE_SRK_H_
