#include "core/ssrk.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace cce {

Result<std::unique_ptr<Ssrk>> Ssrk::Create(const Dataset& universe,
                                           Instance x0, Label y0,
                                           const Options& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (x0.size() != universe.num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  if (universe.empty()) {
    return Status::InvalidArgument("universe must not be empty");
  }
  return std::unique_ptr<Ssrk>(
      new Ssrk(universe, std::move(x0), y0, options));
}

Ssrk::Ssrk(const Dataset& universe, Instance x0, Label y0,
           const Options& options)
    : universe_(universe),
      x0_(std::move(x0)),
      y0_(y0),
      options_(options),
      weights_(universe.num_features(), 0.0) {
  const size_t n = universe_.num_features();
  const size_t m = universe_.size();
  log_m_ = std::log(static_cast<double>(m));

  // Offline initialisation (Algorithm 3 lines 1-5): uniform importance
  // weights 1/2n; U = universe instances predicted differently from x0;
  // potential Φ = Σ_j m^{2 mu_j}.
  for (FeatureId f = 0; f < n; ++f) weights_[f] = 1.0 / (2.0 * n);
  for (size_t row = 0; row < m; ++row) {
    if (universe_.label(row) != y0_) active_.push_back(row);
  }
  log_potential_ = LogPotential();
}

double Ssrk::RowScore(size_t universe_row) const {
  const Instance& x = universe_.instance(universe_row);
  double mu = 0.0;
  for (FeatureId f = 0; f < weights_.size(); ++f) {
    if (x[f] != x0_[f]) mu += weights_[f];
  }
  return mu;
}

double Ssrk::LogPotential() const {
  if (active_.empty()) return -std::numeric_limits<double>::infinity();
  // log Σ exp(2 mu_j log m), max-shifted for stability.
  std::vector<double> exponents;
  exponents.reserve(active_.size());
  double max_exponent = -std::numeric_limits<double>::infinity();
  for (size_t row : active_) {
    double e = 2.0 * RowScore(row) * log_m_;
    exponents.push_back(e);
    max_exponent = std::max(max_exponent, e);
  }
  double sum = 0.0;
  for (double e : exponents) sum += std::exp(e - max_exponent);
  return max_exponent + std::log(sum);
}

bool Ssrk::OverBudget() const {
  double budget = (1.0 - options_.alpha) * static_cast<double>(arrived_);
  return static_cast<double>(arrived_violators_.size()) > budget + 1e-9;
}

double Ssrk::achieved_alpha() const {
  if (arrived_ == 0) return 1.0;
  return 1.0 - static_cast<double>(arrived_violators_.size()) /
                   static_cast<double>(arrived_);
}

bool Ssrk::satisfied() const { return !OverBudget(); }

void Ssrk::AddFeatureToKey(FeatureId feature) {
  if (FeatureSetContains(key_, feature)) return;
  FeatureSetInsert(&key_, feature);
  // Line 15: U keeps only instances still agreeing with x0 on the key.
  std::vector<size_t> surviving;
  surviving.reserve(active_.size());
  for (size_t row : active_) {
    if (universe_.value(row, feature) == x0_[feature]) {
      surviving.push_back(row);
    }
  }
  active_ = std::move(surviving);
  std::vector<Instance> surviving_arrived;
  surviving_arrived.reserve(arrived_violators_.size());
  for (Instance& v : arrived_violators_) {
    if (v[feature] == x0_[feature]) surviving_arrived.push_back(std::move(v));
  }
  arrived_violators_ = std::move(surviving_arrived);
}

const FeatureSet& Ssrk::Observe(const Instance& x, Label y) {
  CCE_CHECK(x.size() == universe_.num_features());
  ++arrived_;  // line 6

  // Line 7: arrivals predicted like x0 never expand the key.
  if (y == y0_) return key_;

  bool agrees = true;
  for (FeatureId f : key_) {
    if (x[f] != x0_[f]) {
      agrees = false;
      break;
    }
  }
  if (agrees) arrived_violators_.push_back(x);

  // Line 8: only act while alpha-conformance is violated.
  if (!OverBudget()) return key_;

  // S_t: candidate features where the arrival differs from x0.
  std::vector<FeatureId> candidates;
  for (FeatureId f = 0; f < universe_.num_features(); ++f) {
    if (x[f] != x0_[f] && !FeatureSetContains(key_, f)) {
      candidates.push_back(f);
    }
  }
  if (candidates.empty()) {
    // Conflicting duplicate: no feature can separate x from x0.
    return key_;
  }

  // Line 9-10: weight augmentation — scale candidate weights by the minimum
  // power of two making the aggregate score exceed one.
  double mu = 0.0;
  for (FeatureId f : candidates) mu += weights_[f];
  int k = 0;
  double scaled = mu;
  while (scaled <= 1.0) {
    scaled *= 2.0;
    ++k;
  }
  if (k > 0) {
    double factor = std::pow(2.0, k);
    for (FeatureId f : candidates) weights_[f] *= factor;
  }

  // Lines 11-17: greedily add candidates until the potential stops
  // exceeding its pre-augmentation value.
  double new_log_potential = LogPotential();
  while (new_log_potential > log_potential_ && !candidates.empty()) {
    // Line 13: pick the candidate minimising surviving universe violators.
    FeatureId best_feature = candidates.front();
    size_t best_count = std::numeric_limits<size_t>::max();
    for (FeatureId f : candidates) {
      size_t count = 0;
      for (size_t row : active_) {
        if (universe_.value(row, f) == x0_[f]) ++count;
      }
      if (count < best_count) {
        best_count = count;
        best_feature = f;
      }
    }
    AddFeatureToKey(best_feature);
    candidates.erase(
        std::remove(candidates.begin(), candidates.end(), best_feature),
        candidates.end());
    new_log_potential = LogPotential();
  }
  log_potential_ = new_log_potential;  // line 17
  return key_;
}

}  // namespace cce
