#include "core/ssrk.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace cce {

Result<std::unique_ptr<Ssrk>> Ssrk::Create(const Dataset& universe,
                                           Instance x0, Label y0,
                                           const Options& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (x0.size() != universe.num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  if (universe.empty()) {
    return Status::InvalidArgument("universe must not be empty");
  }
  return std::unique_ptr<Ssrk>(
      new Ssrk(universe, std::move(x0), y0, options));
}

Ssrk::Ssrk(const Dataset& universe, Instance x0, Label y0,
           const Options& options)
    : universe_(universe),
      x0_(std::move(x0)),
      y0_(y0),
      options_(options),
      weights_(universe.num_features(), 0.0) {
  const size_t n = universe_.num_features();
  const size_t m = universe_.size();
  log_m_ = std::log(static_cast<double>(m));

  // Offline initialisation (Algorithm 3 lines 1-5): uniform importance
  // weights 1/2n; U = universe instances predicted differently from x0;
  // potential Φ = Σ_j m^{2 mu_j}.
  for (FeatureId f = 0; f < n; ++f) weights_[f] = 1.0 / (2.0 * n);
  if (options_.parallel_conformity) {
    agree_bits_.resize(n);
    auto build = [&](size_t f) {
      agree_bits_[f].Resize(m);
      std::vector<ValueId> column;
      universe_.CopyColumn(static_cast<FeatureId>(f), &column);
      for (size_t row = 0; row < m; ++row) {
        if (column[row] == x0_[f]) agree_bits_[f].Set(row);
      }
    };
    if (options_.pool != nullptr) {
      options_.pool->ParallelFor(n, build);
    } else {
      for (size_t f = 0; f < n; ++f) build(f);
    }
    active_bits_.Resize(m);
    for (size_t row = 0; row < m; ++row) {
      if (universe_.label(row) != y0_) active_bits_.Set(row);
    }
  } else {
    for (size_t row = 0; row < m; ++row) {
      if (universe_.label(row) != y0_) active_.push_back(row);
    }
  }
  log_potential_ = LogPotential();
}

std::vector<size_t> Ssrk::ActiveRows() const {
  if (options_.parallel_conformity) return active_bits_.ToRows();
  return active_;
}

double Ssrk::RowScore(size_t universe_row) const {
  const Instance& x = universe_.instance(universe_row);
  double mu = 0.0;
  for (FeatureId f = 0; f < weights_.size(); ++f) {
    if (x[f] != x0_[f]) mu += weights_[f];
  }
  return mu;
}

double Ssrk::LogPotential() const {
  const std::vector<size_t> rows = ActiveRows();
  if (rows.empty()) return -std::numeric_limits<double>::infinity();
  // log Σ exp(2 mu_j log m), max-shifted for stability. The accumulation is
  // chunked identically on both engines: exponents are computed per row
  // (each by the same serial feature loop), per-chunk partial sums run over
  // fixed index ranges, and partials combine in chunk order. The parallel
  // engine only changes WHO computes a chunk, never the rounding sequence —
  // Φ comes out bit-identical, and so does every greedy comparison on it.
  constexpr size_t kChunk = 4096;
  ThreadPool* pool = shard_pool();
  const bool sharded = pool != nullptr && rows.size() > kChunk;

  std::vector<double> exponents(rows.size());
  auto fill = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      exponents[i] = 2.0 * RowScore(rows[i]) * log_m_;
    }
  };
  if (sharded) {
    pool->ParallelChunks(rows.size(), kChunk, fill);
  } else {
    fill(0, rows.size());
  }

  double max_exponent = -std::numeric_limits<double>::infinity();
  for (double e : exponents) max_exponent = std::max(max_exponent, e);

  const size_t num_chunks = (rows.size() + kChunk - 1) / kChunk;
  std::vector<double> partial(num_chunks, 0.0);
  auto sum_chunk = [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) {
      s += std::exp(exponents[i] - max_exponent);
    }
    partial[begin / kChunk] = s;
  };
  if (sharded) {
    pool->ParallelChunks(rows.size(), kChunk, sum_chunk);
  } else {
    for (size_t begin = 0; begin < rows.size(); begin += kChunk) {
      sum_chunk(begin, std::min(rows.size(), begin + kChunk));
    }
  }
  double sum = 0.0;
  for (double p : partial) sum += p;
  return max_exponent + std::log(sum);
}

bool Ssrk::OverBudget() const {
  double budget = (1.0 - options_.alpha) * static_cast<double>(arrived_);
  return static_cast<double>(arrived_violators_.size()) > budget + 1e-9;
}

double Ssrk::achieved_alpha() const {
  if (arrived_ == 0) return 1.0;
  return 1.0 - static_cast<double>(arrived_violators_.size()) /
                   static_cast<double>(arrived_);
}

bool Ssrk::satisfied() const { return !OverBudget(); }

void Ssrk::AddFeatureToKey(FeatureId feature) {
  if (FeatureSetContains(key_, feature)) return;
  FeatureSetInsert(&key_, feature);
  // Line 15: U keeps only instances still agreeing with x0 on the key —
  // one bitmap AND on the bitset engine, a row filter on the serial one.
  if (options_.parallel_conformity) {
    active_bits_.AndWith(agree_bits_[feature]);
  } else {
    std::vector<size_t> surviving;
    surviving.reserve(active_.size());
    for (size_t row : active_) {
      if (universe_.value(row, feature) == x0_[feature]) {
        surviving.push_back(row);
      }
    }
    active_ = std::move(surviving);
  }
  std::vector<Instance> surviving_arrived;
  surviving_arrived.reserve(arrived_violators_.size());
  for (Instance& v : arrived_violators_) {
    if (v[feature] == x0_[feature]) surviving_arrived.push_back(std::move(v));
  }
  arrived_violators_ = std::move(surviving_arrived);
}

const FeatureSet& Ssrk::Observe(const Instance& x, Label y) {
  CCE_CHECK(x.size() == universe_.num_features());
  ++arrived_;  // line 6

  // Line 7: arrivals predicted like x0 never expand the key.
  if (y == y0_) return key_;

  bool agrees = true;
  for (FeatureId f : key_) {
    if (x[f] != x0_[f]) {
      agrees = false;
      break;
    }
  }
  if (agrees) arrived_violators_.push_back(x);

  // Line 8: only act while alpha-conformance is violated.
  if (!OverBudget()) return key_;

  // S_t: candidate features where the arrival differs from x0.
  std::vector<FeatureId> candidates;
  for (FeatureId f = 0; f < universe_.num_features(); ++f) {
    if (x[f] != x0_[f] && !FeatureSetContains(key_, f)) {
      candidates.push_back(f);
    }
  }
  if (candidates.empty()) {
    // Conflicting duplicate: no feature can separate x from x0.
    return key_;
  }

  // Line 9-10: weight augmentation — scale candidate weights by the minimum
  // power of two making the aggregate score exceed one.
  double mu = 0.0;
  for (FeatureId f : candidates) mu += weights_[f];
  int k = 0;
  double scaled = mu;
  while (scaled <= 1.0) {
    scaled *= 2.0;
    ++k;
  }
  if (k > 0) {
    double factor = std::pow(2.0, k);
    for (FeatureId f : candidates) weights_[f] *= factor;
  }

  // Lines 11-17: greedily add candidates until the potential stops
  // exceeding its pre-augmentation value.
  double new_log_potential = LogPotential();
  while (new_log_potential > log_potential_ && !candidates.empty()) {
    // Line 13: pick the candidate minimising surviving universe violators.
    // Counts are exact integers on both engines and the arg-min scan runs
    // serially in candidate order, so both engines pick the same feature.
    std::vector<size_t> counts(candidates.size(), 0);
    if (options_.parallel_conformity) {
      auto score = [&](size_t i) {
        counts[i] = RowBitmap::AndCount(active_bits_, agree_bits_[candidates[i]]);
      };
      if (options_.pool != nullptr) {
        options_.pool->ParallelFor(candidates.size(), score);
      } else {
        for (size_t i = 0; i < candidates.size(); ++i) score(i);
      }
    } else {
      for (size_t i = 0; i < candidates.size(); ++i) {
        const FeatureId f = candidates[i];
        size_t count = 0;
        for (size_t row : active_) {
          if (universe_.value(row, f) == x0_[f]) ++count;
        }
        counts[i] = count;
      }
    }
    FeatureId best_feature = candidates.front();
    size_t best_count = std::numeric_limits<size_t>::max();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (counts[i] < best_count) {
        best_count = counts[i];
        best_feature = candidates[i];
      }
    }
    AddFeatureToKey(best_feature);
    candidates.erase(
        std::remove(candidates.begin(), candidates.end(), best_feature),
        candidates.end());
    new_log_potential = LogPotential();
  }
  log_potential_ = new_log_potential;  // line 17
  return key_;
}

}  // namespace cce
