#ifndef CCE_CORE_SSRK_H_
#define CCE_CORE_SSRK_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/row_bitmap.h"
#include "core/types.h"

namespace cce {

class ThreadPool;

/// Algorithm SSRK (paper Algorithm 3): deterministic online maintenance of
/// alpha-conformant relative keys for instances with *static features*, i.e.
/// a universe U of all instances and their predictions is known offline and
/// only the arrival order is revealed online (paper Section 5.3).
///
/// Keys are coherent (E_t ⊆ E_{t+1}) and (log m · log n)-bounded for
/// alpha = 1 (paper Theorem 6). Offline initialisation costs O(nm); each
/// arrival costs O(nm) worst case.
class Ssrk {
 public:
  struct Options {
    double alpha = 1.0;
    /// Selects the blocked-bitset engine for the universe violator set:
    /// candidate scoring becomes word-AND + popcount over per-feature
    /// agreement bitmaps, and covering a feature is one bitmap AND. The
    /// potential Φ is accumulated in the same fixed-chunk order on both
    /// engines (see LogPotential), so the maintained keys are bit-identical
    /// to the serial path (tests/conformity_parallel_test.cc).
    bool parallel_conformity = false;
    /// Pool sharding candidate scoring and Φ accumulation (not owned). Only
    /// read when parallel_conformity is set; null keeps the bitset engine
    /// serial — still the same keys.
    ThreadPool* pool = nullptr;
  };

  /// Creates a monitor for (x0, y0) with the given universe (instances plus
  /// model predictions). The online context starts empty.
  static Result<std::unique_ptr<Ssrk>> Create(const Dataset& universe,
                                              Instance x0, Label y0,
                                              const Options& options);

  /// Feeds the next arrival (a universe instance) and its prediction;
  /// returns the updated key E_t.
  const FeatureSet& Observe(const Instance& x, Label y);

  const FeatureSet& key() const { return key_; }
  size_t context_size() const { return arrived_; }
  double achieved_alpha() const;
  bool satisfied() const;

  /// Current value of the potential function Φ, in log space. The
  /// competitive analysis (Theorem 6) rests on Φ never increasing across
  /// arrivals; exposed so tests can observe the invariant.
  double log_potential() const { return log_potential_; }

 private:
  Ssrk(const Dataset& universe, Instance x0, Label y0,
       const Options& options);

  bool OverBudget() const;
  void AddFeatureToKey(FeatureId feature);

  /// Aggregated score mu_j = sum of weights of features where the universe
  /// row differs from x0.
  double RowScore(size_t universe_row) const;

  /// log Φ = log Σ_{j ∈ active} m^{2 mu_j}, computed stably (log-sum-exp).
  /// Accumulated over fixed chunks of the ascending active-row list, partial
  /// sums combined in chunk order, on BOTH engines — so the floating-point
  /// rounding sequence (and hence every Φ comparison the greedy makes) is
  /// identical serial vs parallel.
  double LogPotential() const;

  /// The uncovered universe violators, ascending — active_ on the serial
  /// engine, decoded from active_bits_ on the bitset engine.
  std::vector<size_t> ActiveRows() const;

  /// Pool to shard work across, or null when running serial (no pool
  /// configured or parallel_conformity off).
  ThreadPool* shard_pool() const {
    return options_.parallel_conformity ? options_.pool : nullptr;
  }

  Dataset universe_;
  Instance x0_;
  Label y0_;
  Options options_;

  FeatureSet key_;
  std::vector<double> weights_;     // importance weight per feature
  std::vector<size_t> active_;      // uncovered universe violators (set U);
                                    // unused on the bitset engine
  // Bitset engine state (built only when options_.parallel_conformity):
  // agree_bits_[f][row] = (universe[row][f] == x0[f]); active_bits_ is U.
  std::vector<RowBitmap> agree_bits_;
  RowBitmap active_bits_;
  double log_potential_ = 0.0;      // Φ in log space
  double log_m_ = 0.0;

  size_t arrived_ = 0;
  std::vector<Instance> arrived_violators_;
};

}  // namespace cce

#endif  // CCE_CORE_SSRK_H_
