#ifndef CCE_CORE_SSRK_H_
#define CCE_CORE_SSRK_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/types.h"

namespace cce {

/// Algorithm SSRK (paper Algorithm 3): deterministic online maintenance of
/// alpha-conformant relative keys for instances with *static features*, i.e.
/// a universe U of all instances and their predictions is known offline and
/// only the arrival order is revealed online (paper Section 5.3).
///
/// Keys are coherent (E_t ⊆ E_{t+1}) and (log m · log n)-bounded for
/// alpha = 1 (paper Theorem 6). Offline initialisation costs O(nm); each
/// arrival costs O(nm) worst case.
class Ssrk {
 public:
  struct Options {
    double alpha = 1.0;
  };

  /// Creates a monitor for (x0, y0) with the given universe (instances plus
  /// model predictions). The online context starts empty.
  static Result<std::unique_ptr<Ssrk>> Create(const Dataset& universe,
                                              Instance x0, Label y0,
                                              const Options& options);

  /// Feeds the next arrival (a universe instance) and its prediction;
  /// returns the updated key E_t.
  const FeatureSet& Observe(const Instance& x, Label y);

  const FeatureSet& key() const { return key_; }
  size_t context_size() const { return arrived_; }
  double achieved_alpha() const;
  bool satisfied() const;

  /// Current value of the potential function Φ, in log space. The
  /// competitive analysis (Theorem 6) rests on Φ never increasing across
  /// arrivals; exposed so tests can observe the invariant.
  double log_potential() const { return log_potential_; }

 private:
  Ssrk(const Dataset& universe, Instance x0, Label y0,
       const Options& options);

  bool OverBudget() const;
  void AddFeatureToKey(FeatureId feature);

  /// Aggregated score mu_j = sum of weights of features where the universe
  /// row differs from x0.
  double RowScore(size_t universe_row) const;

  /// log Φ = log Σ_{j ∈ active} m^{2 mu_j}, computed stably (log-sum-exp).
  double LogPotential() const;

  Dataset universe_;
  Instance x0_;
  Label y0_;
  Options options_;

  FeatureSet key_;
  std::vector<double> weights_;     // importance weight per feature
  std::vector<size_t> active_;      // uncovered universe violators (set U)
  double log_potential_ = 0.0;      // Φ in log space
  double log_m_ = 0.0;

  size_t arrived_ = 0;
  std::vector<Instance> arrived_violators_;
};

}  // namespace cce

#endif  // CCE_CORE_SSRK_H_
