#include "core/types.h"

#include <algorithm>

namespace cce {

void FeatureSetInsert(FeatureSet* set, FeatureId feature) {
  auto it = std::lower_bound(set->begin(), set->end(), feature);
  if (it == set->end() || *it != feature) set->insert(it, feature);
}

bool FeatureSetContains(const FeatureSet& set, FeatureId feature) {
  return std::binary_search(set.begin(), set.end(), feature);
}

bool FeatureSetIsSubset(const FeatureSet& a, const FeatureSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::string FeatureSetToString(const FeatureSet& set,
                               const std::vector<std::string>& names) {
  std::string out = "{";
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out += ", ";
    if (set[i] < names.size()) {
      out += names[set[i]];
    } else {
      out += "A" + std::to_string(set[i]);
    }
  }
  out += "}";
  return out;
}

}  // namespace cce
