#ifndef CCE_CORE_TYPES_H_
#define CCE_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cce {

/// Index of a feature (attribute) within a Schema.
using FeatureId = uint32_t;

/// Dictionary-encoded feature value. Values are interned per feature, so the
/// same ValueId means different things for different features.
using ValueId = uint32_t;

/// Dictionary-encoded prediction / class label.
using Label = uint32_t;

/// A fully-specified instance: one ValueId per schema feature, in feature
/// order.
using Instance = std::vector<ValueId>;

/// A feature explanation: a set of features, kept sorted and duplicate-free.
/// succinct(E) == size() (paper Section 2).
using FeatureSet = std::vector<FeatureId>;

/// Inserts `feature` into the sorted set `set` if not present.
void FeatureSetInsert(FeatureSet* set, FeatureId feature);

/// True if the sorted set `set` contains `feature`.
bool FeatureSetContains(const FeatureSet& set, FeatureId feature);

/// True if `a` is a subset of `b` (both sorted).
bool FeatureSetIsSubset(const FeatureSet& a, const FeatureSet& b);

/// Renders "{A, B, C}" using the given names (indexes into `names`).
std::string FeatureSetToString(const FeatureSet& set,
                               const std::vector<std::string>& names);

}  // namespace cce

#endif  // CCE_CORE_TYPES_H_
