#include <memory>

#include "data/gen_util.h"
#include "data/generators.h"

namespace cce::data {

using internal_gen::AddBucketed;
using internal_gen::AddCategorical;
using internal_gen::Clamp;
using internal_gen::SampleCategorical;

// Adult mirrors the UCI census-income table: 32,526 rows, 14 features,
// label ">=50K" vs "<50K" driven by education, occupation tier, hours and
// capital gains. `numeric_buckets` rebins the numeric features (Fig. 4d).
Dataset GenerateAdult(const AdultOptions& options) {
  const size_t rows = options.rows == 0 ? 32526 : options.rows;
  auto schema = std::make_shared<Schema>();
  Schema* s = schema.get();

  const FeatureId age_f = AddBucketed(
      s, "Age", Discretizer::EquiWidth(17.0, 80.0, options.numeric_buckets));
  const FeatureId workclass = AddCategorical(
      s, "Workclass",
      {"Private", "SelfEmp", "Gov", "Unemployed"});
  const FeatureId fnlwgt = AddBucketed(
      s, "Fnlwgt", Discretizer::EquiWidth(0.0, 100.0, 8));
  const FeatureId education = AddCategorical(
      s, "Education",
      {"HS", "SomeCollege", "Bachelors", "Masters", "Doctorate", "Dropout"});
  const FeatureId edu_years = AddBucketed(
      s, "EducationYears", Discretizer::EquiWidth(4.0, 20.0, 8));
  const FeatureId marital = AddCategorical(
      s, "MaritalStatus", {"Married", "NeverMarried", "Divorced", "Widowed"});
  const FeatureId occupation = AddCategorical(
      s, "Occupation",
      {"Exec", "Professional", "Clerical", "Service", "Manual", "Sales"});
  const FeatureId relationship = AddCategorical(
      s, "Relationship", {"Husband", "Wife", "OwnChild", "NotInFamily"});
  const FeatureId race = AddCategorical(
      s, "Race", {"White", "Black", "AsianPacific", "Other"});
  const FeatureId sex = AddCategorical(s, "Sex", {"Male", "Female"});
  const FeatureId cap_gain = AddBucketed(
      s, "CapitalGain",
      Discretizer::EquiWidth(0.0, 20.0, options.numeric_buckets));
  const FeatureId cap_loss = AddBucketed(
      s, "CapitalLoss", Discretizer::EquiWidth(0.0, 5.0, 5));
  const FeatureId hours = AddBucketed(
      s, "HoursPerWeek",
      Discretizer::EquiWidth(0.0, 80.0, options.numeric_buckets));
  const FeatureId country = AddCategorical(
      s, "NativeCountry", {"US", "Mexico", "Philippines", "Germany", "Other"});

  const Label low = s->InternLabel("<50K");
  const Label high = s->InternLabel(">=50K");
  (void)low;

  Dataset dataset(schema);
  Rng rng(options.seed);
  const Discretizer age_buckets =
      Discretizer::EquiWidth(17.0, 80.0, options.numeric_buckets);
  const Discretizer gain_buckets =
      Discretizer::EquiWidth(0.0, 20.0, options.numeric_buckets);
  const Discretizer hours_buckets =
      Discretizer::EquiWidth(0.0, 80.0, options.numeric_buckets);
  const Discretizer loss_buckets = Discretizer::EquiWidth(0.0, 5.0, 5);
  const Discretizer fnlwgt_buckets = Discretizer::EquiWidth(0.0, 100.0, 8);
  const Discretizer edu_buckets = Discretizer::EquiWidth(4.0, 20.0, 8);

  for (size_t i = 0; i < rows; ++i) {
    Instance x(s->num_features());

    // Latent skill level drives education, occupation tier and earnings.
    const double skill = Clamp(rng.Normal() * 1.0 + 1.6, 0.0, 4.0);
    const double age_value = Clamp(rng.Normal() * 13.0 + 40.0, 17.0, 79.0);

    x[age_f] = age_buckets.Bucket(age_value);
    x[workclass] = SampleCategorical({0.7, 0.1, 0.15, 0.05}, &rng);
    x[fnlwgt] = fnlwgt_buckets.Bucket(Clamp(
        rng.Normal() * 20.0 + 50.0, 0.0, 99.0));

    // Education level from skill; Dropout < HS < SomeCollege < ... mapping
    // into the categorical ids defined above.
    ValueId edu;
    if (skill < 0.7) {
      edu = 5;  // Dropout
    } else if (skill < 1.5) {
      edu = 0;  // HS
    } else if (skill < 2.2) {
      edu = 1;  // SomeCollege
    } else if (skill < 2.9) {
      edu = 2;  // Bachelors
    } else if (skill < 3.5) {
      edu = 3;  // Masters
    } else {
      edu = 4;  // Doctorate
    }
    x[education] = edu;
    const double edu_years_value =
        Clamp(6.0 + skill * 3.2 + rng.Normal() * 1.0, 4.0, 19.9);
    x[edu_years] = edu_buckets.Bucket(edu_years_value);

    x[marital] = SampleCategorical({0.48, 0.32, 0.14, 0.06}, &rng);
    const std::vector<double> occ_weights =
        skill > 2.2 ? std::vector<double>{0.3, 0.35, 0.1, 0.05, 0.05, 0.15}
                    : std::vector<double>{0.05, 0.08, 0.22, 0.25, 0.3, 0.1};
    x[occupation] = SampleCategorical(occ_weights, &rng);
    x[sex] = rng.Bernoulli(0.67) ? 0u : 1u;
    if (x[marital] == 0) {
      x[relationship] = x[sex] == 0 ? 0u : 1u;  // Husband / Wife
    } else {
      x[relationship] = rng.Bernoulli(0.3) ? 2u : 3u;
    }
    x[race] = SampleCategorical({0.85, 0.09, 0.03, 0.03}, &rng);

    const double gain_value =
        rng.Bernoulli(0.08 + 0.06 * (skill > 2.5))
            ? Clamp(rng.Normal() * 5.0 + 8.0, 0.0, 19.9)
            : 0.0;
    x[cap_gain] = gain_buckets.Bucket(gain_value);
    const double loss_value =
        rng.Bernoulli(0.05) ? Clamp(rng.Normal() * 1.0 + 2.0, 0.0, 4.9)
                            : 0.0;
    x[cap_loss] = loss_buckets.Bucket(loss_value);

    const double hours_value = Clamp(
        40.0 + (skill - 1.5) * 4.0 + rng.Normal() * 9.0, 1.0, 79.0);
    x[hours] = hours_buckets.Bucket(hours_value);
    x[country] = SampleCategorical({0.9, 0.03, 0.02, 0.01, 0.04}, &rng);

    // Earnings score: education, executive/professional occupation,
    // mid-career age, long hours, capital gains, marriage premium.
    double score = -3.4;
    score += skill * 1.1;
    score += (x[occupation] <= 1) ? 0.8 : 0.0;
    score += Clamp((age_value - 25.0) / 18.0, 0.0, 1.2);
    score += (hours_value - 40.0) / 35.0;
    score += gain_value > 0.0 ? 1.6 : 0.0;
    score += x[marital] == 0 ? 0.7 : 0.0;
    bool rich = score + rng.Normal() * 0.6 > 0.0;
    if (rng.Bernoulli(options.label_noise)) rich = !rich;

    dataset.Add(std::move(x), rich ? high : 0u);
  }
  return dataset;
}

}  // namespace cce::data
