#include <memory>

#include "data/gen_util.h"
#include "data/generators.h"

namespace cce::data {

using internal_gen::AddBucketed;
using internal_gen::AddCategorical;
using internal_gen::Clamp;
using internal_gen::SampleCategorical;

// Compas mirrors the ProPublica COMPAS table: 6,172 defendants, 11
// features, binary high/low recidivism-risk score driven by priors, age and
// juvenile history.
Dataset GenerateCompas(const GeneratorOptions& options) {
  const size_t rows = options.rows == 0 ? 6172 : options.rows;
  auto schema = std::make_shared<Schema>();
  Schema* s = schema.get();

  const FeatureId sex = AddCategorical(s, "Sex", {"Male", "Female"});
  const Discretizer age_b = Discretizer::EquiWidth(18.0, 70.0, 8);
  const FeatureId age = AddBucketed(s, "Age", age_b);
  const FeatureId age_cat = AddCategorical(
      s, "AgeCategory", {"<25", "25-45", ">45"});
  const FeatureId race = AddCategorical(
      s, "Race",
      {"AfricanAmerican", "Caucasian", "Hispanic", "Asian", "Other"});
  const FeatureId juv_fel = AddCategorical(
      s, "JuvFelonyCount", {"0", "1", "2+"});
  const FeatureId juv_misd = AddCategorical(
      s, "JuvMisdemeanorCount", {"0", "1", "2+"});
  const FeatureId juv_other = AddCategorical(
      s, "JuvOtherCount", {"0", "1", "2+"});
  const Discretizer priors_b = Discretizer::EquiWidth(0.0, 30.0, 8);
  const FeatureId priors = AddBucketed(s, "PriorsCount", priors_b);
  const FeatureId charge_degree = AddCategorical(
      s, "ChargeDegree", {"Felony", "Misdemeanor"});
  const FeatureId charge_cat = AddCategorical(
      s, "ChargeCategory",
      {"drug", "assault", "theft", "weapons", "traffic", "other"});
  const Discretizer days_b = Discretizer::EquiWidth(-30.0, 30.0, 6);
  const FeatureId days_screening =
      AddBucketed(s, "DaysBeforeScreening", days_b);

  const Label low = s->InternLabel("LowRisk");
  const Label high = s->InternLabel("HighRisk");
  (void)low;

  Dataset dataset(schema);
  Rng rng(options.seed);

  for (size_t i = 0; i < rows; ++i) {
    Instance x(s->num_features());

    const double criminality = Clamp(rng.Normal() * 1.0 + 1.0, 0.0, 3.5);
    const double age_value = Clamp(rng.Normal() * 11.0 + 33.0, 18.0, 69.0);

    x[sex] = rng.Bernoulli(0.8) ? 0u : 1u;
    x[age] = age_b.Bucket(age_value);
    x[age_cat] = age_value < 25.0 ? 0u : (age_value <= 45.0 ? 1u : 2u);
    x[race] = SampleCategorical({0.51, 0.34, 0.08, 0.01, 0.06}, &rng);

    auto juvenile_bucket = [&](double rate) -> ValueId {
      double v = criminality * rate + rng.Normal() * 0.3;
      if (v < 0.7) return 0;
      if (v < 1.4) return 1;
      return 2;
    };
    x[juv_fel] = juvenile_bucket(0.35);
    x[juv_misd] = juvenile_bucket(0.45);
    x[juv_other] = juvenile_bucket(0.4);

    const double priors_value =
        Clamp(criminality * 5.0 + rng.Normal() * 3.0, 0.0, 29.0);
    x[priors] = priors_b.Bucket(priors_value);
    x[charge_degree] = rng.Bernoulli(0.64 - 0.1 * (criminality < 0.8))
                           ? 0u
                           : 1u;
    x[charge_cat] = SampleCategorical(
        {0.25, 0.22, 0.2, 0.08, 0.1, 0.15}, &rng);
    x[days_screening] = days_b.Bucket(Clamp(rng.Normal() * 6.0, -29.0, 29.0));

    // COMPAS-like decile logic: priors and youth dominate.
    double score = 0.0;
    score += priors_value / 8.0;
    score += age_value < 25.0 ? 1.0 : (age_value > 45.0 ? -0.7 : 0.0);
    score += (x[juv_fel] > 0 ? 0.8 : 0.0) + (x[juv_misd] > 0 ? 0.4 : 0.0);
    score += x[charge_degree] == 0 ? 0.3 : 0.0;
    bool high_risk = score + rng.Normal() * 0.5 > 1.1;
    if (rng.Bernoulli(options.label_noise)) high_risk = !high_risk;

    dataset.Add(std::move(x), high_risk ? high : 0u);
  }
  return dataset;
}

}  // namespace cce::data
