#include "data/drift.h"

#include <algorithm>

#include "common/logging.h"

namespace cce::data {

Dataset InjectTailNoise(const Dataset& dataset, double tail_fraction,
                        double noise_rate, Rng* rng) {
  CCE_CHECK(tail_fraction >= 0.0 && tail_fraction <= 1.0);
  CCE_CHECK(noise_rate >= 0.0 && noise_rate <= 1.0);
  Dataset noisy(dataset.schema_ptr());
  const size_t tail_start = static_cast<size_t>(
      (1.0 - tail_fraction) * static_cast<double>(dataset.size()));
  for (size_t row = 0; row < dataset.size(); ++row) {
    Instance x = dataset.instance(row);
    if (row >= tail_start) {
      for (FeatureId f = 0; f < x.size(); ++f) {
        if (!rng->Bernoulli(noise_rate)) continue;
        size_t domain = dataset.schema().DomainSize(f);
        if (domain > 0) {
          x[f] = static_cast<ValueId>(rng->Uniform(domain));
        }
      }
    }
    noisy.Add(std::move(x), dataset.label(row));
  }
  return noisy;
}

std::vector<Dataset> SplitPhases(const Dataset& dataset, size_t phases) {
  CCE_CHECK(phases > 0);
  std::vector<Dataset> out;
  const size_t per_phase = dataset.size() / phases;
  size_t start = 0;
  for (size_t p = 0; p < phases; ++p) {
    size_t end = (p + 1 == phases) ? dataset.size() : start + per_phase;
    std::vector<size_t> rows;
    rows.reserve(end - start);
    for (size_t row = start; row < end; ++row) rows.push_back(row);
    out.push_back(dataset.Subset(rows));
    start = end;
  }
  return out;
}

}  // namespace cce::data
