#ifndef CCE_DATA_DRIFT_H_
#define CCE_DATA_DRIFT_H_

#include <vector>

#include "common/random.h"
#include "core/dataset.h"

namespace cce::data {

/// Utilities for the dynamic-context experiments (paper Sections 7.4 and
/// Appendix B Exp-4).

/// Returns a copy of `dataset` whose last `tail_fraction` of rows have their
/// feature values perturbed at random (each feature resampled uniformly from
/// its domain with probability `noise_rate`). Labels are untouched, so a
/// model trained on the clean distribution loses accuracy on the tail — the
/// "noise version" of Figures 3l/3m.
Dataset InjectTailNoise(const Dataset& dataset, double tail_fraction,
                        double noise_rate, Rng* rng);

/// Splits `dataset` into `phases` contiguous, equally-sized pieces — the
/// 5-phase dynamic-model protocol of Appendix B Exp-4.
std::vector<Dataset> SplitPhases(const Dataset& dataset, size_t phases);

}  // namespace cce::data

#endif  // CCE_DATA_DRIFT_H_
