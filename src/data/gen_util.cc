#include "data/gen_util.h"

#include <algorithm>

namespace cce::data::internal_gen {

FeatureId AddCategorical(Schema* schema, const std::string& name,
                         const std::vector<std::string>& values) {
  FeatureId id = schema->AddFeature(name);
  for (const std::string& value : values) schema->InternValue(id, value);
  return id;
}

FeatureId AddBucketed(Schema* schema, const std::string& name,
                      const Discretizer& discretizer) {
  FeatureId id = schema->AddFeature(name);
  for (ValueId b = 0; b < discretizer.num_buckets(); ++b) {
    schema->InternValue(id, discretizer.BucketName(b));
  }
  return id;
}

ValueId SampleCategorical(const std::vector<double>& weights, Rng* rng) {
  return static_cast<ValueId>(rng->Categorical(weights));
}

double Clamp(double v, double lo, double hi) {
  return std::clamp(v, lo, hi);
}

}  // namespace cce::data::internal_gen
