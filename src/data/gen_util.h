#ifndef CCE_DATA_GEN_UTIL_H_
#define CCE_DATA_GEN_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/discretizer.h"
#include "core/schema.h"
#include "core/types.h"

namespace cce::data {

/// Helpers shared by the synthetic dataset generators. Each generator
/// produces instances whose features are noisy views of a few latent
/// factors, so features carry realistic associations (the paper's benefit
/// (b): relative keys exploit such associations), and labels follow a
/// hand-designed decision function plus label noise.
namespace internal_gen {

/// Declares a categorical feature and interns its values; returns the id.
FeatureId AddCategorical(Schema* schema, const std::string& name,
                         const std::vector<std::string>& values);

/// Declares a bucketed numeric feature; interns all bucket names in order so
/// ValueId == bucket index (ordinal semantics for tree splits).
FeatureId AddBucketed(Schema* schema, const std::string& name,
                      const Discretizer& discretizer);

/// Samples a value index given per-value weights.
ValueId SampleCategorical(const std::vector<double>& weights, Rng* rng);

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

}  // namespace internal_gen
}  // namespace cce::data

#endif  // CCE_DATA_GEN_UTIL_H_
