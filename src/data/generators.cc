#include "data/generators.h"

namespace cce::data {

const std::vector<std::string>& GeneralDatasetNames() {
  static const std::vector<std::string>* kNames =
      new std::vector<std::string>{"Adult", "German", "Compas", "Loan",
                                   "Recid"};
  return *kNames;
}

Result<Dataset> GenerateByName(const std::string& name, uint64_t seed,
                               size_t rows) {
  if (name == "Adult") {
    AdultOptions options;
    options.seed = seed;
    options.rows = rows;
    return GenerateAdult(options);
  }
  if (name == "German") {
    GeneratorOptions options;
    options.seed = seed;
    options.rows = rows;
    return GenerateGerman(options);
  }
  if (name == "Compas") {
    GeneratorOptions options;
    options.seed = seed;
    options.rows = rows;
    return GenerateCompas(options);
  }
  if (name == "Loan") {
    LoanOptions options;
    options.seed = seed;
    options.rows = rows;
    return GenerateLoan(options);
  }
  if (name == "Recid") {
    GeneratorOptions options;
    options.seed = seed;
    options.rows = rows;
    return GenerateRecid(options);
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

}  // namespace cce::data
