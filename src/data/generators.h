#ifndef CCE_DATA_GENERATORS_H_
#define CCE_DATA_GENERATORS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace cce::data {

/// Synthetic stand-ins for the paper's five general-ML evaluation datasets
/// (Table 1). Row/feature counts match the paper; feature domains, latent
/// correlations, and labelling functions are hand-designed so the
/// combinatorial structure the algorithms exercise is realistic. See
/// DESIGN.md §1 for the substitution rationale.

struct GeneratorOptions {
  size_t rows = 0;        // 0 = the paper's row count for that dataset
  uint64_t seed = 1;
  double label_noise = 0.04;  // fraction of labels flipped at random
};

/// Loan [4]: 614 x 11, predict loan approval. `loan_amount_buckets` is the
/// #-bucket knob of Figures 3h/3i.
struct LoanOptions : GeneratorOptions {
  int loan_amount_buckets = 10;
};
Dataset GenerateLoan(const LoanOptions& options);

/// Adult [52]: 32,526 x 14, predict income >= 50K. `numeric_buckets` rebins
/// the age/hours/capital features (Fig. 4d knob).
struct AdultOptions : GeneratorOptions {
  int numeric_buckets = 10;
};
Dataset GenerateAdult(const AdultOptions& options);

/// German [35]: 1,000 x 21, classify credit risk.
Dataset GenerateGerman(const GeneratorOptions& options);

/// Compas [2]: 6,172 x 11, COMPAS-style recidivism risk.
Dataset GenerateCompas(const GeneratorOptions& options);

/// Recid [86]: 6,340 x 15, North-Carolina recidivism.
Dataset GenerateRecid(const GeneratorOptions& options);

/// Names of the five general-ML datasets, in the paper's order.
const std::vector<std::string>& GeneralDatasetNames();

/// Generates a dataset by its paper name ("Adult", "German", "Compas",
/// "Loan", "Recid"); NotFound otherwise. `rows` = 0 keeps the paper size.
Result<Dataset> GenerateByName(const std::string& name, uint64_t seed,
                               size_t rows = 0);

}  // namespace cce::data

#endif  // CCE_DATA_GENERATORS_H_
