#include <memory>

#include "data/gen_util.h"
#include "data/generators.h"

namespace cce::data {

using internal_gen::AddBucketed;
using internal_gen::AddCategorical;
using internal_gen::Clamp;
using internal_gen::SampleCategorical;

// German mirrors the Statlog German-credit table: 1,000 applicants, 21
// features, good/bad credit classification dominated by checking-account
// status, credit history, duration and amount.
Dataset GenerateGerman(const GeneratorOptions& options) {
  const size_t rows = options.rows == 0 ? 1000 : options.rows;
  auto schema = std::make_shared<Schema>();
  Schema* s = schema.get();

  const FeatureId checking = AddCategorical(
      s, "CheckingStatus", {"<0", "0-200", ">=200", "none"});
  const Discretizer duration_b = Discretizer::EquiWidth(4.0, 72.0, 8);
  const FeatureId duration = AddBucketed(s, "DurationMonths", duration_b);
  const FeatureId history = AddCategorical(
      s, "CreditHistory",
      {"critical", "delayed", "existing-paid", "all-paid", "no-credits"});
  const FeatureId purpose = AddCategorical(
      s, "Purpose",
      {"car-new", "car-used", "furniture", "tv", "appliance", "repairs",
       "education", "business", "other"});
  const Discretizer amount_b = Discretizer::EquiWidth(0.0, 20.0, 10);
  const FeatureId amount = AddBucketed(s, "CreditAmount", amount_b);
  const FeatureId savings = AddCategorical(
      s, "Savings", {"<100", "100-500", "500-1000", ">=1000", "unknown"});
  const FeatureId employment = AddCategorical(
      s, "EmploymentSince", {"unemployed", "<1y", "1-4y", "4-7y", ">=7y"});
  const FeatureId installment = AddCategorical(
      s, "InstallmentRate", {"1", "2", "3", "4"});
  const FeatureId personal = AddCategorical(
      s, "PersonalStatus",
      {"male-single", "male-married", "female", "male-divorced"});
  const FeatureId debtors = AddCategorical(
      s, "OtherDebtors", {"none", "co-applicant", "guarantor"});
  const FeatureId residence = AddCategorical(
      s, "ResidenceSince", {"1", "2", "3", "4"});
  const FeatureId property = AddCategorical(
      s, "Property", {"real-estate", "insurance", "car", "none"});
  const Discretizer age_b = Discretizer::EquiWidth(18.0, 75.0, 8);
  const FeatureId age = AddBucketed(s, "Age", age_b);
  const FeatureId other_plans = AddCategorical(
      s, "OtherInstallmentPlans", {"bank", "stores", "none"});
  const FeatureId housing = AddCategorical(
      s, "Housing", {"rent", "own", "free"});
  const FeatureId existing = AddCategorical(
      s, "ExistingCredits", {"1", "2", "3", "4"});
  const FeatureId job = AddCategorical(
      s, "Job", {"unskilled", "skilled", "management", "self-employed"});
  const FeatureId dependents = AddCategorical(
      s, "NumDependents", {"1", "2"});
  const FeatureId telephone = AddCategorical(
      s, "Telephone", {"none", "yes"});
  const FeatureId foreign = AddCategorical(
      s, "ForeignWorker", {"yes", "no"});
  const FeatureId guarantee = AddCategorical(
      s, "StateGuarantee", {"no", "yes"});

  const Label good = s->InternLabel("good");
  const Label bad = s->InternLabel("bad");
  (void)good;

  Dataset dataset(schema);
  Rng rng(options.seed);

  for (size_t i = 0; i < rows; ++i) {
    Instance x(s->num_features());

    // Latent solvency drives checking/savings status and history.
    const double solvency = Clamp(rng.Normal() * 1.0 + 1.4, 0.0, 3.5);

    x[checking] = solvency > 2.0
                      ? SampleCategorical({0.05, 0.2, 0.35, 0.4}, &rng)
                      : SampleCategorical({0.4, 0.3, 0.1, 0.2}, &rng);
    const double duration_value =
        Clamp(rng.Normal() * 13.0 + 22.0, 4.0, 71.0);
    x[duration] = duration_b.Bucket(duration_value);
    x[history] = solvency > 1.6
                     ? SampleCategorical({0.1, 0.1, 0.45, 0.25, 0.1}, &rng)
                     : SampleCategorical({0.35, 0.25, 0.3, 0.05, 0.05}, &rng);
    x[purpose] = SampleCategorical(
        {0.2, 0.1, 0.18, 0.22, 0.05, 0.05, 0.06, 0.1, 0.04}, &rng);
    const double amount_value =
        Clamp(duration_value * 0.25 + rng.Normal() * 2.5 + 1.0, 0.2, 19.8);
    x[amount] = amount_b.Bucket(amount_value);
    x[savings] = solvency > 1.8
                     ? SampleCategorical({0.15, 0.2, 0.2, 0.3, 0.15}, &rng)
                     : SampleCategorical({0.55, 0.2, 0.08, 0.04, 0.13}, &rng);
    x[employment] = SampleCategorical({0.06, 0.17, 0.34, 0.17, 0.26}, &rng);
    x[installment] = SampleCategorical({0.14, 0.23, 0.16, 0.47}, &rng);
    x[personal] = SampleCategorical({0.55, 0.09, 0.31, 0.05}, &rng);
    x[debtors] = SampleCategorical({0.91, 0.04, 0.05}, &rng);
    x[residence] = SampleCategorical({0.13, 0.31, 0.15, 0.41}, &rng);
    x[property] = solvency > 1.5
                      ? SampleCategorical({0.4, 0.25, 0.25, 0.1}, &rng)
                      : SampleCategorical({0.15, 0.2, 0.35, 0.3}, &rng);
    const double age_value = Clamp(rng.Normal() * 11.0 + 35.0, 18.0, 74.0);
    x[age] = age_b.Bucket(age_value);
    x[other_plans] = SampleCategorical({0.14, 0.05, 0.81}, &rng);
    x[housing] = SampleCategorical({0.18, 0.71, 0.11}, &rng);
    x[existing] = SampleCategorical({0.63, 0.33, 0.03, 0.01}, &rng);
    x[job] = SampleCategorical({0.2, 0.63, 0.1, 0.07}, &rng);
    x[dependents] = rng.Bernoulli(0.85) ? 0u : 1u;
    x[telephone] = rng.Bernoulli(0.6) ? 0u : 1u;
    x[foreign] = rng.Bernoulli(0.96) ? 0u : 1u;
    x[guarantee] = rng.Bernoulli(0.07) ? 1u : 0u;

    // Risk score: weak checking/savings, critical history, long duration and
    // large amounts are bad; guarantees and employment tenure help.
    double risk = 0.0;
    risk += (x[checking] == 0) ? 1.1 : (x[checking] == 3 ? -0.8 : 0.0);
    risk += (x[history] == 0) ? 1.0 : (x[history] >= 2 ? -0.5 : 0.3);
    risk += duration_value / 30.0;
    risk += amount_value / 10.0;
    risk += (x[savings] == 0) ? 0.5 : (x[savings] == 3 ? -0.5 : 0.0);
    risk += (x[employment] == 0) ? 0.6 : (x[employment] == 4 ? -0.4 : 0.0);
    risk += (x[debtors] == 2 || x[guarantee] == 1) ? -0.7 : 0.0;
    risk += age_value < 25.0 ? 0.4 : 0.0;
    bool is_bad = risk + rng.Normal() * 0.55 > 1.6;
    if (rng.Bernoulli(options.label_noise)) is_bad = !is_bad;

    dataset.Add(std::move(x), is_bad ? bad : 0u);
  }
  return dataset;
}

}  // namespace cce::data
