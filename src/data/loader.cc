#include "data/loader.h"

#include <charconv>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/string_util.h"
#include "core/discretizer.h"

namespace cce::data {
namespace {

bool ParseNumber(std::string_view text, double* out) {
  text = Trim(text);
  if (text.empty()) return false;
  // std::from_chars<double> is available in libstdc++ >= 11.
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

Result<Dataset> LoadCsvDataset(const CsvTable& table,
                               const LoadOptions& options) {
  if (options.label_column.empty()) {
    return Status::InvalidArgument("label_column must be set");
  }
  int label_index = table.ColumnIndex(options.label_column);
  if (label_index < 0) {
    return Status::NotFound("label column '" + options.label_column +
                            "' not in CSV header");
  }
  if (table.rows.empty()) {
    return Status::InvalidArgument("CSV has no data rows");
  }
  if (options.numeric_buckets < 1) {
    return Status::InvalidArgument("numeric_buckets must be >= 1");
  }

  const size_t num_columns = table.header.size();
  // Pass 1: decide per-column typing and numeric ranges.
  std::vector<bool> is_numeric(num_columns, true);
  std::vector<double> lo(num_columns,
                         std::numeric_limits<double>::infinity());
  std::vector<double> hi(num_columns,
                         -std::numeric_limits<double>::infinity());
  for (const auto& row : table.rows) {
    for (size_t c = 0; c < num_columns; ++c) {
      if (static_cast<int>(c) == label_index || !is_numeric[c]) continue;
      const std::string& cell = row[c];
      if (Trim(cell) == options.missing_marker) continue;
      double value;
      if (!ParseNumber(cell, &value)) {
        is_numeric[c] = false;
      } else {
        lo[c] = std::min(lo[c], value);
        hi[c] = std::max(hi[c], value);
      }
    }
  }

  auto schema = std::make_shared<Schema>();
  std::vector<FeatureId> feature_of_column(num_columns, 0);
  std::vector<std::unique_ptr<Discretizer>> discretizers(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    if (static_cast<int>(c) == label_index) continue;
    FeatureId f = schema->AddFeature(table.header[c]);
    feature_of_column[c] = f;
    if (is_numeric[c] && lo[c] < hi[c]) {
      discretizers[c] = std::make_unique<Discretizer>(
          Discretizer::EquiWidth(lo[c], hi[c] + 1e-9,
                                 options.numeric_buckets));
      for (ValueId b = 0; b < discretizers[c]->num_buckets(); ++b) {
        schema->InternValue(f, discretizers[c]->BucketName(b));
      }
      schema->InternValue(f, options.missing_marker);
    }
  }

  // Pass 2: encode rows.
  Dataset dataset(schema);
  for (const auto& row : table.rows) {
    Instance x(schema->num_features());
    for (size_t c = 0; c < num_columns; ++c) {
      if (static_cast<int>(c) == label_index) continue;
      FeatureId f = feature_of_column[c];
      std::string cell(Trim(row[c]));
      if (discretizers[c] != nullptr) {
        double value;
        if (cell == options.missing_marker || !ParseNumber(cell, &value)) {
          x[f] = *schema->LookupValue(f, options.missing_marker);
        } else {
          x[f] = discretizers[c]->Bucket(value);
        }
      } else {
        x[f] = schema->InternValue(f, cell);
      }
    }
    Label y = schema->InternLabel(std::string(Trim(row[label_index])));
    dataset.Add(std::move(x), y);
  }
  return dataset;
}

Result<Dataset> LoadCsvDatasetFromFile(const std::string& path,
                                       const LoadOptions& options) {
  Result<CsvTable> table = ReadCsvFile(path);
  if (!table.ok()) return table.status();
  return LoadCsvDataset(*table, options);
}

}  // namespace cce::data
