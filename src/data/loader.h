#ifndef CCE_DATA_LOADER_H_
#define CCE_DATA_LOADER_H_

#include <string>

#include "common/csv.h"
#include "common/status.h"
#include "core/dataset.h"

namespace cce::data {

/// Loads real-world CSV data into the library's discrete representation, so
/// users with the original UCI/Kaggle files can run every experiment on
/// them. Columns whose values all parse as numbers are bucketed; the rest
/// are treated as categoricals.
struct LoadOptions {
  /// Name of the label column (required; every other column is a feature).
  std::string label_column;

  /// Equi-width bucket count for auto-detected numeric columns.
  int numeric_buckets = 10;

  /// Values treated as missing; they intern as the literal "?" category.
  std::string missing_marker = "?";
};

/// Converts a parsed CSV table into a Dataset.
Result<Dataset> LoadCsvDataset(const CsvTable& table,
                               const LoadOptions& options);

/// Reads a CSV file and converts it.
Result<Dataset> LoadCsvDatasetFromFile(const std::string& path,
                                       const LoadOptions& options);

}  // namespace cce::data

#endif  // CCE_DATA_LOADER_H_
