#include <memory>

#include "data/gen_util.h"
#include "data/generators.h"

namespace cce::data {

using internal_gen::AddBucketed;
using internal_gen::AddCategorical;
using internal_gen::Clamp;
using internal_gen::SampleCategorical;

// Loan mirrors the Kaggle loan-eligibility table used throughout the paper's
// case study (Figures 1-2, Table 3): 614 applications, 11 features,
// Approved/Denied outcome driven chiefly by credit history and the
// income-to-obligation ratio.
Dataset GenerateLoan(const LoanOptions& options) {
  const size_t rows = options.rows == 0 ? 614 : options.rows;
  auto schema = std::make_shared<Schema>();

  const FeatureId gender =
      AddCategorical(schema.get(), "Gender", {"Male", "Female"});
  const FeatureId married =
      AddCategorical(schema.get(), "Married", {"No", "Yes"});
  const FeatureId dependents =
      AddCategorical(schema.get(), "Dependents", {"0", "1", "2", "3+"});
  const FeatureId education = AddCategorical(schema.get(), "Education",
                                             {"Graduate", "NotGraduate"});
  const FeatureId self_employed =
      AddCategorical(schema.get(), "SelfEmployed", {"No", "Yes"});

  const Discretizer income_buckets = Discretizer::EquiWidth(0.0, 10.0, 10);
  const FeatureId income =
      AddBucketed(schema.get(), "Income", income_buckets);
  const Discretizer coincome_buckets = Discretizer::EquiWidth(0.0, 6.0, 6);
  const FeatureId coincome =
      AddBucketed(schema.get(), "CoIncome", coincome_buckets);

  const FeatureId credit =
      AddCategorical(schema.get(), "Credit", {"good", "poor"});

  const Discretizer amount_buckets =
      Discretizer::EquiWidth(0.0, 20.0, options.loan_amount_buckets);
  const FeatureId loan_amount =
      AddBucketed(schema.get(), "LoanAmount", amount_buckets);

  const FeatureId loan_term = AddCategorical(
      schema.get(), "LoanTerm", {"120", "180", "240", "360"});
  const FeatureId area = AddCategorical(schema.get(), "Area",
                                        {"Urban", "Semiurban", "Rural"});

  Schema* s = schema.get();
  const Label denied = s->InternLabel("Denied");
  const Label approved = s->InternLabel("Approved");
  (void)denied;

  Dataset dataset(schema);
  Rng rng(options.seed);

  for (size_t i = 0; i < rows; ++i) {
    Instance x(s->num_features());

    // Latent affluence correlates education, incomes, and loan size — the
    // kind of feature association relative keys exploit.
    const double affluence = Clamp(rng.Normal() * 0.9 + 1.8, 0.0, 4.0);

    x[gender] = rng.Bernoulli(0.81) ? 0u : 1u;
    x[married] = rng.Bernoulli(0.65) ? 1u : 0u;
    const double dependents_mean = x[married] == 1 ? 1.2 : 0.4;
    x[dependents] = static_cast<ValueId>(
        Clamp(rng.Normal() * 0.9 + dependents_mean, 0.0, 3.0));
    x[education] = rng.Bernoulli(0.22 + 0.12 * (affluence < 1.2)) ? 1u : 0u;
    x[self_employed] = rng.Bernoulli(0.14) ? 1u : 0u;

    const double income_value =
        Clamp(affluence * 2.2 + rng.Normal() * 1.1, 0.2, 9.9);
    x[income] = income_buckets.Bucket(income_value);
    const double coincome_value =
        x[married] == 1 ? Clamp(affluence * 0.9 + rng.Normal() * 0.8, 0.0,
                                5.9)
                        : Clamp(rng.Normal() * 0.4 + 0.2, 0.0, 5.9);
    x[coincome] = coincome_buckets.Bucket(coincome_value);

    const bool good_credit = rng.Bernoulli(0.78 + 0.04 * (affluence > 2.0));
    x[credit] = good_credit ? 0u : 1u;

    const double amount_value =
        Clamp(affluence * 3.6 + rng.Normal() * 2.8 + 2.0, 0.2, 19.8);
    x[loan_amount] = amount_buckets.Bucket(amount_value);
    x[loan_term] = SampleCategorical({0.1, 0.15, 0.15, 0.6}, &rng);
    x[area] = SampleCategorical({0.45, 0.3, 0.25}, &rng);

    // Decision rule: good credit plus enough household income relative to
    // the amortised obligation; small extra slack for longer terms.
    const double term_months = 120.0 + 60.0 * x[loan_term] +
                               (x[loan_term] == 3 ? 60.0 : 0.0);
    const double obligation = amount_value / (term_months / 360.0);
    const double capacity = income_value + 0.8 * coincome_value;
    bool approve = good_credit && capacity >= obligation * 0.55 + 1.0;
    if (rng.Bernoulli(options.label_noise)) approve = !approve;

    dataset.Add(std::move(x), approve ? approved : 0u);
  }
  return dataset;
}

}  // namespace cce::data
