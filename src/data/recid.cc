#include <memory>

#include "data/gen_util.h"
#include "data/generators.h"

namespace cce::data {

using internal_gen::AddBucketed;
using internal_gen::AddCategorical;
using internal_gen::Clamp;
using internal_gen::SampleCategorical;

// Recid mirrors the North-Carolina prison-release study [86]: 6,340
// individuals, 15 features, predict recidivism after release.
Dataset GenerateRecid(const GeneratorOptions& options) {
  const size_t rows = options.rows == 0 ? 6340 : options.rows;
  auto schema = std::make_shared<Schema>();
  Schema* s = schema.get();

  const Discretizer age_b = Discretizer::EquiWidth(16.0, 70.0, 8);
  const FeatureId age = AddBucketed(s, "AgeAtRelease", age_b);
  const FeatureId sex = AddCategorical(s, "Sex", {"Male", "Female"});
  const FeatureId race = AddCategorical(s, "Race", {"Black", "White",
                                                    "Other"});
  const Discretizer time_b = Discretizer::EquiWidth(0.0, 120.0, 8);
  const FeatureId time_served = AddBucketed(s, "MonthsServed", time_b);
  const Discretizer rule_b = Discretizer::EquiWidth(0.0, 30.0, 6);
  const FeatureId rule_violations =
      AddBucketed(s, "PrisonRuleViolations", rule_b);
  const Discretizer convictions_b = Discretizer::EquiWidth(0.0, 20.0, 6);
  const FeatureId prior_convictions =
      AddBucketed(s, "PriorConvictions", convictions_b);
  const FeatureId felony = AddCategorical(s, "FelonyOffense", {"No", "Yes"});
  const FeatureId property_crime =
      AddCategorical(s, "PropertyOffense", {"No", "Yes"});
  const FeatureId person_crime =
      AddCategorical(s, "PersonOffense", {"No", "Yes"});
  const FeatureId alcohol = AddCategorical(s, "AlcoholAbuse", {"No", "Yes"});
  const FeatureId drugs = AddCategorical(s, "DrugAbuse", {"No", "Yes"});
  const FeatureId married = AddCategorical(s, "Married", {"No", "Yes"});
  const Discretizer school_b = Discretizer::EquiWidth(0.0, 16.0, 6);
  const FeatureId school_years = AddBucketed(s, "SchoolYears", school_b);
  const FeatureId supervised = AddCategorical(
      s, "SupervisedRelease", {"No", "Yes"});
  const FeatureId work_release = AddCategorical(
      s, "WorkReleaseProgram", {"No", "Yes"});

  const Label no_recid = s->InternLabel("NoRecidivism");
  const Label recid = s->InternLabel("Recidivism");
  (void)no_recid;

  Dataset dataset(schema);
  Rng rng(options.seed);

  for (size_t i = 0; i < rows; ++i) {
    Instance x(s->num_features());

    const double propensity = Clamp(rng.Normal() * 1.0 + 1.0, 0.0, 3.5);
    const double age_value = Clamp(rng.Normal() * 9.0 + 29.0, 16.0, 69.0);

    x[age] = age_b.Bucket(age_value);
    x[sex] = rng.Bernoulli(0.93) ? 0u : 1u;
    x[race] = SampleCategorical({0.55, 0.42, 0.03}, &rng);
    const double time_value =
        Clamp(rng.Normal() * 20.0 + 18.0, 0.0, 119.0);
    x[time_served] = time_b.Bucket(time_value);
    const double rule_value =
        Clamp(propensity * 4.0 + rng.Normal() * 3.0, 0.0, 29.0);
    x[rule_violations] = rule_b.Bucket(rule_value);
    const double convictions_value =
        Clamp(propensity * 3.0 + rng.Normal() * 2.0, 0.0, 19.0);
    x[prior_convictions] = convictions_b.Bucket(convictions_value);
    x[felony] = rng.Bernoulli(0.5) ? 1u : 0u;
    x[property_crime] = rng.Bernoulli(0.35 + 0.1 * (propensity > 1.5))
                            ? 1u
                            : 0u;
    x[person_crime] = rng.Bernoulli(0.25) ? 1u : 0u;
    x[alcohol] = rng.Bernoulli(0.25 + 0.1 * (propensity > 1.2)) ? 1u : 0u;
    x[drugs] = rng.Bernoulli(0.2 + 0.15 * (propensity > 1.2)) ? 1u : 0u;
    x[married] = rng.Bernoulli(0.25) ? 1u : 0u;
    const double school_value =
        Clamp(rng.Normal() * 2.5 + 10.0 - propensity, 0.0, 15.9);
    x[school_years] = school_b.Bucket(school_value);
    x[supervised] = rng.Bernoulli(0.55) ? 1u : 0u;
    x[work_release] = rng.Bernoulli(0.3) ? 1u : 0u;

    // Recidivism model loosely follows the study: young age, priors, rule
    // violations and substance abuse raise risk; marriage, schooling and
    // supervision lower it.
    double risk = -0.9;
    risk += convictions_value / 6.0;
    risk += rule_value / 12.0;
    risk += age_value < 24.0 ? 0.8 : (age_value > 40.0 ? -0.6 : 0.0);
    risk += x[drugs] == 1 ? 0.5 : 0.0;
    risk += x[alcohol] == 1 ? 0.3 : 0.0;
    risk += x[married] == 1 ? -0.4 : 0.0;
    risk += x[supervised] == 1 ? -0.3 : 0.0;
    risk += (10.0 - school_value) / 12.0;
    bool reoffends = risk + rng.Normal() * 0.55 > 0.45;
    if (rng.Bernoulli(options.label_noise)) reoffends = !reoffends;

    dataset.Add(std::move(x), reoffends ? recid : 0u);
  }
  return dataset;
}

}  // namespace cce::data
