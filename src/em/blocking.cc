#include "em/blocking.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/string_util.h"

namespace cce::em {

Result<std::vector<TokenBlocker::Candidate>> TokenBlocker::Block(
    const std::vector<Record>& left, const std::vector<Record>& right,
    const Options& options) {
  if (left.empty() || right.empty()) {
    return Status::InvalidArgument("both record collections must be "
                                   "non-empty");
  }
  const size_t attribute = options.key_attribute;
  for (const Record* table : {&left.front(), &right.front()}) {
    if (attribute >= table->values.size()) {
      return Status::OutOfRange("key_attribute outside record arity");
    }
  }
  if (options.min_shared_tokens == 0) {
    return Status::InvalidArgument("min_shared_tokens must be >= 1");
  }

  // Inverted index over the right table's key-attribute tokens, with
  // document-frequency-based stop-word removal.
  std::map<std::string, std::vector<size_t>> index;
  for (size_t r = 0; r < right.size(); ++r) {
    std::set<std::string> seen;
    for (std::string& token : Tokenize(right[r].values[attribute])) {
      if (seen.insert(token).second) index[token].push_back(r);
    }
  }
  const size_t stop_threshold = std::max<size_t>(
      1, static_cast<size_t>(options.stop_token_fraction *
                             static_cast<double>(right.size())));

  // Probe with each left record; count shared (non-stop) tokens per right
  // record.
  std::vector<Candidate> candidates;
  std::map<size_t, size_t> overlap;
  for (size_t l = 0; l < left.size(); ++l) {
    overlap.clear();
    std::set<std::string> seen;
    for (std::string& token : Tokenize(left[l].values[attribute])) {
      if (!seen.insert(token).second) continue;
      auto it = index.find(token);
      if (it == index.end() || it->second.size() > stop_threshold) {
        continue;
      }
      for (size_t r : it->second) ++overlap[r];
    }
    for (const auto& [r, shared] : overlap) {
      if (shared >= options.min_shared_tokens) {
        candidates.push_back(Candidate{l, r, shared});
      }
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.shared_tokens > b.shared_tokens;
                   });
  if (options.max_candidates > 0 &&
      candidates.size() > options.max_candidates) {
    candidates.resize(options.max_candidates);
  }
  return candidates;
}

double TokenBlocker::BlockingRecall(
    const std::vector<Candidate>& candidates,
    const std::vector<std::pair<size_t, size_t>>& true_matches) {
  if (true_matches.empty()) return 1.0;
  std::set<std::pair<size_t, size_t>> emitted;
  for (const Candidate& c : candidates) emitted.insert({c.left, c.right});
  size_t retained = 0;
  for (const auto& match : true_matches) retained += emitted.count(match);
  return static_cast<double>(retained) /
         static_cast<double>(true_matches.size());
}

}  // namespace cce::em
