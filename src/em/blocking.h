#ifndef CCE_EM_BLOCKING_H_
#define CCE_EM_BLOCKING_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "em/records.h"

namespace cce::em {

/// Candidate generation ("blocking") for entity matching: comparing every
/// pair of two tables is quadratic, so real EM pipelines first retrieve
/// candidate pairs that share enough surface evidence, then let the
/// matcher decide. This blocker builds an inverted token index on a key
/// attribute and emits pairs whose token overlap clears a threshold.
class TokenBlocker {
 public:
  struct Options {
    /// Attribute whose tokens drive blocking (e.g. the title).
    size_t key_attribute = 0;
    /// Minimum shared tokens for a pair to become a candidate.
    size_t min_shared_tokens = 2;
    /// Tokens appearing in more than this fraction of records are stop
    /// words and ignored (they block everything with everything).
    double stop_token_fraction = 0.25;
    /// Hard cap on emitted candidates (0 = unbounded).
    size_t max_candidates = 0;
  };

  /// A candidate: indexes into the left/right record collections.
  struct Candidate {
    size_t left = 0;
    size_t right = 0;
    size_t shared_tokens = 0;
  };

  /// Emits candidates between `left` and `right`, most-overlapping first.
  static Result<std::vector<Candidate>> Block(
      const std::vector<Record>& left, const std::vector<Record>& right,
      const Options& options);

  /// Recall of a blocking result against ground truth matches (pairs of
  /// (left, right) indices): the fraction of true matches retained.
  static double BlockingRecall(
      const std::vector<Candidate>& candidates,
      const std::vector<std::pair<size_t, size_t>>& true_matches);
};

}  // namespace cce::em

#endif  // CCE_EM_BLOCKING_H_
