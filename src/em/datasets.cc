#include "em/datasets.h"

#include <functional>

#include "common/string_util.h"

namespace cce::em {
namespace {

// -------------------------------------------------------------- vocabulary

const std::vector<std::string>& SoftwareBrands() {
  static const auto* kV = new std::vector<std::string>{
      "adobe", "microsoft", "corel", "intuit", "symantec", "mcafee",
      "autodesk", "nero", "roxio", "sage", "apple", "vmware"};
  return *kV;
}

const std::vector<std::string>& SoftwareProducts() {
  static const auto* kV = new std::vector<std::string>{
      "photoshop", "office", "illustrator", "quickbooks", "antivirus",
      "acrobat", "studio", "premiere", "draw", "suite", "security",
      "backup", "fusion", "works", "publisher", "encoder"};
  return *kV;
}

const std::vector<std::string>& SoftwareQualifiers() {
  static const auto* kV = new std::vector<std::string>{
      "professional", "standard", "deluxe", "premium", "home", "student",
      "upgrade", "full", "edition", "2007", "2008", "mac", "windows"};
  return *kV;
}

const std::vector<std::string>& PaperWords() {
  static const auto* kV = new std::vector<std::string>{
      "query",     "database",   "optimization", "learning",  "mining",
      "stream",    "index",      "distributed",  "parallel",  "graph",
      "semantic",  "web",        "xml",          "spatial",   "temporal",
      "efficient", "scalable",   "adaptive",     "approximate",
      "join",      "aggregation", "clustering",  "classification",
      "privacy",   "security",   "transaction",  "storage",   "caching",
      "sampling",  "ranking"};
  return *kV;
}

const std::vector<std::string>& AuthorNames() {
  static const auto* kV = new std::vector<std::string>{
      "j smith",   "m garcia", "w chen",    "r kumar",  "a gupta",
      "d johnson", "s lee",    "h wang",    "p brown",  "k tanaka",
      "l martin",  "c davis",  "t nguyen",  "e wilson", "f mueller",
      "g rossi",   "y zhang",  "b taylor",  "n patel",  "o hansen"};
  return *kV;
}

const std::vector<std::string>& Venues() {
  static const auto* kV = new std::vector<std::string>{
      "sigmod", "vldb", "icde", "kdd", "tods", "tkde", "edbt", "cikm"};
  return *kV;
}

const std::vector<std::string>& ElectronicsBrands() {
  static const auto* kV = new std::vector<std::string>{
      "samsung", "sony", "lg", "panasonic", "toshiba", "canon", "nikon",
      "hp", "dell", "lenovo", "philips", "jvc", "sharp", "sandisk"};
  return *kV;
}

const std::vector<std::string>& ElectronicsCategories() {
  static const auto* kV = new std::vector<std::string>{
      "tv", "camera", "laptop", "printer", "monitor", "headphones",
      "speaker", "router", "tablet", "projector"};
  return *kV;
}

std::string PickWord(const std::vector<std::string>& vocab, Rng* rng) {
  return vocab[rng->Uniform(vocab.size())];
}

// ------------------------------------------------------------- entity kits

using EntityFactory = std::function<Record(Rng*)>;

Record MakeSoftwareEntity(Rng* rng) {
  std::string brand = PickWord(SoftwareBrands(), rng);
  std::string title = brand + " " + PickWord(SoftwareProducts(), rng) + " " +
                      PickWord(SoftwareQualifiers(), rng);
  if (rng->Bernoulli(0.5)) {
    title += " " + PickWord(SoftwareQualifiers(), rng);
  }
  double price = 20.0 + rng->UniformDouble() * 600.0;
  return Record{{title, brand, StrFormat("%.2f", price)}};
}

Record MakeCitationEntity(Rng* rng) {
  size_t words = 4 + rng->Uniform(5);
  std::string title;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) title += " ";
    title += PickWord(PaperWords(), rng);
  }
  size_t author_count = 1 + rng->Uniform(3);
  std::string authors;
  for (size_t i = 0; i < author_count; ++i) {
    if (i > 0) authors += ", ";
    authors += PickWord(AuthorNames(), rng);
  }
  std::string venue = PickWord(Venues(), rng);
  int year = 1995 + static_cast<int>(rng->Uniform(15));
  return Record{{title, authors, venue, std::to_string(year)}};
}

Record MakeElectronicsEntity(Rng* rng) {
  std::string brand = PickWord(ElectronicsBrands(), rng);
  std::string category = PickWord(ElectronicsCategories(), rng);
  std::string model =
      StrFormat("%c%c-%04d", 'a' + static_cast<char>(rng->Uniform(26)),
                'a' + static_cast<char>(rng->Uniform(26)),
                static_cast<int>(rng->Uniform(9999)));
  std::string title = brand + " " + category + " " + model;
  if (rng->Bernoulli(0.6)) title += " series";
  double price = 15.0 + rng->UniformDouble() * 1500.0;
  return Record{{title, category, brand, model, StrFormat("%.2f", price)}};
}

// --------------------------------------------------------- pair generation

Record DirtyView(const Record& base, const std::vector<bool>& numeric,
                 Rng* rng) {
  DirtyOptions dirty;
  Record out;
  out.values.reserve(base.values.size());
  for (size_t a = 0; a < base.values.size(); ++a) {
    out.values.push_back(numeric[a]
                             ? PerturbNumber(base.values[a], dirty, rng)
                             : PerturbText(base.values[a], dirty, rng));
  }
  return out;
}

EmTask GeneratePairs(std::string name, std::vector<std::string> attributes,
                     std::vector<bool> numeric, size_t pairs, size_t matches,
                     const EntityFactory& factory, uint64_t seed) {
  EmTask task;
  task.name = std::move(name);
  task.attributes = std::move(attributes);
  task.numeric = std::move(numeric);
  Rng rng(seed);

  task.pairs.reserve(pairs);
  for (size_t i = 0; i < matches && i < pairs; ++i) {
    Record base = factory(&rng);
    RecordPair pair;
    pair.left = base;
    pair.right = DirtyView(base, task.numeric, &rng);
    pair.is_match = true;
    task.pairs.push_back(std::move(pair));
  }
  while (task.pairs.size() < pairs) {
    RecordPair pair;
    pair.left = factory(&rng);
    if (rng.Bernoulli(0.35)) {
      // Hard negative: a different entity sharing surface vocabulary, built
      // by perturbing a fresh entity of the same factory (titles share
      // tokens but the records disagree on the details).
      Record other = factory(&rng);
      pair.right = DirtyView(other, task.numeric, &rng);
    } else {
      pair.right = factory(&rng);
    }
    pair.is_match = false;
    task.pairs.push_back(std::move(pair));
  }
  // Interleave matches and non-matches.
  rng.Shuffle(&task.pairs);
  return task;
}

}  // namespace

EmTask GenerateAmazonGoogle(const EmGeneratorOptions& options) {
  size_t pairs = options.pairs == 0 ? 11460 : options.pairs;
  size_t matches = options.matches == 0
                       ? (options.pairs == 0
                              ? 1167
                              : pairs / 10)
                       : options.matches;
  return GeneratePairs("A-G", {"title", "manufacturer", "price"},
                       {false, false, true}, pairs, matches,
                       MakeSoftwareEntity, options.seed);
}

EmTask GenerateDblpAcm(const EmGeneratorOptions& options) {
  size_t pairs = options.pairs == 0 ? 12363 : options.pairs;
  size_t matches = options.matches == 0
                       ? (options.pairs == 0 ? 2220 : pairs / 6)
                       : options.matches;
  return GeneratePairs("D-A", {"title", "authors", "venue", "year"},
                       {false, false, false, true}, pairs, matches,
                       MakeCitationEntity, options.seed + 1);
}

EmTask GenerateDblpScholar(const EmGeneratorOptions& options) {
  size_t pairs = options.pairs == 0 ? 28707 : options.pairs;
  size_t matches = options.matches == 0
                       ? (options.pairs == 0 ? 5347 : pairs / 5)
                       : options.matches;
  return GeneratePairs("D-G", {"title", "authors", "venue", "year"},
                       {false, false, false, true}, pairs, matches,
                       MakeCitationEntity, options.seed + 2);
}

EmTask GenerateWalmartAmazon(const EmGeneratorOptions& options) {
  size_t pairs = options.pairs == 0 ? 10242 : options.pairs;
  size_t matches = options.matches == 0
                       ? (options.pairs == 0 ? 962 : pairs / 10)
                       : options.matches;
  return GeneratePairs("W-A",
                       {"title", "category", "brand", "modelno", "price"},
                       {false, false, false, false, true}, pairs, matches,
                       MakeElectronicsEntity, options.seed + 3);
}

const std::vector<std::string>& EmDatasetNames() {
  static const auto* kNames =
      new std::vector<std::string>{"A-G", "D-A", "D-G", "W-A"};
  return *kNames;
}

Result<EmTask> GenerateEmByName(const std::string& name, uint64_t seed,
                                size_t pairs) {
  EmGeneratorOptions options;
  options.seed = seed;
  options.pairs = pairs;
  if (name == "A-G") return GenerateAmazonGoogle(options);
  if (name == "D-A") return GenerateDblpAcm(options);
  if (name == "D-G") return GenerateDblpScholar(options);
  if (name == "W-A") return GenerateWalmartAmazon(options);
  return Status::NotFound("unknown EM dataset '" + name + "'");
}

}  // namespace cce::em
