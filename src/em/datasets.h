#ifndef CCE_EM_DATASETS_H_
#define CCE_EM_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "em/records.h"

namespace cce::em {

/// Synthetic stand-ins for the four Magellan entity-matching benchmarks
/// (paper Table 1). Pair counts, match rates and attribute counts match the
/// paper; record contents are generated from domain vocabularies with
/// dirty-duplicate perturbations (see DESIGN.md §1).

struct EmGeneratorOptions {
  size_t pairs = 0;    // 0 = paper count
  size_t matches = 0;  // 0 = paper count
  uint64_t seed = 3;
};

/// A-G (Amazon-Google): software products, 3 attributes
/// (title, manufacturer, price); 11,460 pairs, 1,167 matches.
EmTask GenerateAmazonGoogle(const EmGeneratorOptions& options);

/// D-A (DBLP-ACM): citations, 4 attributes (title, authors, venue, year);
/// 12,363 pairs, 2,220 matches.
EmTask GenerateDblpAcm(const EmGeneratorOptions& options);

/// D-G (DBLP-GoogleScholar): citations, 4 attributes; 28,707 pairs,
/// 5,347 matches.
EmTask GenerateDblpScholar(const EmGeneratorOptions& options);

/// W-A (Walmart-Amazon): electronics, 5 attributes
/// (title, category, brand, modelno, price); 10,242 pairs, 962 matches.
EmTask GenerateWalmartAmazon(const EmGeneratorOptions& options);

/// The four EM dataset names in the paper's order.
const std::vector<std::string>& EmDatasetNames();

/// Generates by paper name ("A-G", "D-A", "D-G", "W-A").
Result<EmTask> GenerateEmByName(const std::string& name, uint64_t seed,
                                size_t pairs = 0);

}  // namespace cce::em

#endif  // CCE_EM_DATASETS_H_
