#include "em/features.h"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace cce::em {
namespace {

bool ParseNumber(const std::string& text, double* out) {
  const char* begin = text.data();
  auto [ptr, ec] = std::from_chars(begin, begin + text.size(), *out);
  return ec == std::errc() && ptr == begin + text.size();
}

}  // namespace

PairFeatureExtractor::PairFeatureExtractor(const EmTask& task,
                                           const Options& options)
    : numeric_(task.numeric),
      buckets_(Discretizer::EquiWidth(0.0, 1.0 + 1e-9,
                                      options.similarity_buckets)) {
  auto schema = std::make_shared<Schema>();
  for (size_t a = 0; a < task.attributes.size(); ++a) {
    FeatureId f = schema->AddFeature(task.attributes[a] + "_sim");
    for (ValueId b = 0; b < buckets_.num_buckets(); ++b) {
      schema->InternValue(f, buckets_.BucketName(b));
    }
  }
  schema->InternLabel("NoMatch");
  schema->InternLabel("Match");
  schema_ = std::move(schema);
}

double PairFeatureExtractor::AttributeSimilarity(const RecordPair& pair,
                                                 size_t attribute) const {
  CCE_CHECK(attribute < numeric_.size());
  const std::string& a = pair.left.values[attribute];
  const std::string& b = pair.right.values[attribute];
  if (numeric_[attribute]) {
    double va;
    double vb;
    if (ParseNumber(a, &va) && ParseNumber(b, &vb)) {
      double denom = std::max({std::abs(va), std::abs(vb), 1e-9});
      return std::max(0.0, 1.0 - std::abs(va - vb) / denom);
    }
    // Fall through to string similarity when parsing fails.
  }
  return 0.6 * TokenJaccard(a, b) + 0.4 * EditSimilarity(ToLower(a),
                                                         ToLower(b));
}

Instance PairFeatureExtractor::Encode(const RecordPair& pair) const {
  Instance x(numeric_.size());
  for (size_t a = 0; a < numeric_.size(); ++a) {
    x[a] = buckets_.Bucket(AttributeSimilarity(pair, a));
  }
  return x;
}

Dataset PairFeatureExtractor::EncodeAll(const EmTask& task) const {
  Dataset dataset(schema_);
  for (const RecordPair& pair : task.pairs) {
    dataset.Add(Encode(pair), pair.is_match ? 1u : 0u);
  }
  return dataset;
}

}  // namespace cce::em
