#ifndef CCE_EM_FEATURES_H_
#define CCE_EM_FEATURES_H_

#include <memory>

#include "core/dataset.h"
#include "core/discretizer.h"
#include "em/records.h"

namespace cce::em {

/// Turns candidate record pairs into the library's discrete representation:
/// one feature per source attribute holding the bucketed similarity of the
/// two records on that attribute. This is the granularity at which CCE,
/// Anchor and CERTA explain entity-matching decisions (paper Section 7.5 —
/// the EM datasets have 3-5 features, one per attribute).
class PairFeatureExtractor {
 public:
  struct Options {
    int similarity_buckets = 10;
  };

  /// Builds the extractor (and its schema) for the attributes of `task`.
  PairFeatureExtractor(const EmTask& task, const Options& options);

  /// Per-attribute similarity in [0, 1]: blended token-Jaccard and edit
  /// similarity for text, relative distance for numerics.
  double AttributeSimilarity(const RecordPair& pair, size_t attribute) const;

  /// Encodes a single pair against the extractor's schema.
  Instance Encode(const RecordPair& pair) const;

  /// Encodes all pairs of the task; labels are the ground-truth match
  /// labels (0 = non-match, 1 = match).
  Dataset EncodeAll(const EmTask& task) const;

  const std::shared_ptr<const Schema>& schema() const { return schema_; }

 private:
  std::vector<bool> numeric_;
  Discretizer buckets_;
  std::shared_ptr<const Schema> schema_;
};

}  // namespace cce::em

#endif  // CCE_EM_FEATURES_H_
