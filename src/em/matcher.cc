#include "em/matcher.h"

namespace cce::em {

Result<std::unique_ptr<SimilarityMatcher>> SimilarityMatcher::Train(
    const Dataset& train, const Options& options) {
  Result<std::unique_ptr<ml::Gbdt>> gbdt =
      ml::Gbdt::Train(train, options.gbdt);
  if (!gbdt.ok()) return gbdt.status();
  return std::unique_ptr<SimilarityMatcher>(
      new SimilarityMatcher(std::move(gbdt).value()));
}

Label SimilarityMatcher::Predict(const Instance& x) const {
  return gbdt_->Predict(x);
}

double SimilarityMatcher::Score(const Instance& x) const {
  return gbdt_->Margin(x);
}

}  // namespace cce::em
