#ifndef CCE_EM_MATCHER_H_
#define CCE_EM_MATCHER_H_

#include <memory>

#include "common/status.h"
#include "core/model.h"
#include "ml/gbdt.h"

namespace cce::em {

/// The entity matcher: a GBDT over per-attribute similarity features — our
/// stand-in for Ditto [57] (see DESIGN.md §1). Explainers treat it as a
/// black box mapping encoded pairs to Match/NoMatch.
class SimilarityMatcher : public Model {
 public:
  struct Options {
    ml::Gbdt::Options gbdt;
    Options() {
      gbdt.num_trees = 60;
      gbdt.max_depth = 4;
      gbdt.learning_rate = 0.2;
    }
  };

  /// Trains on an encoded pair dataset (labels: 0 NoMatch / 1 Match).
  static Result<std::unique_ptr<SimilarityMatcher>> Train(
      const Dataset& train, const Options& options);

  Label Predict(const Instance& x) const override;
  double Score(const Instance& x) const override;

  const ml::Gbdt& gbdt() const { return *gbdt_; }

 private:
  explicit SimilarityMatcher(std::unique_ptr<ml::Gbdt> gbdt)
      : gbdt_(std::move(gbdt)) {}

  std::unique_ptr<ml::Gbdt> gbdt_;
};

}  // namespace cce::em

#endif  // CCE_EM_MATCHER_H_
