#include "em/records.h"

#include <charconv>
#include <cmath>

#include "common/string_util.h"

namespace cce::em {

std::string PerturbText(const std::string& value, const DirtyOptions& options,
                        Rng* rng) {
  std::vector<std::string> tokens = Split(value, ' ');
  std::vector<std::string> kept;
  for (std::string& token : tokens) {
    if (token.empty()) continue;
    if (kept.size() > 1 && rng->Bernoulli(options.token_drop_prob)) {
      continue;  // drop a token (keep at least the first two)
    }
    if (token.size() > 4 && rng->Bernoulli(options.abbreviate_prob)) {
      token = token.substr(0, 3) + ".";
    }
    if (token.size() > 2 && rng->Bernoulli(options.typo_prob)) {
      size_t i = 1 + rng->Uniform(token.size() - 2);
      std::swap(token[i], token[i + 1 < token.size() ? i + 1 : i - 1]);
    }
    kept.push_back(std::move(token));
  }
  if (kept.empty()) return value;
  return Join(kept, " ");
}

std::string PerturbNumber(const std::string& value,
                          const DirtyOptions& options, Rng* rng) {
  double number = 0.0;
  const char* begin = value.data();
  auto [ptr, ec] = std::from_chars(begin, begin + value.size(), number);
  if (ec != std::errc()) return value;
  (void)ptr;
  double jitter = 1.0 + (rng->UniformDouble() * 2.0 - 1.0) *
                            options.numeric_jitter;
  double out = number * jitter;
  // Keep integers integral (years, model numbers).
  if (std::abs(number - std::round(number)) < 1e-9) {
    return std::to_string(static_cast<long long>(std::llround(out)));
  }
  return StrFormat("%.2f", out);
}

}  // namespace cce::em
