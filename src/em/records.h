#ifndef CCE_EM_RECORDS_H_
#define CCE_EM_RECORDS_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace cce::em {

/// A source record: one string value per attribute of its table schema.
struct Record {
  std::vector<std::string> values;
};

/// A candidate pair of records from two sources plus the ground-truth
/// match label.
struct RecordPair {
  Record left;
  Record right;
  bool is_match = false;
};

/// An entity-matching task: two tables over the same attribute list and the
/// candidate pairs linking them (paper Section 7.5).
struct EmTask {
  std::string name;
  std::vector<std::string> attributes;
  /// True for attributes holding numbers (price, year): similarity is
  /// computed on the numeric distance rather than string overlap.
  std::vector<bool> numeric;
  std::vector<RecordPair> pairs;
};

/// Dirty-duplicate perturbations applied when generating the "other source"
/// view of an entity: token drops, abbreviation, character typos, numeric
/// jitter.
struct DirtyOptions {
  double token_drop_prob = 0.15;
  double abbreviate_prob = 0.1;
  double typo_prob = 0.08;
  double numeric_jitter = 0.05;  // relative jitter for numeric attributes
};

/// Returns a perturbed copy of a string attribute value.
std::string PerturbText(const std::string& value, const DirtyOptions& options,
                        Rng* rng);

/// Returns a jittered copy of a numeric attribute value.
std::string PerturbNumber(const std::string& value,
                          const DirtyOptions& options, Rng* rng);

}  // namespace cce::em

#endif  // CCE_EM_RECORDS_H_
