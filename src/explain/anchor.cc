#include "explain/anchor.h"

#include <algorithm>
#include <cmath>

#include "explain/kl_bounds.h"

namespace cce::explain {
namespace {

struct Candidate {
  FeatureSet anchor;
  double precision = 0.0;
  int samples = 0;
};

}  // namespace

Anchor::Anchor(const Model* model, const Dataset* reference,
               const Options& options)
    : model_(model), sampler_(reference), options_(options),
      rng_(options.seed) {}

double Anchor::EstimatePrecision(const Instance& x, const FeatureSet& anchor,
                                 int num_samples) {
  const size_t n = x.size();
  std::vector<bool> keep(n, false);
  for (FeatureId f : anchor) keep[f] = true;
  const Label y0 = model_->Predict(x);
  int hits = 0;
  for (int s = 0; s < num_samples; ++s) {
    Instance z = sampler_.Sample(x, keep, &rng_);
    if (model_->Predict(z) == y0) ++hits;
  }
  return num_samples == 0 ? 0.0
                          : static_cast<double>(hits) / num_samples;
}

double Anchor::EstimateCoverage(const Instance& x, const FeatureSet& anchor,
                                int num_samples) {
  if (num_samples <= 0) return 0.0;
  const Dataset& reference = sampler_.reference();
  int matches = 0;
  for (int s = 0; s < num_samples; ++s) {
    size_t row = rng_.Uniform(reference.size());
    bool match = true;
    for (FeatureId f : anchor) {
      if (reference.value(row, f) != x[f]) {
        match = false;
        break;
      }
    }
    matches += match;
  }
  return static_cast<double>(matches) / num_samples;
}

Result<FeatureSet> Anchor::ExplainFeatures(const Instance& x,
                                           size_t target_size) {
  const size_t n = x.size();
  if (n == 0) return FeatureSet{};

  std::vector<Candidate> beam = {Candidate{}};  // start from the empty rule
  Candidate best_valid;
  bool have_valid = false;

  const size_t max_size = target_size == 0 ? n : std::min(target_size, n);
  for (size_t size = 1; size <= max_size; ++size) {
    // Expand every beam member by one unused predicate.
    std::vector<Candidate> expanded;
    for (const Candidate& base : beam) {
      for (FeatureId f = 0; f < n; ++f) {
        if (FeatureSetContains(base.anchor, f)) continue;
        Candidate next;
        next.anchor = base.anchor;
        FeatureSetInsert(&next.anchor, f);
        expanded.push_back(std::move(next));
      }
    }
    if (expanded.empty()) break;

    // Successive-halving evaluation: every candidate gets batches until the
    // sample budget is spent, dropping the weakest half each round.
    std::vector<size_t> alive(expanded.size());
    for (size_t i = 0; i < alive.size(); ++i) alive[i] = i;
    int spent = 0;
    while (spent < options_.max_samples && alive.size() > 1) {
      for (size_t idx : alive) {
        Candidate& c = expanded[idx];
        double fresh = EstimatePrecision(x, c.anchor, options_.batch_size);
        c.precision = (c.precision * c.samples +
                       fresh * options_.batch_size) /
                      (c.samples + options_.batch_size);
        c.samples += options_.batch_size;
      }
      spent += options_.batch_size;
      std::sort(alive.begin(), alive.end(), [&](size_t a, size_t b) {
        return expanded[a].precision > expanded[b].precision;
      });
      size_t keep = std::max<size_t>(
          static_cast<size_t>(options_.beam_width),
          (alive.size() + 1) / 2);
      if (keep < alive.size()) alive.resize(keep);
    }
    // Make sure survivors have at least one batch of evidence.
    for (size_t idx : alive) {
      Candidate& c = expanded[idx];
      if (c.samples == 0) {
        c.precision = EstimatePrecision(x, c.anchor, options_.batch_size);
        c.samples = options_.batch_size;
      }
    }
    std::sort(alive.begin(), alive.end(), [&](size_t a, size_t b) {
      return expanded[a].precision > expanded[b].precision;
    });

    // New beam: the top beam_width candidates of this size.
    std::vector<Candidate> next_beam;
    for (size_t i = 0;
         i < alive.size() &&
         i < static_cast<size_t>(options_.beam_width);
         ++i) {
      next_beam.push_back(expanded[alive[i]]);
    }
    beam = std::move(next_beam);

    // Termination: in native mode, stop as soon as the best candidate's
    // KL-LUCB precision lower bound clears the threshold.
    const Candidate& best = beam.front();
    double lower_bound = KlLowerBound(
        best.precision, static_cast<size_t>(best.samples),
        LucbBeta(static_cast<size_t>(best.samples), options_.delta));
    if (target_size == 0 &&
        lower_bound >= options_.precision_threshold) {
      return best.anchor;
    }
    if (target_size != 0 && size == max_size) {
      return best.anchor;
    }
    best_valid = best;
    have_valid = true;
  }
  if (have_valid) return best_valid.anchor;
  return FeatureSet{};
}

}  // namespace cce::explain
