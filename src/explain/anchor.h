#ifndef CCE_EXPLAIN_ANCHOR_H_
#define CCE_EXPLAIN_ANCHOR_H_

#include "common/random.h"
#include "core/model.h"
#include "explain/explainer.h"
#include "explain/perturbation.h"

namespace cce::explain {

/// Anchor [75]: beam search over candidate anchors (conjunctions of
/// "feature = x[feature]" predicates), extending the anchor until the
/// estimated precision — the probability that perturbed instances matching
/// the anchor keep the prediction — clears a threshold with Hoeffding
/// confidence (a KL-LUCB-style best-arm routine). Heuristic: no conformity
/// guarantee, which Figures 3a/3b measure.
class Anchor : public FeatureExplainer {
 public:
  struct Options {
    double precision_threshold = 0.95;
    double delta = 0.1;          // confidence parameter
    int beam_width = 2;
    int batch_size = 50;         // samples drawn per evaluation round
    int max_samples = 600;       // per candidate
    uint64_t seed = 19;
  };

  Anchor(const Model* model, const Dataset* reference,
         const Options& options);

  std::string name() const override { return "Anchor"; }

  /// `target_size` > 0 forces the anchor to exactly that size (threshold is
  /// ignored and the best candidate of that size is returned), mirroring the
  /// paper's size-matched evaluation protocol.
  Result<FeatureSet> ExplainFeatures(const Instance& x,
                                     size_t target_size) override;

  /// Estimated precision of an anchor for x (fraction of matching perturbed
  /// samples that keep the prediction).
  double EstimatePrecision(const Instance& x, const FeatureSet& anchor,
                           int num_samples);

  /// Estimated coverage of an anchor: the probability that a reference-
  /// distribution instance matches the anchor's predicates (Anchor's
  /// second reported quality; larger anchors cover less).
  double EstimateCoverage(const Instance& x, const FeatureSet& anchor,
                          int num_samples);

 private:
  const Model* model_;
  PerturbationSampler sampler_;
  Options options_;
  Rng rng_;
};

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_ANCHOR_H_
