#include "explain/certa.h"

#include <algorithm>

#include "common/logging.h"

namespace cce::explain {

Certa::Certa(const Model* model, const Dataset* reference,
             const Options& options)
    : model_(model), reference_(reference), options_(options),
      rng_(options.seed) {
  CCE_CHECK(model_ != nullptr);
  CCE_CHECK(reference_ != nullptr && !reference_->empty());
}

const std::vector<size_t>& Certa::RowsWithPrediction(Label label) {
  if (!partitioned_) {
    partitioned_ = true;
    rows_by_prediction_.resize(2);
    for (size_t row = 0; row < reference_->size(); ++row) {
      Label y = model_->Predict(reference_->instance(row));
      if (y < 2) rows_by_prediction_[y].push_back(row);
    }
  }
  CCE_CHECK(label < rows_by_prediction_.size());
  return rows_by_prediction_[label];
}

Result<std::vector<double>> Certa::ImportanceScores(const Instance& x) {
  const size_t n = x.size();
  const Label y0 = model_->Predict(x);
  const Label opposite = y0 == 0 ? 1 : 0;
  const std::vector<size_t>& counter_rows = RowsWithPrediction(opposite);
  if (counter_rows.empty()) {
    // The model is constant on the reference set; nothing is salient.
    return std::vector<double>(n, 0.0);
  }

  // Single-attribute saliency: flip probability when the attribute's
  // evidence is replaced with counterfactual evidence.
  std::vector<double> saliency(n, 0.0);
  for (FeatureId f = 0; f < n; ++f) {
    int flips = 0;
    for (int s = 0; s < options_.samples_per_feature; ++s) {
      size_t row = counter_rows[rng_.Uniform(counter_rows.size())];
      Instance z = x;
      z[f] = reference_->value(row, f);
      if (model_->Predict(z) != y0) ++flips;
    }
    saliency[f] = static_cast<double>(flips) /
                  static_cast<double>(options_.samples_per_feature);
  }

  // Pairwise refinement: credit attributes whose joint substitution flips
  // the outcome even when neither does alone (split evenly).
  for (FeatureId f = 0; f < n; ++f) {
    for (FeatureId g = f + 1; g < n; ++g) {
      int flips = 0;
      for (int s = 0; s < options_.samples_per_pair; ++s) {
        size_t row = counter_rows[rng_.Uniform(counter_rows.size())];
        Instance z = x;
        z[f] = reference_->value(row, f);
        z[g] = reference_->value(row, g);
        if (model_->Predict(z) != y0) ++flips;
      }
      double joint = static_cast<double>(flips) /
                     static_cast<double>(options_.samples_per_pair);
      double synergy =
          std::max(0.0, joint - std::max(saliency[f], saliency[g]));
      saliency[f] += 0.5 * synergy;
      saliency[g] += 0.5 * synergy;
    }
  }
  return saliency;
}

}  // namespace cce::explain
