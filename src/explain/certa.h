#ifndef CCE_EXPLAIN_CERTA_H_
#define CCE_EXPLAIN_CERTA_H_

#include "common/random.h"
#include "core/model.h"
#include "explain/explainer.h"

namespace cce::explain {

/// CERTA [94]: a specialised entity-matching explainer. For each attribute
/// it estimates the probability that substituting the attribute's evidence
/// with counterfactual evidence — values observed on pairs the model
/// decided the *other* way — flips the match decision; single-attribute
/// saliencies are refined with pairwise substitutions. The (many) model
/// probes make it accurate for EM but orders of magnitude slower than CCE
/// (paper Section 7.5).
class Certa : public ImportanceExplainer {
 public:
  struct Options {
    /// Counterfactual substitutions drawn per attribute. The defaults
    /// mirror the heavy probing of the original (which fits local
    /// probabilistic models per explained pair).
    int samples_per_feature = 1500;
    /// Pairwise refinement substitutions per attribute pair.
    int samples_per_pair = 400;
    uint64_t seed = 23;
  };

  /// `model` predicts match/non-match; `reference` holds pair feature
  /// vectors from which counterfactual values are drawn. Both must outlive
  /// the explainer.
  Certa(const Model* model, const Dataset* reference,
        const Options& options);

  std::string name() const override { return "CERTA"; }
  Result<std::vector<double>> ImportanceScores(const Instance& x) override;

 private:
  /// Rows of the reference set the model predicts as `label`.
  const std::vector<size_t>& RowsWithPrediction(Label label);

  const Model* model_;
  const Dataset* reference_;
  Options options_;
  Rng rng_;
  bool partitioned_ = false;
  std::vector<std::vector<size_t>> rows_by_prediction_;
};

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_CERTA_H_
