#include "explain/explainer.h"

#include <algorithm>
#include <cmath>

namespace cce::explain {

std::vector<FeatureId> RankByImportance(const std::vector<double>& scores) {
  std::vector<FeatureId> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<FeatureId>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](FeatureId a, FeatureId b) {
                     return std::abs(scores[a]) > std::abs(scores[b]);
                   });
  return order;
}

Result<FeatureSet> ImportanceExplainer::ExplainFeatures(const Instance& x,
                                                        size_t target_size) {
  Result<std::vector<double>> scores = ImportanceScores(x);
  if (!scores.ok()) return scores.status();
  std::vector<FeatureId> order = RankByImportance(*scores);
  FeatureSet explanation;
  size_t limit = target_size == 0 ? order.size() : target_size;
  for (FeatureId f : order) {
    if (explanation.size() >= limit) break;
    if (target_size == 0 && std::abs((*scores)[f]) < 1e-12) break;
    FeatureSetInsert(&explanation, f);
  }
  return explanation;
}

}  // namespace cce::explain
