#ifndef CCE_EXPLAIN_EXPLAINER_H_
#define CCE_EXPLAIN_EXPLAINER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace cce::explain {

/// Common interface of the compared explanation methods (paper Table 2).
/// Unlike CCE, every implementation queries the ML model.
class FeatureExplainer {
 public:
  virtual ~FeatureExplainer() = default;

  virtual std::string name() const = 0;

  /// Produces a feature explanation for `x`. `target_size` = 0 lets the
  /// method choose its native size; a positive value requests a
  /// size-matched explanation (Section 7.1: importance methods take the
  /// top-k scored features; Anchor tunes its threshold).
  virtual Result<FeatureSet> ExplainFeatures(const Instance& x,
                                             size_t target_size) = 0;
};

/// Feature-importance methods additionally expose per-feature scores
/// (LIME, SHAP, GAM, CERTA).
class ImportanceExplainer : public FeatureExplainer {
 public:
  /// Signed importance score per feature (positive pushes toward the
  /// predicted outcome).
  virtual Result<std::vector<double>> ImportanceScores(const Instance& x) = 0;

  /// Default derivation [13]: rank by |score| descending, take the top
  /// `target_size` (or all nonzero when 0).
  Result<FeatureSet> ExplainFeatures(const Instance& x,
                                     size_t target_size) override;
};

/// Ranks feature ids by |score| descending (stable for ties).
std::vector<FeatureId> RankByImportance(const std::vector<double>& scores);

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_EXPLAINER_H_
