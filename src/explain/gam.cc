#include "explain/gam.h"

#include <cmath>
#include <memory>

namespace cce::explain {
namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Result<std::unique_ptr<Gam>> Gam::Fit(const Model* model,
                                      const Dataset* reference,
                                      const Options& options) {
  if (model == nullptr || reference == nullptr || reference->empty()) {
    return Status::InvalidArgument("Gam::Fit needs a model and data");
  }
  auto gam = std::unique_ptr<Gam>(new Gam());
  const Schema& schema = reference->schema();
  const size_t n = schema.num_features();
  gam->terms_.resize(n);
  gam->value_freq_.resize(n);
  for (FeatureId f = 0; f < n; ++f) {
    gam->terms_[f].assign(schema.DomainSize(f), 0.0);
    gam->value_freq_[f].assign(schema.DomainSize(f), 0.0);
  }
  for (size_t row = 0; row < reference->size(); ++row) {
    for (FeatureId f = 0; f < n; ++f) {
      ValueId v = reference->value(row, f);
      if (v < gam->value_freq_[f].size()) gam->value_freq_[f][v] += 1.0;
    }
  }
  for (FeatureId f = 0; f < n; ++f) {
    for (double& freq : gam->value_freq_[f]) {
      freq /= static_cast<double>(reference->size());
    }
  }

  // Surrogate targets: the black-box model's own predictions.
  std::vector<double> targets(reference->size());
  for (size_t row = 0; row < reference->size(); ++row) {
    targets[row] =
        static_cast<double>(model->Predict(reference->instance(row)));
  }

  std::vector<size_t> order(reference->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(options.seed);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    // Simple per-epoch learning-rate decay.
    double lr = options.learning_rate / (1.0 + 0.3 * epoch);
    for (size_t row : order) {
      const Instance& x = reference->instance(row);
      double p = gam->SurrogateProbability(x);
      double gradient = p - targets[row];
      gam->bias_ -= lr * gradient;
      for (FeatureId f = 0; f < n; ++f) {
        ValueId v = x[f];
        if (v >= gam->terms_[f].size()) continue;
        double& w = gam->terms_[f][v];
        w -= lr * (gradient + options.l2 * w);
      }
    }
  }
  return gam;
}

double Gam::SurrogateProbability(const Instance& x) const {
  double z = bias_;
  for (FeatureId f = 0; f < terms_.size(); ++f) {
    ValueId v = x[f];
    if (v < terms_[f].size()) z += terms_[f][v];
  }
  return Sigmoid(z);
}

Result<std::vector<double>> Gam::ImportanceScores(const Instance& x) {
  std::vector<double> scores(terms_.size(), 0.0);
  for (FeatureId f = 0; f < terms_.size(); ++f) {
    ValueId v = x[f];
    if (v >= terms_[f].size()) continue;
    // Centre the shape term by its reference-marginal mean so the score is
    // the deviation this particular value causes.
    double mean = 0.0;
    for (size_t u = 0; u < terms_[f].size(); ++u) {
      mean += terms_[f][u] * value_freq_[f][u];
    }
    scores[f] = terms_[f][v] - mean;
  }
  return scores;
}

}  // namespace cce::explain
