#ifndef CCE_EXPLAIN_GAM_H_
#define CCE_EXPLAIN_GAM_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/model.h"
#include "explain/explainer.h"

namespace cce::explain {

/// GAM [59]: a generalized additive surrogate of the black-box model —
/// one shape term per (feature, value), fitted by logistic SGD against the
/// model's predictions on a reference set. The importance of feature f for
/// instance x is its (mean-centred) shape-term contribution w[f][x[f]].
class Gam : public ImportanceExplainer {
 public:
  struct Options {
    int epochs = 12;
    double learning_rate = 0.15;
    double l2 = 1e-4;
    uint64_t seed = 17;
  };

  /// Fits the additive surrogate on `reference` rows labelled by `model`.
  static Result<std::unique_ptr<Gam>> Fit(const Model* model,
                                          const Dataset* reference,
                                          const Options& options);

  std::string name() const override { return "GAM"; }
  Result<std::vector<double>> ImportanceScores(const Instance& x) override;

  /// Surrogate positive-class probability (exposed for testing).
  double SurrogateProbability(const Instance& x) const;

 private:
  Gam() = default;

  double bias_ = 0.0;
  std::vector<std::vector<double>> terms_;       // per feature, per value
  std::vector<std::vector<double>> value_freq_;  // reference marginals
};

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_GAM_H_
