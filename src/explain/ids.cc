#include "explain/ids.h"

#include <algorithm>
#include <map>

namespace cce::explain {

bool IdsRule::Matches(const Instance& x) const {
  for (const auto& [feature, value] : antecedent) {
    if (x[feature] != value) return false;
  }
  return true;
}

std::string IdsRule::ToString(const Schema& schema) const {
  std::string out = "IF ";
  for (size_t i = 0; i < antecedent.size(); ++i) {
    if (i > 0) out += " AND ";
    const auto& [feature, value] = antecedent[i];
    out += schema.FeatureName(feature) + "='" +
           schema.ValueName(feature, value) + "'";
  }
  out += " THEN " + schema.LabelName(consequent);
  return out;
}

Result<Ids> Ids::Summarize(const Dataset& dataset, const Options& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot summarise an empty dataset");
  }
  if (options.max_antecedent == 0) {
    return Status::InvalidArgument("max_antecedent must be >= 1");
  }

  const size_t n = dataset.num_features();
  const size_t rows = dataset.size();
  const size_t min_count = std::max<size_t>(
      1, static_cast<size_t>(options.min_support *
                             static_cast<double>(rows)));

  // Level 1: frequent single predicates.
  std::map<std::pair<FeatureId, ValueId>, size_t> singles;
  for (size_t row = 0; row < rows; ++row) {
    const Instance& x = dataset.instance(row);
    for (FeatureId f = 0; f < n; ++f) ++singles[{f, x[f]}];
  }
  std::vector<std::pair<FeatureId, ValueId>> frequent;
  for (const auto& [predicate, count] : singles) {
    if (count >= min_count) frequent.push_back(predicate);
  }

  // Candidate antecedents: all frequent predicate combinations up to
  // max_antecedent (Apriori pruning: every subset must be frequent, which
  // level-wise construction from `frequent` guarantees for pairs).
  std::vector<std::vector<std::pair<FeatureId, ValueId>>> antecedents;
  for (const auto& p : frequent) antecedents.push_back({p});
  if (options.max_antecedent >= 2) {
    for (size_t i = 0; i < frequent.size(); ++i) {
      for (size_t j = i + 1; j < frequent.size(); ++j) {
        if (frequent[i].first == frequent[j].first) continue;
        antecedents.push_back({frequent[i], frequent[j]});
      }
    }
  }
  if (options.max_antecedent >= 3) {
    for (size_t i = 0; i < frequent.size(); ++i) {
      for (size_t j = i + 1; j < frequent.size(); ++j) {
        if (frequent[i].first == frequent[j].first) continue;
        for (size_t k = j + 1; k < frequent.size(); ++k) {
          if (frequent[k].first == frequent[i].first ||
              frequent[k].first == frequent[j].first) {
            continue;
          }
          antecedents.push_back({frequent[i], frequent[j], frequent[k]});
        }
      }
    }
  }

  // Score candidates: coverage and majority label.
  struct Candidate {
    IdsRule rule;
    std::vector<size_t> covered;
  };
  std::vector<Candidate> candidates;
  size_t num_labels = dataset.schema().num_labels();
  for (auto& antecedent : antecedents) {
    Candidate c;
    c.rule.antecedent = std::move(antecedent);
    std::vector<size_t> label_counts(std::max<size_t>(num_labels, 1), 0);
    for (size_t row = 0; row < rows; ++row) {
      if (!c.rule.Matches(dataset.instance(row))) continue;
      c.covered.push_back(row);
      ++label_counts[dataset.label(row)];
    }
    if (c.covered.size() < min_count) continue;
    size_t best_label = 0;
    for (size_t y = 1; y < label_counts.size(); ++y) {
      if (label_counts[y] > label_counts[best_label]) best_label = y;
    }
    c.rule.consequent = static_cast<Label>(best_label);
    c.rule.coverage = c.covered.size();
    c.rule.precision = static_cast<double>(label_counts[best_label]) /
                       static_cast<double>(c.covered.size());
    if (c.rule.precision < options.min_precision) continue;
    candidates.push_back(std::move(c));
  }

  Ids result;
  result.candidates_mined_ = candidates.size();

  if (options.max_rules == 0) {
    // Unrestricted mode: keep everything (the slow configuration).
    for (auto& c : candidates) result.rules_.push_back(std::move(c.rule));
    return result;
  }

  // Greedy selection under the (submodular-ish) IDS objective.
  std::vector<bool> chosen(candidates.size(), false);
  std::vector<size_t> covered_by(rows, 0);  // how many chosen rules cover row
  for (size_t pick = 0; pick < options.max_rules; ++pick) {
    double best_gain = 0.0;
    int best_index = -1;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (chosen[i]) continue;
      const Candidate& c = candidates[i];
      double new_coverage = 0.0;
      double overlap = 0.0;
      for (size_t row : c.covered) {
        if (covered_by[row] == 0) {
          new_coverage += 1.0;
        } else {
          overlap += 1.0;
        }
      }
      // IDS-style objective: fresh coverage, per-rule accuracy over the
      // rule's whole extent (precision is rewarded even where rules
      // overlap), an overlap penalty, and a conciseness penalty.
      double gain =
          options.coverage_weight * new_coverage /
              static_cast<double>(rows) +
          options.precision_weight * c.rule.precision *
              (static_cast<double>(c.rule.coverage) /
               static_cast<double>(rows)) -
          options.overlap_penalty * overlap / static_cast<double>(rows) -
          options.size_penalty *
              static_cast<double>(c.rule.antecedent.size()) / 10.0;
      if (gain > best_gain) {
        best_gain = gain;
        best_index = static_cast<int>(i);
      }
    }
    if (best_index < 0) break;
    chosen[best_index] = true;
    for (size_t row : candidates[best_index].covered) ++covered_by[row];
    result.rules_.push_back(candidates[best_index].rule);
  }
  return result;
}

int Ids::CoveringRule(const Instance& x) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].Matches(x)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace cce::explain
