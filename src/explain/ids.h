#ifndef CCE_EXPLAIN_IDS_H_
#define CCE_EXPLAIN_IDS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/types.h"

namespace cce::explain {

/// One conjunctive pattern rule: IF antecedent THEN label.
struct IdsRule {
  /// Conjunction of (feature, value) equality predicates.
  std::vector<std::pair<FeatureId, ValueId>> antecedent;
  Label consequent = 0;
  size_t coverage = 0;   // rows matching the antecedent
  double precision = 0;  // fraction of covered rows with the consequent

  /// True iff x satisfies every predicate.
  bool Matches(const Instance& x) const;

  std::string ToString(const Schema& schema) const;
};

/// IDS [55]: interpretable decision sets — a *global*, pattern-level
/// explanation: a small set of independent conjunctive rules summarising a
/// labelled dataset. Candidate rules come from Apriori-style frequent
/// predicate mining; selection greedily optimises the IDS objective
/// (coverage + precision - overlap - size). Being global, a given instance
/// may be covered by no rule at all — the failure mode of Section 7.2.
class Ids {
 public:
  struct Options {
    /// Number of rules to select; 0 = keep every mined candidate
    /// (the unrestricted, slow configuration of the case study).
    size_t max_rules = 8;
    double min_support = 0.01;     // candidate support threshold
    double min_precision = 0.55;   // candidate precision threshold
    size_t max_antecedent = 2;     // predicates per rule
    // Objective weights.
    double coverage_weight = 1.0;
    double precision_weight = 2.0;
    double overlap_penalty = 0.5;
    double size_penalty = 0.2;
  };

  /// Mines and selects a rule set summarising `dataset`.
  static Result<Ids> Summarize(const Dataset& dataset,
                               const Options& options);

  const std::vector<IdsRule>& rules() const { return rules_; }

  /// First selected rule covering x, or -1 when none does.
  int CoveringRule(const Instance& x) const;

  /// Size-ranked candidate count before selection (for reporting).
  size_t candidates_mined() const { return candidates_mined_; }

 private:
  std::vector<IdsRule> rules_;
  size_t candidates_mined_ = 0;
};

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_IDS_H_
