#include "explain/kernel_shap.h"

#include <cmath>

#include "explain/linalg.h"

namespace cce::explain {
namespace {

double LogChoose(size_t n, size_t k) {
  return std::lgamma(static_cast<double>(n + 1)) -
         std::lgamma(static_cast<double>(k + 1)) -
         std::lgamma(static_cast<double>(n - k + 1));
}

// Shapley kernel weight for a coalition of size k out of n players.
double ShapleyKernel(size_t n, size_t k) {
  if (k == 0 || k == n) return 1e6;  // constraints approximated by weight
  double log_w = std::log(static_cast<double>(n - 1)) - LogChoose(n, k) -
                 std::log(static_cast<double>(k)) -
                 std::log(static_cast<double>(n - k));
  return std::exp(log_w);
}

}  // namespace

KernelShap::KernelShap(const Model* model, const Dataset* reference,
                       const Options& options)
    : model_(model), sampler_(reference), options_(options),
      rng_(options.seed) {}

double KernelShap::CoalitionValue(const Instance& x,
                                  const std::vector<bool>& keep) {
  double total = 0.0;
  for (int s = 0; s < options_.background_samples; ++s) {
    Instance z = sampler_.Sample(x, keep, &rng_);
    total += model_->Score(z);
  }
  return total / options_.background_samples;
}

Result<std::vector<double>> KernelShap::ImportanceScores(const Instance& x) {
  const size_t n = x.size();
  if (n == 0) return std::vector<double>{};
  if (n == 1) {
    // One player takes the whole payoff difference.
    double empty = CoalitionValue(x, {false});
    double full = CoalitionValue(x, {true});
    return std::vector<double>{full - empty};
  }

  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  std::vector<double> weights;

  auto add_coalition = [&](const std::vector<bool>& keep, double weight) {
    std::vector<double> row(n + 1, 0.0);
    for (size_t f = 0; f < n; ++f) row[f] = keep[f] ? 1.0 : 0.0;
    row[n] = 1.0;
    rows.push_back(std::move(row));
    targets.push_back(CoalitionValue(x, keep));
    weights.push_back(weight);
  };

  // The empty and full coalitions anchor phi_0 and the efficiency
  // constraint (enforced softly via their large kernel weight).
  add_coalition(std::vector<bool>(n, false), ShapleyKernel(n, 0));
  add_coalition(std::vector<bool>(n, true), ShapleyKernel(n, n));

  for (int c = 0; c < options_.num_coalitions; ++c) {
    // Sample the coalition size ~ the kernel's size profile (heavier at the
    // extremes), then a uniform subset of that size.
    size_t k = 1 + rng_.Uniform(n - 1);
    std::vector<bool> keep(n, false);
    for (size_t idx : rng_.SampleWithoutReplacement(n, k)) keep[idx] = true;
    add_coalition(keep, ShapleyKernel(n, k));
  }

  Result<std::vector<double>> beta =
      SolveWeightedRidge(rows, targets, weights, options_.ridge_lambda);
  if (!beta.ok()) return beta.status();
  beta->resize(n);
  return beta;
}

}  // namespace cce::explain
