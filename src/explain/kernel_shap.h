#ifndef CCE_EXPLAIN_KERNEL_SHAP_H_
#define CCE_EXPLAIN_KERNEL_SHAP_H_

#include "common/random.h"
#include "core/model.h"
#include "explain/explainer.h"
#include "explain/perturbation.h"

namespace cce::explain {

/// KernelSHAP [60]: model-agnostic Shapley-value estimation via weighted
/// linear regression over sampled coalitions, with the Shapley kernel
///   w(S) = (n - 1) / (C(n,|S|) * |S| * (n - |S|)).
/// Coalition values are Monte-Carlo estimates: features outside the
/// coalition are integrated out by sampling reference rows.
class KernelShap : public ImportanceExplainer {
 public:
  struct Options {
    int num_coalitions = 300;
    int background_samples = 8;  // reference draws per coalition evaluation
    double ridge_lambda = 1e-3;
    uint64_t seed = 13;
  };

  KernelShap(const Model* model, const Dataset* reference,
             const Options& options);

  std::string name() const override { return "SHAP"; }
  Result<std::vector<double>> ImportanceScores(const Instance& x) override;

 private:
  /// Monte-Carlo value v(S): expected positive-class score with features in
  /// S fixed to x and the rest drawn from the reference distribution.
  double CoalitionValue(const Instance& x, const std::vector<bool>& keep);

  const Model* model_;
  PerturbationSampler sampler_;
  Options options_;
  Rng rng_;
};

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_KERNEL_SHAP_H_
