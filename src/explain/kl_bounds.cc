#include "explain/kl_bounds.h"

#include <algorithm>
#include <cmath>

namespace cce::explain {
namespace {

constexpr double kEps = 1e-12;
constexpr int kBisectionSteps = 60;

}  // namespace

double KlBernoulli(double p, double q) {
  p = std::clamp(p, 0.0, 1.0);
  q = std::clamp(q, kEps, 1.0 - kEps);
  double kl = 0.0;
  if (p > 0.0) kl += p * std::log(p / q);
  if (p < 1.0) kl += (1.0 - p) * std::log((1.0 - p) / (1.0 - q));
  return kl;
}

double KlUpperBound(double p_hat, size_t n, double beta) {
  if (n == 0) return 1.0;
  double budget = beta / static_cast<double>(n);
  double lo = std::clamp(p_hat, 0.0, 1.0);
  double hi = 1.0;
  for (int step = 0; step < kBisectionSteps; ++step) {
    double mid = 0.5 * (lo + hi);
    if (KlBernoulli(p_hat, mid) > budget) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

double KlLowerBound(double p_hat, size_t n, double beta) {
  if (n == 0) return 0.0;
  double budget = beta / static_cast<double>(n);
  double lo = 0.0;
  double hi = std::clamp(p_hat, 0.0, 1.0);
  for (int step = 0; step < kBisectionSteps; ++step) {
    double mid = 0.5 * (lo + hi);
    if (KlBernoulli(p_hat, mid) > budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double LucbBeta(size_t n, double delta) {
  double t = std::max<double>(1.0, static_cast<double>(n));
  // log(1/delta) + extra slack growing with the sample count, as in the
  // Anchor reference implementation's simplified schedule.
  return std::log(1.0 / delta) + std::log(1.0 + std::log(t));
}

}  // namespace cce::explain
