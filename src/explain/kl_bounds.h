#ifndef CCE_EXPLAIN_KL_BOUNDS_H_
#define CCE_EXPLAIN_KL_BOUNDS_H_

#include <cstddef>

namespace cce::explain {

/// Bernoulli KL confidence bounds — the machinery behind Anchor's KL-LUCB
/// best-arm identification [75, 37]. Tighter than Hoeffding for proportions
/// near 0 or 1, which is exactly where anchor precisions live.

/// KL divergence KL(p || q) between Bernoulli(p) and Bernoulli(q).
/// Defined (by limits) for p in [0,1]; q is clamped away from {0,1}.
double KlBernoulli(double p, double q);

/// Upper confidence bound: the largest q >= p_hat with
/// n * KL(p_hat || q) <= beta (found by bisection).
double KlUpperBound(double p_hat, size_t n, double beta);

/// Lower confidence bound: the smallest q <= p_hat with
/// n * KL(p_hat || q) <= beta.
double KlLowerBound(double p_hat, size_t n, double beta);

/// The exploration rate beta = log(1/delta) + log-ish terms, following the
/// simplified schedule used by Anchor's reference implementation.
double LucbBeta(size_t n, double delta);

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_KL_BOUNDS_H_
