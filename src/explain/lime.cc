#include "explain/lime.h"

#include <cmath>

#include "explain/linalg.h"

namespace cce::explain {

Lime::Lime(const Model* model, const Dataset* reference,
           const Options& options)
    : model_(model), sampler_(reference), options_(options),
      rng_(options.seed) {}

Result<std::vector<double>> Lime::ImportanceScores(const Instance& x) {
  const size_t n = x.size();
  const Label y0 = model_->Predict(x);

  // Design matrix: one indicator column per feature plus an intercept.
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  std::vector<double> weights;
  rows.reserve(options_.num_samples + 1);

  const double width = options_.kernel_width * std::sqrt(
      static_cast<double>(n));

  // Anchor row: the instance itself with full weight.
  {
    std::vector<double> row(n + 1, 1.0);
    rows.push_back(std::move(row));
    targets.push_back(1.0);
    weights.push_back(1.0);
  }
  for (int s = 0; s < options_.num_samples; ++s) {
    std::vector<bool> keep = sampler_.RandomMask(n, options_.keep_prob,
                                                 &rng_);
    Instance z = sampler_.Sample(x, keep, &rng_);
    double hamming = 0.0;
    std::vector<double> row(n + 1, 0.0);
    for (size_t f = 0; f < n; ++f) {
      row[f] = keep[f] ? 1.0 : 0.0;
      if (!keep[f]) hamming += 1.0;
    }
    row[n] = 1.0;  // intercept
    double distance = std::sqrt(hamming);
    double weight = std::exp(-(distance * distance) / (width * width));
    rows.push_back(std::move(row));
    // Target: agreement with the prediction being explained.
    targets.push_back(model_->Predict(z) == y0 ? 1.0 : 0.0);
    weights.push_back(weight);
  }

  Result<std::vector<double>> beta =
      SolveWeightedRidge(rows, targets, weights, options_.ridge_lambda);
  if (!beta.ok()) return beta.status();
  beta->resize(n);  // drop the intercept
  return beta;
}

}  // namespace cce::explain
