#ifndef CCE_EXPLAIN_LIME_H_
#define CCE_EXPLAIN_LIME_H_

#include <memory>

#include "common/random.h"
#include "core/model.h"
#include "explain/explainer.h"
#include "explain/perturbation.h"

namespace cce::explain {

/// LIME [74]: fits a locally-weighted linear surrogate over binary
/// "feature kept" indicators of perturbed neighbours; the surrogate
/// coefficients are the feature importances.
class Lime : public ImportanceExplainer {
 public:
  struct Options {
    int num_samples = 500;
    double keep_prob = 0.5;      // per-feature keep probability
    double kernel_width = 0.75;  // of sqrt(n), exponential kernel
    double ridge_lambda = 1.0;
    uint64_t seed = 11;
  };

  /// `model` and `reference` must outlive the explainer.
  Lime(const Model* model, const Dataset* reference, const Options& options);

  std::string name() const override { return "LIME"; }
  Result<std::vector<double>> ImportanceScores(const Instance& x) override;

 private:
  const Model* model_;
  PerturbationSampler sampler_;
  Options options_;
  Rng rng_;
};

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_LIME_H_
