#include "explain/linalg.h"

#include <cmath>

namespace cce::explain {

Result<std::vector<double>> SolveSpd(std::vector<std::vector<double>> a,
                                     std::vector<double> b) {
  const size_t n = a.size();
  if (n == 0 || b.size() != n) {
    return Status::InvalidArgument("bad system dimensions");
  }
  // Cholesky factorisation A = L L^T (lower triangle stored in `a`).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (size_t k = 0; k < j; ++k) sum -= a[i][k] * a[j][k];
      if (i == j) {
        if (sum <= 0.0) {
          return Status::InvalidArgument("matrix not positive definite");
        }
        a[i][i] = std::sqrt(sum);
      } else {
        a[i][j] = sum / a[j][j];
      }
    }
  }
  // Forward solve L z = b.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a[i][k] * b[k];
    b[i] = sum / a[i][i];
  }
  // Backward solve L^T x = z.
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[k][i] * b[k];
    b[i] = sum / a[i][i];
  }
  return b;
}

Result<std::vector<double>> SolveWeightedRidge(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets, const std::vector<double>& weights,
    double lambda) {
  const size_t rows = features.size();
  if (rows == 0 || targets.size() != rows || weights.size() != rows) {
    return Status::InvalidArgument("inconsistent regression inputs");
  }
  const size_t cols = features[0].size();
  if (cols == 0) return Status::InvalidArgument("no regression columns");

  // Normal equations: (X^T W X + lambda I) beta = X^T W y.
  std::vector<std::vector<double>> gram(cols,
                                        std::vector<double>(cols, 0.0));
  std::vector<double> rhs(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const std::vector<double>& x = features[r];
    double w = weights[r];
    for (size_t i = 0; i < cols; ++i) {
      double wx = w * x[i];
      rhs[i] += wx * targets[r];
      for (size_t j = i; j < cols; ++j) gram[i][j] += wx * x[j];
    }
  }
  for (size_t i = 0; i < cols; ++i) {
    gram[i][i] += lambda;
    for (size_t j = 0; j < i; ++j) gram[i][j] = gram[j][i];
  }
  return SolveSpd(std::move(gram), std::move(rhs));
}

}  // namespace cce::explain
