#ifndef CCE_EXPLAIN_LINALG_H_
#define CCE_EXPLAIN_LINALG_H_

#include <vector>

#include "common/status.h"

namespace cce::explain {

/// Minimal dense linear algebra for the surrogate-model explainers.

/// Solves the weighted ridge regression
///   min_beta  sum_i w_i (y_i - x_i . beta)^2 + lambda ||beta||^2
/// where `features` is row-major (rows x cols). Returns beta (cols values).
Result<std::vector<double>> SolveWeightedRidge(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets, const std::vector<double>& weights,
    double lambda);

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky; InvalidArgument on non-SPD input.
Result<std::vector<double>> SolveSpd(std::vector<std::vector<double>> a,
                                     std::vector<double> b);

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_LINALG_H_
