#include "explain/perturbation.h"

#include "common/logging.h"

namespace cce::explain {

PerturbationSampler::PerturbationSampler(const Dataset* reference)
    : reference_(reference) {
  CCE_CHECK(reference_ != nullptr);
  CCE_CHECK(!reference_->empty());
}

Instance PerturbationSampler::Sample(const Instance& x,
                                     const std::vector<bool>& keep,
                                     Rng* rng) const {
  CCE_CHECK(keep.size() == x.size());
  Instance out = x;
  for (FeatureId f = 0; f < x.size(); ++f) {
    if (keep[f]) continue;
    size_t row = rng->Uniform(reference_->size());
    out[f] = reference_->value(row, f);
  }
  return out;
}

std::vector<bool> PerturbationSampler::RandomMask(size_t n, double keep_prob,
                                                  Rng* rng) const {
  std::vector<bool> mask(n);
  for (size_t i = 0; i < n; ++i) mask[i] = rng->Bernoulli(keep_prob);
  return mask;
}

}  // namespace cce::explain
