#ifndef CCE_EXPLAIN_PERTURBATION_H_
#define CCE_EXPLAIN_PERTURBATION_H_

#include <vector>

#include "common/random.h"
#include "core/dataset.h"
#include "core/types.h"

namespace cce::explain {

/// Draws perturbed neighbours of an instance from the empirical training
/// distribution — the sampling backbone shared by LIME, KernelSHAP, Anchor
/// and the faithfulness metric. Masked-out features take the value of a
/// random reference row (per-feature, preserving marginals).
class PerturbationSampler {
 public:
  /// `reference` provides the empirical distribution; it must stay alive.
  explicit PerturbationSampler(const Dataset* reference);

  /// Returns a copy of `x` where feature f keeps x[f] iff keep[f]; other
  /// features are resampled from the reference marginal.
  Instance Sample(const Instance& x, const std::vector<bool>& keep,
                  Rng* rng) const;

  /// Random binary mask with each bit kept with probability `keep_prob`.
  std::vector<bool> RandomMask(size_t n, double keep_prob, Rng* rng) const;

  const Dataset& reference() const { return *reference_; }

 private:
  const Dataset* reference_;
};

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_PERTURBATION_H_
