#include "explain/tree_cnf.h"

#include "common/logging.h"

namespace cce::explain {

TreeCnfEncoder::TreeCnfEncoder(const ml::RegressionTree& tree,
                               const Schema& schema, double base_score,
                               Label y0) {
  const size_t n = schema.num_features();
  value_vars_.resize(n);
  for (FeatureId f = 0; f < n; ++f) {
    size_t domain = schema.DomainSize(f);
    value_vars_[f].resize(domain);
    std::vector<sat::Lit> one_of;
    one_of.reserve(domain);
    for (ValueId v = 0; v < domain; ++v) {
      value_vars_[f][v] = formula_.NewVar();
      one_of.push_back(sat::Pos(value_vars_[f][v]));
    }
    if (!one_of.empty()) formula_.AddExactlyOne(one_of);
  }

  // Walk root-to-leaf paths, collecting edge constraints. An edge
  // "f <= t" (left) constrains the value to [0, t]; "f > t" (right) to
  // (t, domain).
  struct Frame {
    int node;
    std::vector<std::pair<FeatureId, std::pair<ValueId, ValueId>>> ranges;
  };
  const auto& nodes = tree.nodes();
  CCE_CHECK(!nodes.empty());
  std::vector<sat::Lit> opposing_leaves;
  std::vector<Frame> stack;
  stack.push_back(Frame{0, {}});
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const ml::TreeNode& node = nodes[frame.node];
    if (!node.is_leaf) {
      size_t domain = schema.DomainSize(node.feature);
      Frame left = frame;
      left.node = node.left;
      left.ranges.push_back({node.feature, {0, node.threshold}});
      stack.push_back(std::move(left));
      Frame right = std::move(frame);
      right.node = node.right;
      right.ranges.push_back(
          {node.feature,
           {node.threshold + 1, static_cast<ValueId>(domain - 1)}});
      stack.push_back(std::move(right));
      continue;
    }
    // Leaf: only leaves predicting the *opposite* label matter.
    Label leaf_label = (base_score + node.value) > 0.0 ? 1 : 0;
    if (leaf_label == y0) continue;
    sat::Var selector = formula_.NewVar();
    opposing_leaves.push_back(sat::Pos(selector));
    for (const auto& [feature, range] : frame.ranges) {
      // selector -> (value in [lo, hi]).
      sat::Clause clause;
      clause.push_back(sat::Neg(selector));
      for (ValueId v = range.first; v <= range.second; ++v) {
        clause.push_back(sat::Pos(value_vars_[feature][v]));
      }
      formula_.AddClause(std::move(clause));
    }
  }
  if (opposing_leaves.empty()) {
    // The tree cannot predict the opposite label at all: the query is
    // trivially UNSAT. Encode with an empty clause.
    formula_.AddClause({});
  } else {
    formula_.AddClause(opposing_leaves);
  }
}

std::vector<sat::Lit> TreeCnfEncoder::Assumptions(const Instance& x,
                                                  const FeatureSet& e) const {
  std::vector<sat::Lit> assumptions;
  assumptions.reserve(e.size());
  for (FeatureId f : e) {
    CCE_CHECK(f < value_vars_.size());
    CCE_CHECK(x[f] < value_vars_[f].size());
    assumptions.push_back(sat::Pos(value_vars_[f][x[f]]));
  }
  return assumptions;
}

sat::Var TreeCnfEncoder::ValueVar(FeatureId f, ValueId v) const {
  CCE_CHECK(f < value_vars_.size());
  CCE_CHECK(v < value_vars_[f].size());
  return value_vars_[f][v];
}

}  // namespace cce::explain
