#ifndef CCE_EXPLAIN_TREE_CNF_H_
#define CCE_EXPLAIN_TREE_CNF_H_

#include <vector>

#include "common/status.h"
#include "core/schema.h"
#include "core/types.h"
#include "ml/tree.h"
#include "sat/cnf.h"

namespace cce::explain {

/// CNF encoding of single-tree entailment queries, used to cross-validate
/// the branch-and-bound oracle of Xreason with the CDCL solver (the
/// original Xreason is (Max)SAT-based).
///
/// Encoding: one boolean per (feature, value) with exactly-one-per-feature
/// constraints; one selector per leaf whose sign opposes the target label,
/// implied to its path constraints; a clause asserting some opposing leaf
/// is reached. The query "does fixing E to x's values entail label y0?" is
/// then UNSAT under assumption literals pinning x[E].
class TreeCnfEncoder {
 public:
  /// Builds the encoding for `tree` (margin sign semantics: label 1 iff
  /// base + leaf > 0) against prediction `y0`.
  TreeCnfEncoder(const ml::RegressionTree& tree, const Schema& schema,
                 double base_score, Label y0);

  const sat::CnfFormula& formula() const { return formula_; }

  /// Assumption literals pinning x's values on the features of `e`.
  std::vector<sat::Lit> Assumptions(const Instance& x,
                                    const FeatureSet& e) const;

  /// Variable encoding feature `f` taking value `v`.
  sat::Var ValueVar(FeatureId f, ValueId v) const;

 private:
  sat::CnfFormula formula_;
  std::vector<std::vector<sat::Var>> value_vars_;  // per feature, per value
};

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_TREE_CNF_H_
