#include "explain/xreason.h"

#include <algorithm>

#include "common/logging.h"

namespace cce::explain {

Xreason::Xreason(const ml::Gbdt* model, std::shared_ptr<const Schema> schema,
                 const Options& options)
    : model_(model), schema_(std::move(schema)), options_(options) {
  CCE_CHECK(model_ != nullptr);
  used_features_ = model_->UsedFeatures();
  tree_use_count_.assign(schema_->num_features(), 0);
  for (const ml::RegressionTree& tree : model_->trees()) {
    for (FeatureId f : tree.UsedFeatures()) ++tree_use_count_[f];
  }
}

bool Xreason::ExistsFlip(std::vector<int64_t>* fixed, Label y0,
                         size_t* nodes, bool* aborted) const {
  if (++*nodes > options_.max_nodes) {
    *aborted = true;
    return true;  // conservative: assume a flip is possible
  }

  // Margin bounds from per-tree reachable leaves. lo <= true min margin,
  // hi >= true max margin over all completions of `fixed`.
  double lo = model_->base_score();
  double hi = model_->base_score();
  for (const ml::RegressionTree& tree : model_->trees()) {
    auto [tree_lo, tree_hi] = tree.ReachableRange(*fixed);
    lo += tree_lo;
    hi += tree_hi;
  }

  if (y0 == 1) {
    if (lo > 0.0) return false;  // every completion keeps margin > 0
    if (hi <= 0.0) return true;  // every completion flips
  } else {
    if (hi <= 0.0) return false;
    if (lo > 0.0) return true;
  }

  // Undecided: branch on the free used feature read by the most trees.
  FeatureId branch_feature = 0;
  size_t best_count = 0;
  bool found = false;
  for (FeatureId f : used_features_) {
    if ((*fixed)[f] >= 0) continue;
    if (!found || tree_use_count_[f] > best_count) {
      branch_feature = f;
      best_count = tree_use_count_[f];
      found = true;
    }
  }
  if (!found) {
    // All features the ensemble reads are fixed, yet the relaxation is
    // undecided — impossible since bounds are exact on full assignments.
    // Evaluate the margin sign directly as a safeguard.
    return y0 == 1 ? lo <= 0.0 : hi > 0.0;
  }

  const size_t domain = schema_->DomainSize(branch_feature);
  for (size_t v = 0; v < domain; ++v) {
    (*fixed)[branch_feature] = static_cast<int64_t>(v);
    if (ExistsFlip(fixed, y0, nodes, aborted)) {
      (*fixed)[branch_feature] = -1;
      return true;
    }
  }
  (*fixed)[branch_feature] = -1;
  return false;
}

bool Xreason::Entails(const Instance& x, const FeatureSet& e) const {
  ++oracle_calls_;
  const Label y0 = model_->Predict(x);
  std::vector<int64_t> fixed(schema_->num_features(), -1);
  for (FeatureId f : e) fixed[f] = static_cast<int64_t>(x[f]);
  size_t nodes = 0;
  bool aborted = false;
  bool flip = ExistsFlip(&fixed, y0, &nodes, &aborted);
  return !flip;
}

FeatureSet Xreason::QuickXplain(const Instance& x,
                                const FeatureSet& background,
                                const FeatureSet& candidates,
                                bool background_may_suffice) const {
  if (candidates.empty()) return {};
  if (background_may_suffice && Entails(x, background)) return {};
  if (candidates.size() == 1) return candidates;

  size_t half = candidates.size() / 2;
  FeatureSet first(candidates.begin(),
                   candidates.begin() + static_cast<long>(half));
  FeatureSet second(candidates.begin() + static_cast<long>(half),
                    candidates.end());

  FeatureSet with_first = background;
  for (FeatureId f : first) FeatureSetInsert(&with_first, f);
  FeatureSet need_second =
      QuickXplain(x, with_first, second, !first.empty());

  FeatureSet with_second = background;
  for (FeatureId f : need_second) FeatureSetInsert(&with_second, f);
  FeatureSet need_first =
      QuickXplain(x, with_second, first, !need_second.empty());

  for (FeatureId f : need_second) FeatureSetInsert(&need_first, f);
  return need_first;
}

Result<FeatureSet> Xreason::ExplainFeatures(const Instance& x,
                                            size_t /*target_size*/) {
  if (x.size() != schema_->num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  // Only features the ensemble actually reads can influence the prediction;
  // everything else is trivially removable.
  FeatureSet explanation(used_features_.begin(), used_features_.end());

  if (options_.minimization == Minimization::kQuickXplain) {
    FeatureSet minimal = QuickXplain(x, {}, explanation,
                                     /*background_may_suffice=*/false);
    // Safety net for aborted oracle calls (QuickXplain's divide-and-
    // conquer assumes exact answers): fall back to the full feature set if
    // the result does not verifiably entail.
    if (!Entails(x, minimal)) return explanation;
    return minimal;
  }

  // Deletion-based prime-implicant computation: drop features whose removal
  // preserves entailment. Try widest-domain features first — removing them
  // relaxes the most.
  std::vector<FeatureId> order(explanation);
  std::sort(order.begin(), order.end(), [&](FeatureId a, FeatureId b) {
    return schema_->DomainSize(a) > schema_->DomainSize(b);
  });
  for (FeatureId f : order) {
    FeatureSet candidate;
    candidate.reserve(explanation.size() - 1);
    for (FeatureId g : explanation) {
      if (g != f) candidate.push_back(g);
    }
    if (Entails(x, candidate)) explanation = std::move(candidate);
  }
  return explanation;
}

}  // namespace cce::explain
