#ifndef CCE_EXPLAIN_XREASON_H_
#define CCE_EXPLAIN_XREASON_H_

#include <memory>

#include "core/schema.h"
#include "explain/explainer.h"
#include "ml/gbdt.h"

namespace cce::explain {

/// Xreason [47]: *formal* feature explanation of a tree-ensemble model.
/// The returned explanation E is a prime implicant: for EVERY instance x'
/// in the whole feature space, x'[E] = x[E] implies M(x') = M(x), and no
/// proper subset of E has this property.
///
/// Implementation: deletion-based minimisation driven by a sound-and-
/// complete branch-and-bound entailment oracle over the ensemble (per-tree
/// reachable-leaf margin bounds). The original uses MaxSAT; our CNF/SAT
/// path (tree_cnf.h) validates this oracle on single trees. Like the
/// original, the explanation size is not tunable and the model structure
/// must be known — the two restrictions CCE removes.
class Xreason : public FeatureExplainer {
 public:
  /// Strategy for shrinking the explanation to a prime implicant.
  enum class Minimization {
    kDeletion,     // linear scan: one oracle call per feature
    kQuickXplain,  // divide-and-conquer: fewer calls for small explanations
  };

  struct Options {
    /// Abort the oracle after this many search nodes; an aborted check is
    /// treated as "may flip", keeping the explanation sound (possibly less
    /// succinct).
    size_t max_nodes = 5'000'000;
    Minimization minimization = Minimization::kDeletion;
  };

  /// `model` and `schema` must outlive the explainer.
  Xreason(const ml::Gbdt* model, std::shared_ptr<const Schema> schema,
          const Options& options);

  std::string name() const override { return "Xreason"; }

  /// `target_size` is ignored: formal explanations are not size-tunable
  /// (paper Section 7.1).
  Result<FeatureSet> ExplainFeatures(const Instance& x,
                                     size_t target_size) override;

  /// Entailment oracle: true iff fixing the features of `e` to x's values
  /// forces prediction M(x) over the entire feature space. Exposed for
  /// tests and the SAT cross-validation.
  bool Entails(const Instance& x, const FeatureSet& e) const;

  /// Oracle invocations since construction/reset (for the minimisation
  /// cost ablation).
  size_t oracle_calls() const { return oracle_calls_; }
  void ResetOracleCalls() { oracle_calls_ = 0; }

 private:
  /// QuickXplain: returns a minimal subset E of `candidates` such that
  /// `background` ∪ E entails the prediction, assuming background ∪
  /// candidates does.
  FeatureSet QuickXplain(const Instance& x, const FeatureSet& background,
                         const FeatureSet& candidates,
                         bool background_may_suffice) const;
  /// True iff some completion of `fixed` flips the prediction away from y0.
  /// Sets *aborted when the node budget runs out.
  bool ExistsFlip(std::vector<int64_t>* fixed, Label y0, size_t* nodes,
                  bool* aborted) const;

  const ml::Gbdt* model_;
  std::shared_ptr<const Schema> schema_;
  Options options_;
  std::vector<FeatureId> used_features_;  // features the ensemble reads
  std::vector<size_t> tree_use_count_;    // branching heuristic
  mutable size_t oracle_calls_ = 0;
};

}  // namespace cce::explain

#endif  // CCE_EXPLAIN_XREASON_H_
