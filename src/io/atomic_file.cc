#include "io/atomic_file.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace cce::io {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

/// Flushes file *data* to disk. No-op where fsync is unavailable.
Status FsyncPath(const std::string& path) {
#ifndef _WIN32
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open", path));
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError(ErrnoMessage("fsync failed for", path));
#else
  (void)path;
#endif
  return Status::Ok();
}

/// Directory part of `path` ("." when there is no separator).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status SyncDirectory(const std::string& dir) {
#ifndef _WIN32
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open dir", dir));
  int rc = ::fsync(fd);
  ::close(fd);
  // Some filesystems reject fsync on directories (EINVAL); the rename is
  // still atomic there, only the power-cut guarantee weakens.
  if (rc != 0 && errno != EINVAL) {
    return Status::IoError(ErrnoMessage("fsync failed for dir", dir));
  }
#else
  (void)dir;
#endif
  return Status::Ok();
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
#ifndef _WIN32
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return Status::Ok();
    return Status::IoError("'" + path + "' exists and is not a directory");
  }
  if (::mkdir(path.c_str(), 0775) != 0 && errno != EEXIST) {
    return Status::IoError(ErrnoMessage("cannot create directory", path));
  }
#endif
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer) {
  if (path.empty()) return Status::InvalidArgument("empty file path");
  // Unique per process + call so concurrent writers to different targets
  // (or a crashed predecessor's leftovers) never collide.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." +
#ifndef _WIN32
      std::to_string(::getpid()) + "." +
#endif
      std::to_string(counter.fetch_add(1));

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp + " for writing");
    }
    Status written = writer(&out);
    if (written.ok()) {
      out.flush();
      // A full disk commonly surfaces only here: the stream buffered the
      // payload and the flush is what hits ENOSPC.
      if (!out.good()) {
        written = Status::IoError("flush failed writing " + tmp +
                                  " (disk full?)");
      }
    }
    if (!written.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return written;
    }
  }

  Status synced = FsyncPath(tmp);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status failed = Status::IoError(
        ErrnoMessage("rename to", path));
    std::remove(tmp.c_str());
    return failed;
  }
  return SyncDirectory(DirName(path));
}

}  // namespace cce::io
