#include "io/atomic_file.h"

#include <atomic>
#include <ostream>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace cce::io {
namespace {

/// Directory part of `path` ("." when there is no separator).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool IsAtomicTempName(const std::string& name) {
  // "<target>.tmp.<suffix>" with a non-empty target and suffix; the suffix
  // layout (pid.counter) is deliberately not parsed so orphans from older
  // naming schemes still match.
  const size_t marker = name.find(".tmp.");
  return marker != std::string::npos && marker > 0 &&
         marker + 5 < name.size();
}

Status SyncDirectory(const std::string& dir) {
  return Env::Default()->SyncDir(dir);
}

Status EnsureDirectory(const std::string& path) {
  return Env::Default()->CreateDir(path);
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       const std::function<Status(std::ostream*)>& writer) {
  if (path.empty()) return Status::InvalidArgument("empty file path");
  if (env == nullptr) env = Env::Default();
  // Unique per process + call so concurrent writers to different targets
  // (or a crashed predecessor's leftovers) never collide.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." +
#ifndef _WIN32
      std::to_string(::getpid()) + "." +
#endif
      std::to_string(counter.fetch_add(1));

  // The writer streams into memory first; all disk I/O then goes through
  // the env so fault injection sees every byte.
  std::ostringstream buffer;
  CCE_RETURN_IF_ERROR(writer(&buffer));
  const std::string content = buffer.str();

  auto opened = env->NewTruncatedFile(tmp);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<WritableFile> file = std::move(opened).value();
  Status written = file->Append(content);
  if (written.ok()) written = file->Sync();
  if (written.ok()) written = file->Close();
  if (!written.ok()) {
    file.reset();
    (void)env->RemoveFile(tmp);
    return written;
  }
  Status renamed = env->RenameFile(tmp, path);
  if (!renamed.ok()) {
    (void)env->RemoveFile(tmp);
    return renamed;
  }
  return env->SyncDir(DirName(path));
}

Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer) {
  return AtomicWriteFile(Env::Default(), path, writer);
}

}  // namespace cce::io
