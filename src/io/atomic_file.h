#ifndef CCE_IO_ATOMIC_FILE_H_
#define CCE_IO_ATOMIC_FILE_H_

#include <functional>
#include <iosfwd>
#include <string>

#include "common/status.h"
#include "io/env.h"

namespace cce::io {

/// Atomically replaces the file at `path` with whatever `writer` streams:
/// the content goes to a unique temp file in the same directory, which is
/// flushed, fsync(2)ed, closed and rename(2)d over `path`; the directory
/// entry is fsynced as well so the rename itself survives a power cut. On
/// any failure (including a full disk surfacing at the write or sync) the
/// temp file is removed, `path` keeps its previous content, and the
/// writer's error or an IoError is returned.
///
/// Every file writer in the repo routes through this helper: a reader can
/// never observe a half-written snapshot, model or dataset. All I/O goes
/// through `env`, so tests can inject ENOSPC/EIO on the snapshot path.
Status AtomicWriteFile(Env* env, const std::string& path,
                       const std::function<Status(std::ostream*)>& writer);

/// As above on Env::Default() — the common production spelling.
Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer);

/// Creates `path` as a directory if it does not exist (parents must
/// already exist). OK when the directory is already present; IoError when
/// creation fails or `path` exists but is not a directory.
Status EnsureDirectory(const std::string& path);

/// Flushes the directory entry metadata of `dir` to disk (fsync on the
/// directory fd). Best effort on platforms without directory fsync.
Status SyncDirectory(const std::string& dir);

/// True when `name` (a bare file name, not a path) matches the temp-file
/// pattern AtomicWriteFile uses ("<target>.tmp.<pid>.<counter>") — the
/// startup sweep uses this to unlink orphans a crashed writer left between
/// create and rename.
bool IsAtomicTempName(const std::string& name);

}  // namespace cce::io

#endif  // CCE_IO_ATOMIC_FILE_H_
