#include "io/context_wal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "common/crc32c.h"

namespace cce::io {
namespace {

constexpr char kMagic[8] = {'C', 'C', 'E', 'W', 'A', 'L', '\x01', '\n'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 24;
/// Bytes before the payload in every frame: u32 length + u32 masked CRC.
constexpr size_t kFrameOverhead = 8;
/// Fixed payload prefix: u64 seq + u32 label + u32 value_count.
constexpr size_t kPayloadFixed = 16;
/// Upper bound on a frame payload; anything larger is corruption, not a
/// record (16 MiB ≈ a 4M-feature instance).
constexpr uint32_t kMaxPayload = 1u << 24;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFFu));
  out->push_back(static_cast<char>((v >> 8) & 0xFFu));
  out->push_back(static_cast<char>((v >> 16) & 0xFFu));
  out->push_back(static_cast<char>((v >> 24) & 0xFFu));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

std::string EncodeHeader(uint64_t base) {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU64(&header, base);
  PutU32(&header,
         crc32c::Mask(crc32c::Value(header.data(), header.size())));
  return header;
}

/// Parses the header; returns base_recorded or nullopt-ish via ok flag.
bool DecodeHeader(const std::string& content, uint64_t* base) {
  if (content.size() < kHeaderSize) return false;
  if (std::memcmp(content.data(), kMagic, sizeof(kMagic)) != 0) return false;
  if (GetU32(content.data() + 8) != kVersion) return false;
  const uint32_t stored = GetU32(content.data() + 20);
  if (crc32c::Unmask(stored) !=
      crc32c::Value(content.data(), kHeaderSize - 4)) {
    return false;
  }
  *base = GetU64(content.data() + 12);
  return true;
}

}  // namespace

ContextWal::ContextWal(std::string path, const Options& options)
    : path_(std::move(path)), options_(options) {}

ContextWal::~ContextWal() {
#ifndef _WIN32
  // Deliberately no fsync: durability comes from the sync policy, so a
  // destructor-skipping crash and a clean shutdown are indistinguishable.
  if (fd_ >= 0) ::close(fd_);
#endif
}

Result<std::unique_ptr<ContextWal>> ContextWal::Open(
    const std::string& path, const Options& options, const ReplayFn& fn,
    RecoveryStats* stats) {
#ifdef _WIN32
  return Status::Unimplemented("ContextWal requires POSIX file primitives");
#else
  if (path.empty()) return Status::InvalidArgument("empty wal path");
  RecoveryStats local;
  RecoveryStats* out = stats != nullptr ? stats : &local;
  *out = RecoveryStats{};

  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::string buffer((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
      content = std::move(buffer);
    }
  }

  uint64_t base = 0;
  const bool header_ok = DecodeHeader(content, &base);
  size_t valid_end = 0;
  if (header_ok) {
    out->base_recorded = base;
    size_t pos = kHeaderSize;
    uint64_t expected_seq = base;
    // Salvage the longest valid frame prefix; any failure below means a
    // torn or corrupt tail and stops the scan (never resurrect a record
    // past the first bad byte).
    while (true) {
      if (pos + kFrameOverhead > content.size()) break;
      const uint32_t len = GetU32(content.data() + pos);
      const uint32_t masked_crc = GetU32(content.data() + pos + 4);
      if (len < kPayloadFixed || len > kMaxPayload) break;
      if (pos + kFrameOverhead + len > content.size()) break;
      const char* payload = content.data() + pos + kFrameOverhead;
      if (crc32c::Unmask(masked_crc) != crc32c::Value(payload, len)) break;
      const uint64_t seq = GetU64(payload);
      const uint32_t label = GetU32(payload + 8);
      const uint32_t value_count = GetU32(payload + 12);
      if (len != kPayloadFixed + 4ull * value_count) break;
      // A checksum-valid frame out of sequence is a duplicated or
      // misplaced tail block (e.g. a replayed copy of the last frame).
      if (seq != expected_seq) break;
      Instance x(value_count);
      for (uint32_t i = 0; i < value_count; ++i) {
        x[i] = GetU32(payload + kPayloadFixed + 4 * i);
      }
      if (fn != nullptr) {
        CCE_RETURN_IF_ERROR(fn(x, static_cast<Label>(label)));
      }
      ++out->records_recovered;
      ++expected_seq;
      pos += kFrameOverhead + len;
    }
    valid_end = pos;
  }
  if (content.size() > valid_end) {
    out->bytes_discarded = content.size() - valid_end;
    // Everything past the first bad byte is unrecoverable; count the
    // corruption event as (at least) one lost record.
    ++out->records_dropped;
  }

  auto wal = std::unique_ptr<ContextWal>(new ContextWal(path, options));
  wal->fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (wal->fd_ < 0) {
    return Status::IoError("cannot open wal '" + path +
                           "': " + std::strerror(errno));
  }
  if (!header_ok) {
    // Missing, empty or header-corrupt log: restart the generation.
    CCE_RETURN_IF_ERROR(wal->Reset(0));
  } else {
    if (out->bytes_discarded > 0 &&
        ::ftruncate(wal->fd_, static_cast<off_t>(valid_end)) != 0) {
      return Status::IoError("cannot truncate corrupt wal tail of '" + path +
                             "': " + std::strerror(errno));
    }
    wal->size_ = valid_end;
    wal->base_ = base;
    wal->next_seq_ = base + out->records_recovered;
    if (out->bytes_discarded > 0) CCE_RETURN_IF_ERROR(wal->Sync());
  }
  return wal;
#endif
}

Status ContextWal::WriteHeader(uint64_t base) {
#ifndef _WIN32
  const std::string header = EncodeHeader(base);
  const ssize_t wrote = ::write(fd_, header.data(), header.size());
  if (wrote != static_cast<ssize_t>(header.size())) {
    return Status::IoError("cannot write wal header to '" + path_ +
                           "': " + std::strerror(errno));
  }
  size_ = kHeaderSize;
#endif
  return Status::Ok();
}

Status ContextWal::Append(const Instance& x, Label y) {
#ifdef _WIN32
  (void)x;
  (void)y;
  return Status::Unimplemented("ContextWal requires POSIX file primitives");
#else
  if (fd_ < 0) return Status::FailedPrecondition("wal is closed");
  if (x.size() > (kMaxPayload - kPayloadFixed) / 4) {
    return Status::InvalidArgument("instance too large for a wal frame");
  }
  std::string payload;
  payload.reserve(kPayloadFixed + 4 * x.size());
  PutU64(&payload, next_seq_);
  PutU32(&payload, y);
  PutU32(&payload, static_cast<uint32_t>(x.size()));
  for (ValueId v : x) PutU32(&payload, v);

  std::string frame;
  frame.reserve(kFrameOverhead + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame,
         crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  frame += payload;

  const ssize_t wrote = ::write(fd_, frame.data(), frame.size());
  if (wrote != static_cast<ssize_t>(frame.size())) {
    // Roll the file back to the last frame boundary so a failed append
    // (disk full, I/O error) cannot leave a torn frame behind.
    (void)::ftruncate(fd_, static_cast<off_t>(size_));
    return Status::IoError("wal append to '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  size_ += frame.size();
  ++next_seq_;
  ++appended_;
  if (options_.sync_every > 0 &&
      ++unsynced_appends_ >= options_.sync_every) {
    return Sync();
  }
  return Status::Ok();
#endif
}

Status ContextWal::Sync() {
#ifndef _WIN32
  if (fd_ < 0) return Status::FailedPrecondition("wal is closed");
  if (::fsync(fd_) != 0) {
    return Status::IoError("wal fsync of '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  ++fsyncs_;
  unsynced_appends_ = 0;
#endif
  return Status::Ok();
}

Status ContextWal::Reset(uint64_t base) {
#ifndef _WIN32
  if (fd_ < 0) return Status::FailedPrecondition("wal is closed");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError("cannot truncate wal '" + path_ +
                           "': " + std::strerror(errno));
  }
  size_ = 0;
  CCE_RETURN_IF_ERROR(WriteHeader(base));
  base_ = base;
  next_seq_ = base;
  unsynced_appends_ = 0;
  return Sync();
#else
  (void)base;
  return Status::Unimplemented("ContextWal requires POSIX file primitives");
#endif
}

}  // namespace cce::io
