#include "io/context_wal.h"

#include <utility>

#include "io/wal_segment.h"

namespace cce::io {

ContextWal::ContextWal(std::string path, const Options& options)
    : path_(std::move(path)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

ContextWal::~ContextWal() {
  // Deliberately no fsync: durability comes from the sync policy, so a
  // destructor-skipping crash and a clean shutdown are indistinguishable.
}

Result<std::unique_ptr<ContextWal>> ContextWal::Open(
    const std::string& path, const Options& options, const ReplayFn& fn,
    RecoveryStats* stats) {
  if (path.empty()) return Status::InvalidArgument("empty wal path");
  RecoveryStats local;
  RecoveryStats* out = stats != nullptr ? stats : &local;
  *out = RecoveryStats{};

  auto wal = std::unique_ptr<ContextWal>(new ContextWal(path, options));
  std::string content;
  {
    Status read = wal->env_->ReadFileToString(path, &content);
    if (!read.ok() && read.code() != StatusCode::kNotFound) return read;
  }

  // Shared salvage-prefix scan (io/wal_segment.h): the shipper and the
  // replica tailer read segments with exactly these rules, so what this
  // writer would recover and what a follower would apply never diverge.
  const WalSegmentView view = ScanWalSegment(content);
  if (view.header_ok) {
    out->base_recorded = view.base_recorded;
    out->records_recovered = view.frames.size();
    if (fn != nullptr) {
      for (const WalFrame& frame : view.frames) {
        CCE_RETURN_IF_ERROR(fn(frame.seq, frame.x, frame.y));
      }
    }
  }
  if (content.size() > view.valid_end) {
    out->bytes_discarded = content.size() - view.valid_end;
    // Everything past the first bad byte is unrecoverable; count the
    // corruption event as (at least) one lost record.
    ++out->records_dropped;
  }

  {
    auto opened = wal->env_->NewAppendableFile(path);
    if (!opened.ok()) return opened.status();
    wal->file_ = std::move(opened).value();
  }
  if (!view.header_ok) {
    // Missing, empty or header-corrupt log: restart the generation.
    CCE_RETURN_IF_ERROR(wal->Reset(0));
  } else {
    if (out->bytes_discarded > 0) {
      CCE_RETURN_IF_ERROR(wal->file_->Truncate(view.valid_end));
    }
    wal->size_ = view.valid_end;
    wal->base_ = view.base_recorded;
    wal->last_seq_ = view.last_seq;
    wal->has_seq_ = view.has_seq;
    if (out->bytes_discarded > 0) CCE_RETURN_IF_ERROR(wal->Sync());
  }
  return wal;
}

Status ContextWal::WriteHeader(uint64_t base) {
  const std::string header = EncodeWalHeader(base);
  CCE_RETURN_IF_ERROR(file_->Append(header));
  size_ = kWalHeaderSize;
  return Status::Ok();
}

Status ContextWal::Append(const Instance& x, Label y, uint64_t seq) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal is closed");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wal '" + path_ +
        "' is poisoned by a failed fsync; appends are refused until the "
        "log is rewritten (compaction)");
  }
  if (has_seq_ && seq <= last_seq_) {
    return Status::InvalidArgument(
        "wal sequence " + std::to_string(seq) +
        " is not greater than the last logged sequence " +
        std::to_string(last_seq_));
  }
  if (x.size() > (kWalMaxPayload - kWalPayloadFixed) / 4) {
    return Status::InvalidArgument("instance too large for a wal frame");
  }
  const std::string frame = EncodeWalFrame(x, y, seq);

  Status wrote = file_->Append(frame);
  if (!wrote.ok()) {
    // Roll the file back to the last frame boundary so a failed append
    // (disk full, I/O error) cannot leave a torn frame behind. If even
    // the rollback fails, a torn frame may be on disk — poison the log so
    // no later append claims durability on top of it.
    Status rolled_back = file_->Truncate(size_);
    if (!rolled_back.ok()) poisoned_ = true;
    return wrote;
  }
  size_ += frame.size();
  last_seq_ = seq;
  has_seq_ = true;
  ++appended_;
  if (options_.sync_every > 0 &&
      ++unsynced_appends_ >= options_.sync_every) {
    return SyncInternal();
  }
  return Status::Ok();
}

Status ContextWal::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("wal is closed");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wal '" + path_ + "' is poisoned by a failed fsync");
  }
  return SyncInternal();
}

Status ContextWal::SyncInternal() {
  Status synced = file_->Sync();
  if (!synced.ok()) {
    // fsyncgate: the kernel may have dropped the dirty pages on failure,
    // so neither a retried fsync nor further appends can be trusted until
    // the log is rewritten from scratch (Reset).
    poisoned_ = true;
    return synced;
  }
  ++fsyncs_;
  unsynced_appends_ = 0;
  return Status::Ok();
}

Status ContextWal::Reset(uint64_t base) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal is closed");
  // Reopen truncated rather than ftruncate in place: after a failed fsync
  // the old handle's dirty-page state is untrustworthy, and a fresh handle
  // on a zero-length file starts the new generation clean.
  file_.reset();
  auto reopened = env_->NewTruncatedFile(path_);
  if (!reopened.ok()) {
    poisoned_ = true;
    return reopened.status();
  }
  file_ = std::move(reopened).value();
  size_ = 0;
  poisoned_ = false;
  Status header = WriteHeader(base);
  if (!header.ok()) {
    poisoned_ = true;
    return header;
  }
  base_ = base;
  has_seq_ = false;
  unsynced_appends_ = 0;
  Status synced = SyncInternal();
  if (!synced.ok()) return synced;
  return Status::Ok();
}

}  // namespace cce::io
