#include "io/context_wal.h"

#include <cstring>
#include <utility>

#include "common/crc32c.h"

namespace cce::io {
namespace {

constexpr char kMagic[8] = {'C', 'C', 'E', 'W', 'A', 'L', '\x01', '\n'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 24;
/// Bytes before the payload in every frame: u32 length + u32 masked CRC.
constexpr size_t kFrameOverhead = 8;
/// Fixed payload prefix: u64 seq + u32 label + u32 value_count.
constexpr size_t kPayloadFixed = 16;
/// Upper bound on a frame payload; anything larger is corruption, not a
/// record (16 MiB ≈ a 4M-feature instance).
constexpr uint32_t kMaxPayload = 1u << 24;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFFu));
  out->push_back(static_cast<char>((v >> 8) & 0xFFu));
  out->push_back(static_cast<char>((v >> 16) & 0xFFu));
  out->push_back(static_cast<char>((v >> 24) & 0xFFu));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

std::string EncodeHeader(uint64_t base) {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU64(&header, base);
  PutU32(&header,
         crc32c::Mask(crc32c::Value(header.data(), header.size())));
  return header;
}

/// Parses the header; returns base_recorded or nullopt-ish via ok flag.
bool DecodeHeader(const std::string& content, uint64_t* base) {
  if (content.size() < kHeaderSize) return false;
  if (std::memcmp(content.data(), kMagic, sizeof(kMagic)) != 0) return false;
  if (GetU32(content.data() + 8) != kVersion) return false;
  const uint32_t stored = GetU32(content.data() + 20);
  if (crc32c::Unmask(stored) !=
      crc32c::Value(content.data(), kHeaderSize - 4)) {
    return false;
  }
  *base = GetU64(content.data() + 12);
  return true;
}

}  // namespace

ContextWal::ContextWal(std::string path, const Options& options)
    : path_(std::move(path)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

ContextWal::~ContextWal() {
  // Deliberately no fsync: durability comes from the sync policy, so a
  // destructor-skipping crash and a clean shutdown are indistinguishable.
}

Result<std::unique_ptr<ContextWal>> ContextWal::Open(
    const std::string& path, const Options& options, const ReplayFn& fn,
    RecoveryStats* stats) {
  if (path.empty()) return Status::InvalidArgument("empty wal path");
  RecoveryStats local;
  RecoveryStats* out = stats != nullptr ? stats : &local;
  *out = RecoveryStats{};

  auto wal = std::unique_ptr<ContextWal>(new ContextWal(path, options));
  std::string content;
  {
    Status read = wal->env_->ReadFileToString(path, &content);
    if (!read.ok() && read.code() != StatusCode::kNotFound) return read;
  }

  uint64_t base = 0;
  const bool header_ok = DecodeHeader(content, &base);
  size_t valid_end = 0;
  uint64_t last_seq = 0;
  bool has_seq = false;
  if (header_ok) {
    out->base_recorded = base;
    size_t pos = kHeaderSize;
    // Salvage the longest valid frame prefix; any failure below means a
    // torn or corrupt tail and stops the scan (never resurrect a record
    // past the first bad byte).
    while (true) {
      if (pos + kFrameOverhead > content.size()) break;
      const uint32_t len = GetU32(content.data() + pos);
      const uint32_t masked_crc = GetU32(content.data() + pos + 4);
      if (len < kPayloadFixed || len > kMaxPayload) break;
      if (pos + kFrameOverhead + len > content.size()) break;
      const char* payload = content.data() + pos + kFrameOverhead;
      if (crc32c::Unmask(masked_crc) != crc32c::Value(payload, len)) break;
      const uint64_t seq = GetU64(payload);
      const uint32_t label = GetU32(payload + 8);
      const uint32_t value_count = GetU32(payload + 12);
      if (len != kPayloadFixed + 4ull * value_count) break;
      // A checksum-valid frame whose sequence fails to increase is a
      // duplicated or misplaced tail block (e.g. a replayed copy of the
      // last frame). Sequences are sparse — the owner interleaves shards
      // in one global order — so only monotonicity can be checked.
      if (has_seq && seq <= last_seq) break;
      Instance x(value_count);
      for (uint32_t i = 0; i < value_count; ++i) {
        x[i] = GetU32(payload + kPayloadFixed + 4 * i);
      }
      if (fn != nullptr) {
        CCE_RETURN_IF_ERROR(fn(seq, x, static_cast<Label>(label)));
      }
      last_seq = seq;
      has_seq = true;
      ++out->records_recovered;
      pos += kFrameOverhead + len;
    }
    valid_end = pos;
  }
  if (content.size() > valid_end) {
    out->bytes_discarded = content.size() - valid_end;
    // Everything past the first bad byte is unrecoverable; count the
    // corruption event as (at least) one lost record.
    ++out->records_dropped;
  }

  {
    auto opened = wal->env_->NewAppendableFile(path);
    if (!opened.ok()) return opened.status();
    wal->file_ = std::move(opened).value();
  }
  if (!header_ok) {
    // Missing, empty or header-corrupt log: restart the generation.
    CCE_RETURN_IF_ERROR(wal->Reset(0));
  } else {
    if (out->bytes_discarded > 0) {
      CCE_RETURN_IF_ERROR(wal->file_->Truncate(valid_end));
    }
    wal->size_ = valid_end;
    wal->base_ = base;
    wal->last_seq_ = last_seq;
    wal->has_seq_ = has_seq;
    if (out->bytes_discarded > 0) CCE_RETURN_IF_ERROR(wal->Sync());
  }
  return wal;
}

Status ContextWal::WriteHeader(uint64_t base) {
  const std::string header = EncodeHeader(base);
  CCE_RETURN_IF_ERROR(file_->Append(header));
  size_ = kHeaderSize;
  return Status::Ok();
}

Status ContextWal::Append(const Instance& x, Label y, uint64_t seq) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal is closed");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wal '" + path_ +
        "' is poisoned by a failed fsync; appends are refused until the "
        "log is rewritten (compaction)");
  }
  if (has_seq_ && seq <= last_seq_) {
    return Status::InvalidArgument(
        "wal sequence " + std::to_string(seq) +
        " is not greater than the last logged sequence " +
        std::to_string(last_seq_));
  }
  if (x.size() > (kMaxPayload - kPayloadFixed) / 4) {
    return Status::InvalidArgument("instance too large for a wal frame");
  }
  std::string payload;
  payload.reserve(kPayloadFixed + 4 * x.size());
  PutU64(&payload, seq);
  PutU32(&payload, y);
  PutU32(&payload, static_cast<uint32_t>(x.size()));
  for (ValueId v : x) PutU32(&payload, v);

  std::string frame;
  frame.reserve(kFrameOverhead + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame,
         crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  frame += payload;

  Status wrote = file_->Append(frame);
  if (!wrote.ok()) {
    // Roll the file back to the last frame boundary so a failed append
    // (disk full, I/O error) cannot leave a torn frame behind. If even
    // the rollback fails, a torn frame may be on disk — poison the log so
    // no later append claims durability on top of it.
    Status rolled_back = file_->Truncate(size_);
    if (!rolled_back.ok()) poisoned_ = true;
    return wrote;
  }
  size_ += frame.size();
  last_seq_ = seq;
  has_seq_ = true;
  ++appended_;
  if (options_.sync_every > 0 &&
      ++unsynced_appends_ >= options_.sync_every) {
    return SyncInternal();
  }
  return Status::Ok();
}

Status ContextWal::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("wal is closed");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wal '" + path_ + "' is poisoned by a failed fsync");
  }
  return SyncInternal();
}

Status ContextWal::SyncInternal() {
  Status synced = file_->Sync();
  if (!synced.ok()) {
    // fsyncgate: the kernel may have dropped the dirty pages on failure,
    // so neither a retried fsync nor further appends can be trusted until
    // the log is rewritten from scratch (Reset).
    poisoned_ = true;
    return synced;
  }
  ++fsyncs_;
  unsynced_appends_ = 0;
  return Status::Ok();
}

Status ContextWal::Reset(uint64_t base) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal is closed");
  // Reopen truncated rather than ftruncate in place: after a failed fsync
  // the old handle's dirty-page state is untrustworthy, and a fresh handle
  // on a zero-length file starts the new generation clean.
  file_.reset();
  auto reopened = env_->NewTruncatedFile(path_);
  if (!reopened.ok()) {
    poisoned_ = true;
    return reopened.status();
  }
  file_ = std::move(reopened).value();
  size_ = 0;
  poisoned_ = false;
  Status header = WriteHeader(base);
  if (!header.ok()) {
    poisoned_ = true;
    return header;
  }
  base_ = base;
  has_seq_ = false;
  unsynced_appends_ = 0;
  Status synced = SyncInternal();
  if (!synced.ok()) return synced;
  return Status::Ok();
}

}  // namespace cce::io
