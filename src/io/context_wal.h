#ifndef CCE_IO_CONTEXT_WAL_H_
#define CCE_IO_CONTEXT_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/types.h"
#include "io/env.h"

namespace cce::io {

/// Append-only, per-record-checksummed write-ahead log of served
/// (instance, prediction) pairs — the durability half of the proxy's
/// client-side context (see DESIGN.md §7).
///
/// On-disk layout (all integers little-endian, fixed width):
///
///   header (24 bytes):
///     bytes  0..7   magic "CCEWAL\x01\n"
///     bytes  8..11  u32 version (currently 1)
///     bytes 12..19  u64 base_recorded — records already compacted into the
///                   snapshot when this log generation began
///     bytes 20..23  u32 masked CRC-32C of bytes 0..19
///   frame (one per record):
///     u32 payload_length
///     u32 masked CRC-32C of the payload
///     payload:
///       u64 sequence number — caller-supplied, strictly increasing within
///           a generation. A sharded owner passes its global arrival
///           sequence here, so each shard's log records where its rows sit
///           in the *cross-shard* arrival order and a restart can rebuild
///           the exact merged context. Gaps are expected (rows routed to
///           other shards, failed appends).
///       u32 label
///       u32 value_count
///       u32 values[value_count]
///
/// Recovery is salvage-prefix: Open() replays valid frames in order and
/// stops at the first torn, truncated or checksum-failing frame — or at a
/// frame whose sequence number fails to increase (which rejects duplicated
/// tail blocks) — then truncates the file back to the valid prefix so
/// later appends never interleave with garbage. Corruption is reported in
/// RecoveryStats, never as an error: a damaged log yields a shorter
/// context, not a dead proxy.
///
/// Durability policy: `sync_every` = N issues an fsync after every Nth
/// append (1 = every record is durable before Append returns; 0 = never
/// sync automatically, the OS decides). Sync() forces one on demand. The
/// destructor closes without syncing — durability comes from the policy,
/// not from a clean shutdown.
///
/// fsync poisoning (the fsyncgate class of bugs): when an fsync fails the
/// kernel may have dropped the dirty pages, so retrying the fsync — or
/// appending more frames and reporting them durable — would silently lose
/// data. A failed Sync() therefore *poisons* the log: every later Append
/// and Sync fails with kFailedPrecondition until Reset() rewrites the log
/// from scratch on a freshly opened file handle. The same applies when a
/// failed append's rollback truncation fails (a torn frame may be on
/// disk). poisoned() exposes the state for health reporting.
///
/// All file I/O goes through Options::env, so tests can inject torn
/// writes, EIO, ENOSPC and failed fsyncs deterministically.
///
/// Not thread-safe; the owner serialises access under its own mutex.
class ContextWal {
 public:
  struct Options {
    /// fsync cadence in appends; 1 = every append, 0 = never automatic.
    size_t sync_every = 1;
    /// I/O surface; null means Env::Default().
    Env* env = nullptr;
  };

  /// What Open() found in an existing log.
  struct RecoveryStats {
    /// Frames replayed from the valid prefix.
    uint64_t records_recovered = 0;
    /// Lower bound on records lost to corruption (counted as corruption
    /// events: everything after the first bad byte is unrecoverable).
    uint64_t records_dropped = 0;
    /// Trailing bytes discarded by the salvage truncation.
    uint64_t bytes_discarded = 0;
    /// base_recorded from the (valid) header; 0 when the header itself
    /// was corrupt and the log restarted from scratch.
    uint64_t base_recorded = 0;
  };

  /// Called once per salvaged record, in append order, with the sequence
  /// number the record was appended under. A non-OK return aborts recovery
  /// and fails Open() — return OK and skip internally for records the
  /// caller merely wants to ignore.
  using ReplayFn = std::function<Status(uint64_t seq, const Instance&,
                                        Label)>;

  /// Opens (creating if absent) the log at `path`, salvage-replays the
  /// valid prefix through `fn` (may be null to skip replay), truncates any
  /// trailing garbage, and returns a writer positioned for append.
  static Result<std::unique_ptr<ContextWal>> Open(const std::string& path,
                                                  const Options& options,
                                                  const ReplayFn& fn,
                                                  RecoveryStats* stats);

  ~ContextWal();
  ContextWal(const ContextWal&) = delete;
  ContextWal& operator=(const ContextWal&) = delete;

  /// Appends one record frame under `seq`; durable per the sync policy.
  /// `seq` must be strictly greater than every sequence already in the
  /// log (kInvalidArgument otherwise — recovery relies on monotonicity to
  /// reject duplicated tail blocks). A partial write is rolled back (the
  /// file is truncated to the previous frame boundary) so a failed append
  /// can never leave a torn frame for the next recovery to trip over.
  /// kFailedPrecondition while poisoned.
  Status Append(const Instance& x, Label y, uint64_t seq);

  /// Forces an fsync now regardless of the cadence. A failure poisons the
  /// log (see class comment).
  Status Sync();

  /// Resets the log to empty with base_recorded = `base` — the truncation
  /// half of snapshot+compaction. Reopens the file truncated (a fresh
  /// handle, per the fsyncgate discipline), writes and fsyncs the new
  /// header, and clears any poisoning on success.
  Status Reset(uint64_t base);

  /// True after a failed fsync (or failed rollback) until a successful
  /// Reset; appends are refused meanwhile.
  bool poisoned() const { return poisoned_; }

  /// Current file size in bytes (header + frames).
  uint64_t size_bytes() const { return size_; }
  /// Frames appended through this writer (excludes replayed ones).
  uint64_t appended() const { return appended_; }
  /// fsyncs issued (policy + explicit + Reset).
  uint64_t fsyncs() const { return fsyncs_; }
  /// base_recorded of the current log generation.
  uint64_t base_recorded() const { return base_; }
  const std::string& path() const { return path_; }

 private:
  ContextWal(std::string path, const Options& options);

  Status WriteHeader(uint64_t base);
  Status SyncInternal();

  std::string path_;
  Options options_;
  Env* env_ = nullptr;
  std::unique_ptr<WritableFile> file_;
  bool poisoned_ = false;
  uint64_t size_ = 0;
  uint64_t base_ = 0;
  /// Largest sequence number in the log; valid when has_seq_ is true.
  uint64_t last_seq_ = 0;
  bool has_seq_ = false;
  uint64_t appended_ = 0;
  uint64_t fsyncs_ = 0;
  size_t unsynced_appends_ = 0;
};

}  // namespace cce::io

#endif  // CCE_IO_CONTEXT_WAL_H_
