#include "io/env.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace cce::io {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

#ifndef _WIN32

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const std::string& data) override {
    if (fd_ < 0) return Status::FailedPrecondition("file is closed");
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n =
          ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("write to", path_));
      }
      written += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("file is closed");
    if (::fsync(fd_) != 0) {
      return Status::IoError(ErrnoMessage("fsync of", path_));
    }
    return Status::Ok();
  }

  Status Truncate(uint64_t size) override {
    if (fd_ < 0) return Status::FailedPrecondition("file is closed");
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IoError(ErrnoMessage("truncate of", path_));
    }
    // Reposition so the next write lands at the new end even on handles
    // opened without O_APPEND (no-op for O_APPEND ones).
    if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
      return Status::IoError(ErrnoMessage("seek in", path_));
    }
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::IoError(ErrnoMessage("close of", path_));
    return Status::Ok();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    return OpenWritable(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  Result<std::unique_ptr<WritableFile>> NewTruncatedFile(
      const std::string& path) override {
    return OpenWritable(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    out->clear();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound("no such file: '" + path + "'");
      }
      return Status::IoError(ErrnoMessage("cannot open", path));
    }
    char buffer[1 << 16];
    while (true) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status failed = Status::IoError(ErrnoMessage("read of", path));
        ::close(fd);
        return failed;
      }
      if (n == 0) break;
      out->append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError(ErrnoMessage("rename to", to));
    }
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError(ErrnoMessage("remove of", path));
    }
    return Status::Ok();
  }

  Status CreateDir(const std::string& path) override {
    if (path.empty()) return Status::InvalidArgument("empty directory path");
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
      if (S_ISDIR(st.st_mode)) return Status::Ok();
      return Status::IoError("'" + path + "' exists and is not a directory");
    }
    if (::mkdir(path.c_str(), 0775) != 0 && errno != EEXIST) {
      return Status::IoError(ErrnoMessage("cannot create directory", path));
    }
    return Status::Ok();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Status::IoError(ErrnoMessage("cannot open dir", dir));
    const int rc = ::fsync(fd);
    ::close(fd);
    // Some filesystems reject fsync on directories (EINVAL); the rename is
    // still atomic there, only the power-cut guarantee weakens.
    if (rc != 0 && errno != EINVAL) {
      return Status::IoError(ErrnoMessage("fsync failed for dir", dir));
    }
    return Status::Ok();
  }

  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override {
    names->clear();
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) {
      return Status::IoError(ErrnoMessage("cannot list dir", dir));
    }
    while (struct dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names->push_back(name);
    }
    ::closedir(handle);
    return Status::Ok();
  }

 private:
  Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                     int flags) {
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::IoError(ErrnoMessage("cannot open", path));
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, fd));
  }
};

#endif  // !_WIN32

}  // namespace

Env* Env::Default() {
#ifndef _WIN32
  static PosixEnv* env = new PosixEnv();  // intentionally leaked singleton
  return env;
#else
  return nullptr;
#endif
}

}  // namespace cce::io
