#ifndef CCE_IO_ENV_H_
#define CCE_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace cce::io {

/// A sequential-write file handle. All durability-sensitive writers in the
/// repo (WAL, atomic snapshot writes) go through this interface instead of
/// raw POSIX so tests can substitute a fault-injecting implementation
/// (LevelDB's Env discipline).
///
/// Not thread-safe; callers serialise access per file.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the current end of file. On failure the file may
  /// hold a prefix of `data` (a torn write) — callers that need frame
  /// atomicity must roll back via Truncate.
  virtual Status Append(const std::string& data) = 0;

  /// fsync(2): flushes data (and metadata needed to read it) to stable
  /// storage. A failure means previously appended bytes may never reach
  /// disk — see ContextWal poisoning for how callers must react.
  virtual Status Sync() = 0;

  /// Truncates the file to `size` bytes. Later appends continue from the
  /// new end.
  virtual Status Truncate(uint64_t size) = 0;

  /// Closes the handle (no implicit sync). Idempotent; the destructor
  /// closes too.
  virtual Status Close() = 0;
};

/// The I/O surface the storage layer runs on. Production code uses
/// Env::Default() (POSIX); tests wrap it in a FaultInjectingEnv to inject
/// torn writes, EIO, ENOSPC, short reads and failed fsyncs on a seeded
/// schedule — the I/O analogue of serving's FaultInjectingModel.
///
/// Thread safety: an Env must be usable from several threads at once
/// (distinct files); individual WritableFiles are single-threaded.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending, creating it when absent. The write
  /// position is the current end of file.
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;

  /// Opens `path` truncated to empty, creating it when absent.
  virtual Result<std::unique_ptr<WritableFile>> NewTruncatedFile(
      const std::string& path) = 0;

  /// Reads the whole file into `out`. kNotFound when the file does not
  /// exist; kIoError for read failures.
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// rename(2): atomic within a filesystem.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// unlink(2); OK when the file is already gone.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Creates `path` as a directory if missing (parents must exist); OK
  /// when already present, kIoError when `path` is a non-directory.
  virtual Status CreateDir(const std::string& path) = 0;

  /// fsyncs the directory entry metadata (best effort where directory
  /// fsync is unsupported).
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Names (not paths) of the entries in `dir`, excluding "." / "..".
  virtual Status ListDir(const std::string& dir,
                         std::vector<std::string>* names) = 0;

  /// The process-wide POSIX environment. Never deleted.
  static Env* Default();
};

}  // namespace cce::io

#endif  // CCE_IO_ENV_H_
