#include "io/fault_env.h"

#include <algorithm>
#include <utility>

namespace cce::io {
namespace {

/// Wraps a base WritableFile; every mutating call first consults the env's
/// fault schedule. Keeps no fault state of its own so arming calls made
/// after the file was opened still apply to it.
class FaultingWritableFile : public WritableFile {
 public:
  FaultingWritableFile(FaultInjectingEnv* env,
                       std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(const std::string& data) override {
    const FaultInjectingEnv::AppendPlan plan = env_->PlanAppend(data.size());
    if (!plan.fail) return base_->Append(data);
    if (plan.keep_bytes > 0) {
      // The torn prefix really lands in the base file: recovery sees the
      // same bytes a crash mid-write would have left.
      Status torn = base_->Append(data.substr(0, plan.keep_bytes));
      if (!torn.ok()) return torn;
    }
    if (plan.disk_full) {
      return Status::IoError("injected ENOSPC: no space left on device");
    }
    return Status::IoError("injected append failure (EIO)");
  }

  Status Sync() override {
    CCE_RETURN_IF_ERROR(env_->PlanSync());
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override {
    CCE_RETURN_IF_ERROR(env_->PlanTruncate());
    return base_->Truncate(size);
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

}  // namespace

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : FaultInjectingEnv(base, Options()) {}

FaultInjectingEnv::FaultInjectingEnv(Env* base, const Options& options)
    : base_(base), options_(options), rng_(options.seed) {}

void FaultInjectingEnv::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

void FaultInjectingEnv::FailNextAppend() {
  std::lock_guard<std::mutex> lock(mu_);
  ++armed_append_failures_;
}

void FaultInjectingEnv::TearNextAppend(uint64_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_tear_keep_bytes_ = keep_bytes;
}

void FaultInjectingEnv::FailNextSync() {
  std::lock_guard<std::mutex> lock(mu_);
  ++armed_sync_failures_;
}

void FaultInjectingEnv::FailNextTruncate() {
  std::lock_guard<std::mutex> lock(mu_);
  ++armed_truncate_failures_;
}

void FaultInjectingEnv::FailNextRename() {
  std::lock_guard<std::mutex> lock(mu_);
  ++armed_rename_failures_;
}

void FaultInjectingEnv::FailNextRead() {
  std::lock_guard<std::mutex> lock(mu_);
  ++armed_read_failures_;
}

void FaultInjectingEnv::ShortenNextRead(uint64_t drop_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_short_read_drop_ = drop_bytes;
}

void FaultInjectingEnv::ExhaustSpaceAfter(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  space_budget_ = bytes;
}

void FaultInjectingEnv::ReplenishSpace() {
  std::lock_guard<std::mutex> lock(mu_);
  space_budget_.reset();
}

FaultInjectingEnv::Stats FaultInjectingEnv::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FaultInjectingEnv::AppendPlan FaultInjectingEnv::PlanAppend(uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendPlan plan;
  if (!enabled_ || size == 0) return plan;
  if (armed_append_failures_ > 0) {
    --armed_append_failures_;
    ++stats_.append_errors;
    plan.fail = true;
    return plan;
  }
  if (armed_tear_keep_bytes_.has_value()) {
    plan.fail = true;
    plan.keep_bytes = std::min(*armed_tear_keep_bytes_, size - 1);
    armed_tear_keep_bytes_.reset();
    ++stats_.torn_appends;
    return plan;
  }
  if (space_budget_.has_value()) {
    if (*space_budget_ < size) {
      plan.fail = true;
      plan.disk_full = true;
      plan.keep_bytes = *space_budget_;  // partial landing, like real ENOSPC
      *space_budget_ = 0;
      ++stats_.space_exhausted_errors;
      return plan;
    }
    *space_budget_ -= size;
  }
  if (options_.write_error_probability > 0.0 &&
      rng_.Bernoulli(options_.write_error_probability)) {
    ++stats_.append_errors;
    plan.fail = true;
    return plan;
  }
  if (options_.torn_write_probability > 0.0 &&
      rng_.Bernoulli(options_.torn_write_probability)) {
    plan.fail = true;
    plan.keep_bytes = size > 1 ? rng_.Uniform(size - 1) + 1 : 0;
    ++stats_.torn_appends;
    return plan;
  }
  return plan;
}

Status FaultInjectingEnv::PlanSync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return Status::Ok();
  if (armed_sync_failures_ > 0) {
    --armed_sync_failures_;
    ++stats_.sync_errors;
    return Status::IoError("injected fsync failure");
  }
  if (options_.sync_error_probability > 0.0 &&
      rng_.Bernoulli(options_.sync_error_probability)) {
    ++stats_.sync_errors;
    return Status::IoError("injected fsync failure");
  }
  return Status::Ok();
}

Status FaultInjectingEnv::PlanTruncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return Status::Ok();
  if (armed_truncate_failures_ > 0) {
    --armed_truncate_failures_;
    ++stats_.truncate_errors;
    return Status::IoError("injected truncate failure");
  }
  if (options_.truncate_error_probability > 0.0 &&
      rng_.Bernoulli(options_.truncate_error_probability)) {
    ++stats_.truncate_errors;
    return Status::IoError("injected truncate failure");
  }
  return Status::Ok();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewAppendableFile(
    const std::string& path) {
  CCE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewAppendableFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultingWritableFile(this, std::move(base)));
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewTruncatedFile(
    const std::string& path) {
  CCE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewTruncatedFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultingWritableFile(this, std::move(base)));
}

Status FaultInjectingEnv::ReadFileToString(const std::string& path,
                                           std::string* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled_) {
      if (armed_read_failures_ > 0) {
        --armed_read_failures_;
        ++stats_.read_errors;
        return Status::IoError("injected read failure (EIO)");
      }
      if (options_.read_error_probability > 0.0 &&
          rng_.Bernoulli(options_.read_error_probability)) {
        ++stats_.read_errors;
        return Status::IoError("injected read failure (EIO)");
      }
    }
  }
  CCE_RETURN_IF_ERROR(base_->ReadFileToString(path, out));
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_ || out->empty()) return Status::Ok();
  uint64_t drop = 0;
  if (armed_short_read_drop_.has_value()) {
    drop = std::min<uint64_t>(*armed_short_read_drop_, out->size());
    armed_short_read_drop_.reset();
  } else if (options_.short_read_probability > 0.0 &&
             rng_.Bernoulli(options_.short_read_probability)) {
    drop = rng_.Uniform(out->size()) + 1;
  }
  if (drop > 0) {
    out->resize(out->size() - static_cast<size_t>(drop));
    ++stats_.short_reads;
  }
  return Status::Ok();
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled_) {
      if (armed_rename_failures_ > 0) {
        --armed_rename_failures_;
        ++stats_.rename_errors;
        return Status::IoError("injected rename failure");
      }
      if (options_.rename_error_probability > 0.0 &&
          rng_.Bernoulli(options_.rename_error_probability)) {
        ++stats_.rename_errors;
        return Status::IoError("injected rename failure");
      }
    }
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  return base_->SyncDir(dir);
}

Status FaultInjectingEnv::ListDir(const std::string& dir,
                                  std::vector<std::string>* names) {
  return base_->ListDir(dir, names);
}

}  // namespace cce::io
