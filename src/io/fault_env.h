#ifndef CCE_IO_FAULT_ENV_H_
#define CCE_IO_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "io/env.h"

namespace cce::io {

/// A deterministic fault-injecting Env decorator — the I/O analogue of
/// serving's FaultInjectingModel. Wraps a base Env (usually Env::Default())
/// and, on a seeded schedule, makes writes tear, reads come up short,
/// fsyncs fail, and the disk fill up, so recovery and poisoning paths can
/// be exercised without root, loop devices, or real power cuts.
///
/// Two triggering modes compose:
///   - probabilistic: per-operation fault probabilities drawn from one
///     seeded Rng (deterministic given a fixed operation sequence);
///   - one-shot arming: FailNextSync() etc. queue exactly one fault for
///     the next matching operation — precise scalpel for regression tests.
///
/// A torn append writes a strict prefix of the data through to the base
/// file and then reports failure, exactly what a crash mid-write leaves
/// behind. The ENOSPC budget counts bytes through Append: once spent,
/// appends write the remaining budget (possibly zero bytes) and fail, and
/// snapshot rewrites fail too, until ReplenishSpace().
///
/// Thread-safe: all fault state sits behind one mutex. set_enabled(false)
/// turns the decorator into a transparent pass-through (useful to stage a
/// healthy startup, then switch faults on).
class FaultInjectingEnv : public Env {
 public:
  struct Options {
    uint64_t seed = 42;
    /// Per-Append probability of a full EIO failure (no bytes written).
    double write_error_probability = 0.0;
    /// Per-Append probability of a torn write (prefix lands, then EIO).
    double torn_write_probability = 0.0;
    /// Per-Sync probability of a failed fsync.
    double sync_error_probability = 0.0;
    /// Per-read probability of EIO on ReadFileToString.
    double read_error_probability = 0.0;
    /// Per-read probability of dropping a suffix of the content (the
    /// short-read a crashed writer or torn page leaves behind).
    double short_read_probability = 0.0;
    /// Per-Truncate probability of failure.
    double truncate_error_probability = 0.0;
    /// Per-Rename probability of failure.
    double rename_error_probability = 0.0;
  };

  /// `base` is not owned and must outlive this env.
  explicit FaultInjectingEnv(Env* base);
  FaultInjectingEnv(Env* base, const Options& options);

  /// Master switch; disabled = transparent pass-through. Armed one-shot
  /// faults stay queued while disabled.
  void set_enabled(bool enabled);

  // One-shot arming. Each call queues one additional fault.
  void FailNextAppend();
  /// Next append writes only `keep_bytes` of its data (clamped to the
  /// data's size - 1 so the frame is genuinely torn), then fails.
  void TearNextAppend(uint64_t keep_bytes);
  void FailNextSync();
  void FailNextTruncate();
  void FailNextRename();
  void FailNextRead();
  /// Next ReadFileToString drops `drop_bytes` from the end (clamped).
  void ShortenNextRead(uint64_t drop_bytes);
  /// Start a byte budget: appends consume it; once exhausted they fail
  /// with a disk-full error (writing any remaining budget first, torn).
  void ExhaustSpaceAfter(uint64_t bytes);
  void ReplenishSpace();

  /// Faults actually delivered (for asserting a schedule fired).
  struct Stats {
    uint64_t append_errors = 0;
    uint64_t torn_appends = 0;
    uint64_t sync_errors = 0;
    uint64_t read_errors = 0;
    uint64_t short_reads = 0;
    uint64_t truncate_errors = 0;
    uint64_t rename_errors = 0;
    uint64_t space_exhausted_errors = 0;
  };
  Stats stats() const;

  // Env interface.
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewTruncatedFile(
      const std::string& path) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;

  /// Append-time fault decision, taken under mu_. Public only for the
  /// wrapper file class in fault_env.cc; not part of the test API.
  struct AppendPlan {
    bool fail = false;          // report failure after writing keep_bytes
    bool disk_full = false;     // phrase the error as ENOSPC
    uint64_t keep_bytes = 0;    // prefix to pass through to the base file
  };
  AppendPlan PlanAppend(uint64_t size);
  Status PlanSync();
  Status PlanTruncate();

 private:
  Env* base_;
  Options options_;
  mutable std::mutex mu_;
  bool enabled_ = true;
  Rng rng_;
  Stats stats_;
  int armed_append_failures_ = 0;
  std::optional<uint64_t> armed_tear_keep_bytes_;
  int armed_sync_failures_ = 0;
  int armed_truncate_failures_ = 0;
  int armed_rename_failures_ = 0;
  int armed_read_failures_ = 0;
  std::optional<uint64_t> armed_short_read_drop_;
  std::optional<uint64_t> space_budget_;
};

}  // namespace cce::io

#endif  // CCE_IO_FAULT_ENV_H_
