#include "io/serialize.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "io/atomic_file.h"

namespace cce::io {
namespace {

constexpr char kDatasetMagic[] = "CCEDATASET v1";
constexpr char kGbdtMagic[] = "CCEGBDT v1";

// Reads one line, stripping a trailing \r; IoError at EOF.
Result<std::string> ReadLine(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::IoError("unexpected end of stream");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

Result<long long> ReadCount(std::istream* in, const std::string& keyword) {
  Result<std::string> line = ReadLine(in);
  if (!line.ok()) return line.status();
  std::istringstream parser(*line);
  std::string word;
  long long count = -1;
  parser >> word >> count;
  if (word != keyword || count < 0) {
    return Status::InvalidArgument("expected '" + keyword +
                                   " <count>', got '" + *line + "'");
  }
  return count;
}

}  // namespace

std::string EscapeLine(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeLine(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out.push_back(text[i]);
      continue;
    }
    if (i + 1 >= text.size()) {
      return Status::InvalidArgument("dangling escape at end of line");
    }
    switch (text[++i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      default:
        return Status::InvalidArgument("unknown escape in line");
    }
  }
  return out;
}

Status SaveDataset(const Dataset& dataset, std::ostream* out) {
  const Schema& schema = dataset.schema();
  *out << kDatasetMagic << "\n";
  *out << "features " << schema.num_features() << "\n";
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    *out << "feature " << schema.DomainSize(f) << " "
         << EscapeLine(schema.FeatureName(f)) << "\n";
    for (ValueId v = 0; v < schema.DomainSize(f); ++v) {
      *out << EscapeLine(schema.ValueName(f, v)) << "\n";
    }
  }
  *out << "labels " << schema.num_labels() << "\n";
  for (Label y = 0; y < schema.num_labels(); ++y) {
    *out << EscapeLine(schema.LabelName(y)) << "\n";
  }
  *out << "rows " << dataset.size() << "\n";
  for (size_t row = 0; row < dataset.size(); ++row) {
    const Instance& x = dataset.instance(row);
    for (ValueId v : x) *out << v << " ";
    *out << dataset.label(row) << "\n";
  }
  if (!out->good()) return Status::IoError("write failed");
  return Status::Ok();
}

Result<Dataset> LoadDataset(std::istream* in) {
  Result<std::string> magic = ReadLine(in);
  if (!magic.ok()) return magic.status();
  if (*magic != kDatasetMagic) {
    return Status::InvalidArgument("bad dataset magic: '" + *magic + "'");
  }
  Result<long long> feature_count = ReadCount(in, "features");
  if (!feature_count.ok()) return feature_count.status();

  auto schema = std::make_shared<Schema>();
  for (long long f = 0; f < *feature_count; ++f) {
    Result<std::string> header = ReadLine(in);
    if (!header.ok()) return header.status();
    std::istringstream parser(*header);
    std::string word;
    long long domain = -1;
    parser >> word >> domain;
    if (word != "feature" || domain < 0) {
      return Status::InvalidArgument("bad feature header: '" + *header +
                                     "'");
    }
    std::string rest;
    std::getline(parser, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    Result<std::string> name = UnescapeLine(rest);
    if (!name.ok()) return name.status();
    FeatureId id = schema->AddFeature(*name);
    for (long long v = 0; v < domain; ++v) {
      Result<std::string> value_line = ReadLine(in);
      if (!value_line.ok()) return value_line.status();
      Result<std::string> value = UnescapeLine(*value_line);
      if (!value.ok()) return value.status();
      schema->InternValue(id, *value);
    }
  }

  Result<long long> label_count = ReadCount(in, "labels");
  if (!label_count.ok()) return label_count.status();
  for (long long y = 0; y < *label_count; ++y) {
    Result<std::string> label_line = ReadLine(in);
    if (!label_line.ok()) return label_line.status();
    Result<std::string> label = UnescapeLine(*label_line);
    if (!label.ok()) return label.status();
    schema->InternLabel(*label);
  }

  Result<long long> row_count = ReadCount(in, "rows");
  if (!row_count.ok()) return row_count.status();
  Dataset dataset(schema);
  const size_t n = schema->num_features();
  for (long long row = 0; row < *row_count; ++row) {
    Result<std::string> line = ReadLine(in);
    if (!line.ok()) return line.status();
    std::istringstream parser(*line);
    Instance x(n);
    for (size_t f = 0; f < n; ++f) {
      if (!(parser >> x[f])) {
        return Status::InvalidArgument("short data row");
      }
      if (x[f] >= schema->DomainSize(static_cast<FeatureId>(f))) {
        return Status::InvalidArgument("value id outside feature domain");
      }
    }
    Label y;
    if (!(parser >> y)) return Status::InvalidArgument("row missing label");
    if (y >= schema->num_labels()) {
      return Status::InvalidArgument("label id outside label dictionary");
    }
    dataset.Add(std::move(x), y);
  }
  return dataset;
}

Status SaveGbdt(const ml::Gbdt& model, std::ostream* out) {
  out->precision(17);
  *out << kGbdtMagic << "\n";
  *out << "base_score " << model.base_score() << "\n";
  *out << "trees " << model.trees().size() << "\n";
  for (const ml::RegressionTree& tree : model.trees()) {
    *out << "tree " << tree.nodes().size() << "\n";
    for (const ml::TreeNode& node : tree.nodes()) {
      *out << (node.is_leaf ? 1 : 0) << " " << node.feature << " "
           << node.threshold << " " << node.left << " " << node.right << " "
           << node.value << "\n";
    }
  }
  if (!out->good()) return Status::IoError("write failed");
  return Status::Ok();
}

Result<std::unique_ptr<ml::Gbdt>> LoadGbdt(std::istream* in) {
  Result<std::string> magic = ReadLine(in);
  if (!magic.ok()) return magic.status();
  if (*magic != kGbdtMagic) {
    return Status::InvalidArgument("bad model magic: '" + *magic + "'");
  }
  Result<std::string> base_line = ReadLine(in);
  if (!base_line.ok()) return base_line.status();
  std::istringstream base_parser(*base_line);
  std::string word;
  double base_score = 0.0;
  base_parser >> word >> base_score;
  if (word != "base_score") {
    return Status::InvalidArgument("expected base_score line");
  }
  Result<long long> tree_count = ReadCount(in, "trees");
  if (!tree_count.ok()) return tree_count.status();

  std::vector<ml::RegressionTree> trees;
  // Counts come from untrusted input: cap the eager reservation so a
  // corrupted count line degrades into a parse error, not a huge
  // allocation. The loops still honour the full count.
  trees.reserve(std::min<long long>(*tree_count, 1 << 16));
  for (long long t = 0; t < *tree_count; ++t) {
    Result<long long> node_count = ReadCount(in, "tree");
    if (!node_count.ok()) return node_count.status();
    std::vector<ml::TreeNode> nodes;
    nodes.reserve(std::min<long long>(*node_count, 1 << 16));
    for (long long i = 0; i < *node_count; ++i) {
      Result<std::string> line = ReadLine(in);
      if (!line.ok()) return line.status();
      std::istringstream parser(*line);
      int is_leaf = 0;
      ml::TreeNode node;
      if (!(parser >> is_leaf >> node.feature >> node.threshold >>
            node.left >> node.right >> node.value)) {
        return Status::InvalidArgument("bad tree node line: '" + *line +
                                       "'");
      }
      node.is_leaf = (is_leaf != 0);
      nodes.push_back(node);
    }
    Result<ml::RegressionTree> tree =
        ml::RegressionTree::FromNodes(std::move(nodes));
    if (!tree.ok()) return tree.status();
    trees.push_back(std::move(tree).value());
  }
  return ml::Gbdt::FromParts(base_score, std::move(trees));
}

Result<CsvTable> DatasetToCsv(const Dataset& dataset,
                              const std::string& label_column) {
  if (label_column.empty()) {
    return Status::InvalidArgument("label_column must not be empty");
  }
  const Schema& schema = dataset.schema();
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    if (schema.FeatureName(f) == label_column) {
      return Status::InvalidArgument(
          "label_column collides with feature '" + label_column + "'");
    }
  }
  CsvTable table;
  for (FeatureId f = 0; f < schema.num_features(); ++f) {
    table.header.push_back(schema.FeatureName(f));
  }
  table.header.push_back(label_column);
  for (size_t row = 0; row < dataset.size(); ++row) {
    std::vector<std::string> record;
    record.reserve(schema.num_features() + 1);
    for (FeatureId f = 0; f < schema.num_features(); ++f) {
      record.push_back(schema.ValueName(f, dataset.value(row, f)));
    }
    record.push_back(schema.LabelName(dataset.label(row)));
    table.rows.push_back(std::move(record));
  }
  return table;
}

Status SaveDatasetToFile(const Dataset& dataset, const std::string& path) {
  // Atomic replacement (temp + fsync + rename): a crash or a full disk
  // mid-write can no longer leave a truncated file behind an OK status.
  return AtomicWriteFile(path, [&dataset](std::ostream* out) {
    return SaveDataset(dataset, out);
  });
}

Result<Dataset> LoadDatasetFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadDataset(&in);
}

Status SaveGbdtToFile(const ml::Gbdt& model, const std::string& path) {
  return AtomicWriteFile(path, [&model](std::ostream* out) {
    return SaveGbdt(model, out);
  });
}

Result<std::unique_ptr<ml::Gbdt>> LoadGbdtFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadGbdt(&in);
}

}  // namespace cce::io
