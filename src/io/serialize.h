#ifndef CCE_IO_SERIALIZE_H_
#define CCE_IO_SERIALIZE_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/csv.h"
#include "common/status.h"
#include "core/dataset.h"
#include "ml/gbdt.h"

namespace cce::io {

/// Persistence for the client-side artifacts: the context a client accrues
/// during model serving (a Dataset of instances + predictions) and, for
/// users who own their model, the GBDT itself. Formats are line-oriented
/// versioned text: diff-able, greppable, stable across platforms.

/// Writes `dataset` (schema, label dictionary, rows) to `out`.
Status SaveDataset(const Dataset& dataset, std::ostream* out);

/// Reads a dataset previously written by SaveDataset.
Result<Dataset> LoadDataset(std::istream* in);

/// File-path conveniences.
Status SaveDatasetToFile(const Dataset& dataset, const std::string& path);
Result<Dataset> LoadDatasetFromFile(const std::string& path);

/// Writes the GBDT ensemble (base score and tree structures) to `out`.
Status SaveGbdt(const ml::Gbdt& model, std::ostream* out);

/// Reads a model previously written by SaveGbdt.
Result<std::unique_ptr<ml::Gbdt>> LoadGbdt(std::istream* in);

Status SaveGbdtToFile(const ml::Gbdt& model, const std::string& path);
Result<std::unique_ptr<ml::Gbdt>> LoadGbdtFromFile(const std::string& path);

/// Renders a dataset as CSV with human-readable values (the inverse of
/// data::LoadCsvDataset): one column per feature plus a final prediction
/// column named `label_column`. Lets clients hand a context to auditors or
/// external tooling.
Result<CsvTable> DatasetToCsv(const Dataset& dataset,
                              const std::string& label_column);

/// Escapes a string for single-line storage (\\, \n, \r, \t).
std::string EscapeLine(const std::string& text);

/// Inverse of EscapeLine; InvalidArgument on a malformed escape.
Result<std::string> UnescapeLine(const std::string& text);

}  // namespace cce::io

#endif  // CCE_IO_SERIALIZE_H_
