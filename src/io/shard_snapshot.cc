#include "io/shard_snapshot.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "io/serialize.h"

namespace cce::io {

Result<LoadedShardSnapshot> ParseShardSnapshot(const std::string& content,
                                               const std::string& origin) {
  std::istringstream in(content);
  uint64_t covers = 0;
  bool covers_valid = false;
  std::vector<uint64_t> seqs;
  if (content.rfind(kShardSnapshotMagic, 0) == 0) {
    std::string line;
    std::getline(in, line);  // magic
    if (!std::getline(in, line) || line.rfind("covers ", 0) != 0) {
      return Status::IoError("snapshot '" + origin +
                             "' has a corrupt covers line");
    }
    const std::string digits = line.substr(7);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return Status::IoError("snapshot '" + origin +
                             "' has a corrupt covers value");
    }
    covers = std::strtoull(digits.c_str(), nullptr, 10);
    covers_valid = true;
    if (!std::getline(in, line) || line.rfind("seqs", 0) != 0) {
      return Status::IoError("snapshot '" + origin +
                             "' has a corrupt seqs line");
    }
    std::istringstream seq_in(line.substr(4));
    uint64_t prev = 0;
    std::string token;
    while (seq_in >> token) {
      if (token.find_first_not_of("0123456789") != std::string::npos) {
        return Status::IoError("snapshot '" + origin +
                               "' has a corrupt seqs value");
      }
      const uint64_t seq = std::strtoull(token.c_str(), nullptr, 10);
      if (!seqs.empty() && seq <= prev) {
        return Status::IoError("snapshot '" + origin +
                               "' has non-increasing seqs");
      }
      seqs.push_back(seq);
      prev = seq;
    }
  }
  CCE_ASSIGN_OR_RETURN(Dataset rows, LoadDataset(&in));
  if (covers_valid && seqs.size() != rows.size()) {
    return Status::IoError(
        "snapshot '" + origin + "' has " + std::to_string(seqs.size()) +
        " seqs for " + std::to_string(rows.size()) + " rows");
  }
  LoadedShardSnapshot loaded;
  loaded.rows = std::move(rows);
  loaded.covers = covers;
  loaded.covers_valid = covers_valid;
  loaded.seqs = std::move(seqs);
  return loaded;
}

Result<LoadedShardSnapshot> LoadShardSnapshot(Env* env,
                                              const std::string& path) {
  std::string content;
  CCE_RETURN_IF_ERROR(env->ReadFileToString(path, &content));
  return ParseShardSnapshot(content, path);
}

Status CheckShardSchemaCompatible(const Schema& live, const Schema& stored) {
  if (live.num_features() != stored.num_features()) {
    return Status::InvalidArgument(
        "recovered snapshot has " + std::to_string(stored.num_features()) +
        " features, schema expects " + std::to_string(live.num_features()));
  }
  for (FeatureId f = 0; f < live.num_features(); ++f) {
    if (live.FeatureName(f) != stored.FeatureName(f)) {
      return Status::InvalidArgument("recovered snapshot feature " +
                                     std::to_string(f) + " is '" +
                                     stored.FeatureName(f) + "', expected '" +
                                     live.FeatureName(f) + "'");
    }
    if (live.DomainSize(f) < stored.DomainSize(f)) {
      return Status::InvalidArgument(
          "recovered snapshot domain of '" + live.FeatureName(f) +
          "' is larger than the live schema's");
    }
  }
  if (live.num_labels() < stored.num_labels()) {
    return Status::InvalidArgument(
        "recovered snapshot has more labels than the live schema");
  }
  return Status::Ok();
}

}  // namespace cce::io
