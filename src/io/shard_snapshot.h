#ifndef CCE_IO_SHARD_SNAPSHOT_H_
#define CCE_IO_SHARD_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/schema.h"
#include "io/env.h"

namespace cce::io {

/// The shard snapshot file format, shared by the leader's ContextShard,
/// the log shipper (which must read the covers count to fence against a
/// compaction racing the ship), and the follower's bootstrap path.
///
/// Layout (text):
///   CCESNAP 1
///   covers <records-ever-recorded-when-written>
///   seqs <s0> <s1> ...          (global arrival sequence of every row)
///   <io::SaveDataset text>
///
/// The covers count closes the torn-compaction window: a crash between the
/// snapshot rename and the WAL reset leaves log frames the snapshot already
/// contains, and covers - base_recorded is exactly how many to skip. It
/// doubles as the snapshot's *generation number* for replication: a
/// (snapshot, wal) pair is mutually consistent iff covers equals the log
/// header's base_recorded.
inline constexpr char kShardSnapshotMagic[] = "CCESNAP 1";

struct LoadedShardSnapshot {
  Dataset rows;
  /// Records covered by this snapshot (valid only with the wrapper; a
  /// legacy headerless snapshot reports covers_valid = false).
  uint64_t covers = 0;
  bool covers_valid = false;
  /// Global arrival sequence of each row, same length as `rows` (valid
  /// only with the wrapper; legacy rows get fresh sequences assigned).
  std::vector<uint64_t> seqs;

  LoadedShardSnapshot() : rows(nullptr) {}
};

/// Parses a snapshot from raw bytes (a file read or a shipped segment).
Result<LoadedShardSnapshot> ParseShardSnapshot(const std::string& content,
                                               const std::string& origin);

/// Reads and parses the snapshot at `path` through `env`.
Result<LoadedShardSnapshot> LoadShardSnapshot(Env* env,
                                              const std::string& path);

/// A recovered snapshot must describe the same feature space as the live
/// schema: feature/label names and domain sizes all line up. Anything else
/// means the file belongs to a different deployment — the one damage class
/// recovery treats as a hard error instead of quarantining away.
Status CheckShardSchemaCompatible(const Schema& live, const Schema& stored);

}  // namespace cce::io

#endif  // CCE_IO_SHARD_SNAPSHOT_H_
