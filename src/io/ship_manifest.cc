#include "io/ship_manifest.h"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/crc32c.h"
#include "io/atomic_file.h"

namespace cce::io {
namespace {

constexpr char kMagicLine[] = "CCESHIP 1";

/// Parses a non-negative decimal; false on anything else.
bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *out = std::strtoull(token.c_str(), nullptr, 10);
  return true;
}

std::string EncodeBody(const ShipManifest& manifest) {
  std::ostringstream out;
  out << kMagicLine << "\n";
  out << "published " << manifest.published_seq << "\n";
  out << "shards " << manifest.shards.size() << "\n";
  for (const ShipManifest::Shard& shard : manifest.shards) {
    out << "shard " << shard.index << " published " << shard.published
        << " base " << shard.wal_base << " bytes " << shard.wal_bytes
        << " snapshot " << (shard.has_snapshot ? 1 : 0) << " rows "
        << shard.rows << " digest " << shard.digest << "\n";
  }
  return out.str();
}

}  // namespace

std::string EncodeShipManifest(const ShipManifest& manifest) {
  std::string body = EncodeBody(manifest);
  const uint32_t crc =
      crc32c::Mask(crc32c::Value(body.data(), body.size()));
  body += "crc " + std::to_string(crc) + "\n";
  return body;
}

Result<ShipManifest> ParseShipManifest(const std::string& content) {
  // The CRC line must be the last line; verify it over everything before.
  const size_t crc_pos = content.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && content[crc_pos - 1] != '\n')) {
    return Status::IoError("ship manifest has no crc line");
  }
  uint64_t stored = 0;
  {
    std::string line = content.substr(crc_pos + 4);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (!ParseU64(line, &stored) || stored > UINT32_MAX) {
      return Status::IoError("ship manifest has a corrupt crc value");
    }
  }
  if (crc32c::Unmask(static_cast<uint32_t>(stored)) !=
      crc32c::Value(content.data(), crc_pos)) {
    return Status::IoError("ship manifest failed its checksum");
  }

  std::istringstream in(content.substr(0, crc_pos));
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    return Status::IoError("ship manifest has a bad magic line");
  }
  ShipManifest manifest;
  std::string word;
  uint64_t shard_count = 0;
  {
    if (!std::getline(in, line)) {
      return Status::IoError("ship manifest is truncated");
    }
    std::istringstream fields(line);
    if (!(fields >> word) || word != "published" || !(fields >> word) ||
        !ParseU64(word, &manifest.published_seq)) {
      return Status::IoError("ship manifest has a corrupt published line");
    }
  }
  {
    if (!std::getline(in, line)) {
      return Status::IoError("ship manifest is truncated");
    }
    std::istringstream fields(line);
    if (!(fields >> word) || word != "shards" || !(fields >> word) ||
        !ParseU64(word, &shard_count)) {
      return Status::IoError("ship manifest has a corrupt shards line");
    }
  }
  for (uint64_t i = 0; i < shard_count; ++i) {
    if (!std::getline(in, line)) {
      return Status::IoError("ship manifest is missing shard records");
    }
    std::istringstream fields(line);
    ShipManifest::Shard shard;
    uint64_t snapshot_flag = 0;
    uint64_t digest = 0;
    auto expect = [&fields, &word](const char* name, uint64_t* value) {
      std::string token;
      return (fields >> word) && word == name && (fields >> token) &&
             ParseU64(token, value);
    };
    uint64_t index = 0;
    if (!(fields >> word) || word != "shard" || !(fields >> word) ||
        !ParseU64(word, &index) || !expect("published", &shard.published) ||
        !expect("base", &shard.wal_base) ||
        !expect("bytes", &shard.wal_bytes) ||
        !expect("snapshot", &snapshot_flag) || snapshot_flag > 1 ||
        !expect("rows", &shard.rows) || !expect("digest", &digest) ||
        digest > UINT32_MAX) {
      return Status::IoError("ship manifest has a corrupt shard record");
    }
    shard.index = index;
    shard.has_snapshot = snapshot_flag == 1;
    shard.digest = static_cast<uint32_t>(digest);
    manifest.shards.push_back(shard);
  }
  return manifest;
}

Status SaveShipManifest(Env* env, const std::string& path,
                        const ShipManifest& manifest) {
  const std::string encoded = EncodeShipManifest(manifest);
  return AtomicWriteFile(env, path, [&encoded](std::ostream* out) {
    out->write(encoded.data(),
               static_cast<std::streamsize>(encoded.size()));
    return Status::Ok();
  });
}

Result<ShipManifest> LoadShipManifest(Env* env, const std::string& path) {
  std::string content;
  CCE_RETURN_IF_ERROR(env->ReadFileToString(path, &content));
  return ParseShipManifest(content);
}

}  // namespace cce::io
