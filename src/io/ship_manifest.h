#ifndef CCE_IO_SHIP_MANIFEST_H_
#define CCE_IO_SHIP_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/env.h"

namespace cce::io {

/// The replication handshake between a leader's ShardLogShipper and a
/// follower's ReplicaProxy: one small checksummed text file, atomically
/// replaced per ship cycle, that names the published sequence watermark
/// and, per shard, exactly which snapshot generation + WAL prefix the
/// follower should be reading and what digest its applied state must
/// reproduce.
///
/// Layout (text, one record per line, trailing CRC over everything above):
///
///   CCESHIP 1
///   published <seq>
///   shards <n>
///   shard <index> published <p> base <b> bytes <len> snapshot <0|1>
///       rows <r> digest <d>                            (one line each)
///   ...
///   crc <masked CRC-32C of all preceding bytes>
///
/// Semantics:
///   - `published` is the leader's watermark P: every acknowledged record
///     with sequence < P is contained in the shipped files. Frames with
///     sequence >= P may also appear (they were in flight past the
///     watermark when the segment was copied); followers must filter.
///   - each shard record carries its *own* published watermark p <= P:
///     the watermark its shipped files are guaranteed complete up to. A
///     shard the shipper had to skip (generation fence kept failing)
///     keeps its previous files and previous p, so a follower never
///     treats stale files as complete up to the new P. The follower's
///     consistent view sequence is min(p) over shards.
///   - `base` is the shipped WAL generation (header base_recorded). It
///     must equal the shipped snapshot's covers count — the generation
///     fence both sides check.
///   - `bytes` is the length of the valid shipped WAL prefix. A follower
///     that salvages fewer bytes from the shipped segment than `bytes` is
///     looking at a torn ship and must quarantine that shard's tail.
///   - `digest` is the CRC-32C over the EncodeWalRecordPayload bytes of
///     every shipped row with sequence < P, in sequence order (snapshot
///     rows, then frames); `rows` is how many rows that covered. The
///     follower recomputes it from applied state — any mismatch is
///     divergence and triggers a resync.
struct ShipManifest {
  uint64_t published_seq = 0;
  struct Shard {
    uint64_t index = 0;
    /// This shard's completeness watermark (<= published_seq; see above).
    uint64_t published = 0;
    /// base_recorded of the shipped WAL generation (== snapshot covers).
    uint64_t wal_base = 0;
    /// Valid bytes of the shipped WAL segment (header + whole frames).
    uint64_t wal_bytes = 0;
    bool has_snapshot = false;
    /// Rows with seq < `published` covered by `digest`.
    uint64_t rows = 0;
    /// Masked CRC-32C over the covered rows' payload encodings.
    uint32_t digest = 0;
  };
  std::vector<Shard> shards;
};

/// Renders the manifest, including the trailing CRC line.
std::string EncodeShipManifest(const ShipManifest& manifest);

/// Parses and checksum-verifies `content`. kIoError for any damage —
/// truncated file, bad CRC, malformed record — so a half-replaced or
/// bit-flipped manifest can never steer a follower.
Result<ShipManifest> ParseShipManifest(const std::string& content);

/// Atomically writes the manifest at `path` through `env`.
Status SaveShipManifest(Env* env, const std::string& path,
                        const ShipManifest& manifest);

/// Reads and parses the manifest at `path`. kNotFound when absent.
Result<ShipManifest> LoadShipManifest(Env* env, const std::string& path);

}  // namespace cce::io

#endif  // CCE_IO_SHIP_MANIFEST_H_
