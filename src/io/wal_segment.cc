#include "io/wal_segment.h"

#include <cstring>

#include "common/crc32c.h"

namespace cce::io {
namespace {

constexpr char kMagic[8] = {'C', 'C', 'E', 'W', 'A', 'L', '\x01', '\n'};
constexpr uint32_t kVersion = 1;

}  // namespace

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFFu));
  out->push_back(static_cast<char>((v >> 8) & 0xFFu));
  out->push_back(static_cast<char>((v >> 16) & 0xFFu));
  out->push_back(static_cast<char>((v >> 24) & 0xFFu));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

std::string EncodeWalHeader(uint64_t base) {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU64(&header, base);
  PutU32(&header, crc32c::Mask(crc32c::Value(header.data(), header.size())));
  return header;
}

std::string EncodeWalRecordPayload(const Instance& x, Label y, uint64_t seq) {
  std::string payload;
  payload.reserve(kWalPayloadFixed + 4 * x.size());
  PutU64(&payload, seq);
  PutU32(&payload, y);
  PutU32(&payload, static_cast<uint32_t>(x.size()));
  for (ValueId v : x) PutU32(&payload, v);
  return payload;
}

std::string EncodeWalFrame(const Instance& x, Label y, uint64_t seq) {
  const std::string payload = EncodeWalRecordPayload(x, y, seq);
  std::string frame;
  frame.reserve(kWalFrameOverhead + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  frame += payload;
  return frame;
}

WalSegmentView ScanWalSegment(const std::string& content) {
  WalSegmentView view;
  if (content.size() < kWalHeaderSize) return view;
  if (std::memcmp(content.data(), kMagic, sizeof(kMagic)) != 0) return view;
  if (GetU32(content.data() + 8) != kVersion) return view;
  const uint32_t stored = GetU32(content.data() + 20);
  if (crc32c::Unmask(stored) !=
      crc32c::Value(content.data(), kWalHeaderSize - 4)) {
    return view;
  }
  view.header_ok = true;
  view.base_recorded = GetU64(content.data() + 12);

  size_t pos = kWalHeaderSize;
  // Salvage the longest valid frame prefix; any failure below means a torn
  // or corrupt tail and stops the scan (never resurrect a record past the
  // first bad byte).
  while (true) {
    if (pos + kWalFrameOverhead > content.size()) break;
    const uint32_t len = GetU32(content.data() + pos);
    const uint32_t masked_crc = GetU32(content.data() + pos + 4);
    if (len < kWalPayloadFixed || len > kWalMaxPayload) break;
    if (pos + kWalFrameOverhead + len > content.size()) break;
    const char* payload = content.data() + pos + kWalFrameOverhead;
    if (crc32c::Unmask(masked_crc) != crc32c::Value(payload, len)) break;
    const uint64_t seq = GetU64(payload);
    const uint32_t label = GetU32(payload + 8);
    const uint32_t value_count = GetU32(payload + 12);
    if (len != kWalPayloadFixed + 4ull * value_count) break;
    // A checksum-valid frame whose sequence fails to increase is a
    // duplicated or misplaced tail block (e.g. a replayed copy of the last
    // frame). Sequences are sparse — the owner interleaves shards in one
    // global order — so only monotonicity can be checked.
    if (view.has_seq && seq <= view.last_seq) break;
    WalFrame frame;
    frame.seq = seq;
    frame.y = static_cast<Label>(label);
    frame.x.resize(value_count);
    for (uint32_t i = 0; i < value_count; ++i) {
      frame.x[i] = GetU32(payload + kWalPayloadFixed + 4 * i);
    }
    view.frames.push_back(std::move(frame));
    view.last_seq = seq;
    view.has_seq = true;
    pos += kWalFrameOverhead + len;
  }
  view.valid_end = pos;
  return view;
}

}  // namespace cce::io
