#ifndef CCE_IO_WAL_SEGMENT_H_
#define CCE_IO_WAL_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace cce::io {

/// The context-WAL byte format, factored out of ContextWal so every reader
/// of the format — the live log writer's recovery path, the leader-side
/// log shipper, and the follower's tailer — parses frames with the same
/// salvage-prefix rules. See io/context_wal.h for the on-disk layout; the
/// length-prefixed framing is deliberately socket-ready (a shipped segment
/// and a streamed segment are the same bytes).

/// Header: magic (8) + u32 version + u64 base_recorded + u32 masked CRC.
inline constexpr size_t kWalHeaderSize = 24;
/// Bytes before the payload in every frame: u32 length + u32 masked CRC.
inline constexpr size_t kWalFrameOverhead = 8;
/// Fixed payload prefix: u64 seq + u32 label + u32 value_count.
inline constexpr size_t kWalPayloadFixed = 16;
/// Upper bound on a frame payload; anything larger is corruption, not a
/// record (16 MiB ≈ a 4M-feature instance).
inline constexpr uint32_t kWalMaxPayload = 1u << 24;

/// Little-endian integer helpers shared by every writer of the format.
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
uint32_t GetU32(const char* p);
uint64_t GetU64(const char* p);

/// The 24-byte generation header for base_recorded = `base`.
std::string EncodeWalHeader(uint64_t base);

/// The record payload (seq, label, value_count, values) — the unit both
/// the frame CRC and the replication divergence digest are computed over.
std::string EncodeWalRecordPayload(const Instance& x, Label y, uint64_t seq);

/// A full frame: u32 length + u32 masked CRC + payload.
std::string EncodeWalFrame(const Instance& x, Label y, uint64_t seq);

/// One salvaged record.
struct WalFrame {
  uint64_t seq = 0;
  Instance x;
  Label y = 0;
};

/// What ScanWalSegment found in a byte buffer holding a WAL segment.
struct WalSegmentView {
  /// Header present, version-matched and checksum-valid. When false the
  /// segment is unusable and every other field is zero/empty.
  bool header_ok = false;
  /// base_recorded from the header.
  uint64_t base_recorded = 0;
  /// Bytes of the valid prefix (header + whole valid frames). Everything
  /// past it is torn, corrupt, or a duplicated tail.
  size_t valid_end = 0;
  /// Largest sequence in the valid prefix; meaningful when has_seq.
  uint64_t last_seq = 0;
  bool has_seq = false;
  /// Salvaged records, in append (= sequence) order.
  std::vector<WalFrame> frames;
};

/// Salvage-prefix scan of `content`: decodes whole checksum-valid frames
/// with strictly increasing sequence numbers and stops at the first torn,
/// corrupt or non-monotonic frame — never resurrecting a record past the
/// first bad byte. Works on any byte source (a file read, a shipped
/// segment, a socket buffer).
WalSegmentView ScanWalSegment(const std::string& content);

}  // namespace cce::io

#endif  // CCE_IO_WAL_SEGMENT_H_
