#include "ml/eval.h"

#include <algorithm>
#include <numeric>

namespace cce::ml {

Result<double> AreaUnderRoc(const std::vector<double>& scores,
                            const std::vector<Label>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  size_t positives = 0;
  for (Label y : labels) {
    if (y > 1) {
      return Status::InvalidArgument("labels must be binary");
    }
    positives += y;
  }
  size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) {
    return Status::FailedPrecondition(
        "AUC undefined with a single class present");
  }

  // Rank-based AUC: sort by score, assign average ranks to ties, then
  // AUC = (sum of positive ranks - P(P+1)/2) / (P * N).
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> ranks(scores.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    double average_rank = (static_cast<double>(i) +
                           static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = average_rank;
    i = j + 1;
  }
  double positive_rank_sum = 0.0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) positive_rank_sum += ranks[k];
  }
  double p = static_cast<double>(positives);
  double auc = (positive_rank_sum - p * (p + 1.0) / 2.0) /
               (p * static_cast<double>(negatives));
  return auc;
}

Result<BinaryReport> EvaluateBinary(const Model& model,
                                    const Dataset& dataset) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot evaluate on an empty dataset");
  }
  BinaryReport report;
  std::vector<double> scores;
  scores.reserve(dataset.size());
  for (size_t row = 0; row < dataset.size(); ++row) {
    Label truth = dataset.label(row);
    if (truth > 1) {
      return Status::InvalidArgument("labels must be binary");
    }
    Label predicted = model.Predict(dataset.instance(row));
    scores.push_back(model.Score(dataset.instance(row)));
    if (predicted == 1 && truth == 1) ++report.true_positives;
    if (predicted == 0 && truth == 0) ++report.true_negatives;
    if (predicted == 1 && truth == 0) ++report.false_positives;
    if (predicted == 0 && truth == 1) ++report.false_negatives;
  }
  double total = static_cast<double>(dataset.size());
  report.accuracy =
      static_cast<double>(report.true_positives + report.true_negatives) /
      total;
  size_t predicted_positive =
      report.true_positives + report.false_positives;
  size_t actual_positive = report.true_positives + report.false_negatives;
  report.precision =
      predicted_positive == 0
          ? 0.0
          : static_cast<double>(report.true_positives) /
                static_cast<double>(predicted_positive);
  report.recall = actual_positive == 0
                      ? 0.0
                      : static_cast<double>(report.true_positives) /
                            static_cast<double>(actual_positive);
  report.f1 = (report.precision + report.recall) == 0.0
                  ? 0.0
                  : 2.0 * report.precision * report.recall /
                        (report.precision + report.recall);
  Result<double> auc = AreaUnderRoc(scores, dataset.labels());
  report.auc = auc.ok() ? *auc : 0.5;
  return report;
}

}  // namespace cce::ml
