#ifndef CCE_ML_EVAL_H_
#define CCE_ML_EVAL_H_

#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/model.h"

namespace cce::ml {

/// Binary-classification evaluation report.
struct BinaryReport {
  size_t true_positives = 0;
  size_t true_negatives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double accuracy = 0.0;
  double precision = 0.0;  // of the positive class
  double recall = 0.0;
  double f1 = 0.0;
  double auc = 0.0;  // ranking quality of Model::Score
};

/// Evaluates `model` against the labelled `dataset` (labels 0/1).
Result<BinaryReport> EvaluateBinary(const Model& model,
                                    const Dataset& dataset);

/// Area under the ROC curve for raw `scores` against binary `labels`,
/// computed by the rank statistic (ties get half credit).
Result<double> AreaUnderRoc(const std::vector<double>& scores,
                            const std::vector<Label>& labels);

}  // namespace cce::ml

#endif  // CCE_ML_EVAL_H_
