#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace cce::ml {
namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

namespace {

// Validation log-loss of `margins` against labels.
double LogLoss(const std::vector<double>& margins,
               const std::vector<Label>& labels) {
  double total = 0.0;
  for (size_t i = 0; i < margins.size(); ++i) {
    double p = std::clamp(Sigmoid(margins[i]), 1e-12, 1.0 - 1e-12);
    total -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return total / static_cast<double>(margins.size());
}

}  // namespace

Result<std::unique_ptr<Gbdt>> Gbdt::Train(const Dataset& train,
                                          const Options& options) {
  if (options.early_stopping_rounds > 0) {
    return Status::InvalidArgument(
        "early stopping needs a validation set; use TrainWithValidation");
  }
  Dataset no_validation(train.schema_ptr());
  return TrainWithValidation(train, no_validation, options);
}

Result<std::unique_ptr<Gbdt>> Gbdt::TrainWithValidation(
    const Dataset& train, const Dataset& validation,
    const Options& options) {
  if (train.empty()) {
    return Status::InvalidArgument("training set is empty");
  }
  if (options.num_trees <= 0 || options.max_depth <= 0) {
    return Status::InvalidArgument("num_trees and max_depth must be > 0");
  }
  if (options.subsample <= 0.0 || options.subsample > 1.0) {
    return Status::InvalidArgument("subsample must be in (0, 1]");
  }
  if (options.colsample <= 0.0 || options.colsample > 1.0) {
    return Status::InvalidArgument("colsample must be in (0, 1]");
  }
  if (options.early_stopping_rounds > 0 && validation.empty()) {
    return Status::InvalidArgument(
        "early_stopping_rounds > 0 requires a non-empty validation set");
  }
  for (size_t i = 0; i < train.size(); ++i) {
    if (train.label(i) > 1) {
      return Status::InvalidArgument(
          "Gbdt supports binary labels (ids 0/1) only");
    }
  }

  auto model = std::unique_ptr<Gbdt>(new Gbdt());

  // Prior log-odds of the positive class, clamped away from +-inf for
  // single-class training sets.
  size_t positives = 0;
  for (size_t i = 0; i < train.size(); ++i) positives += train.label(i);
  double p = std::clamp(static_cast<double>(positives) /
                            static_cast<double>(train.size()),
                        1e-6, 1.0 - 1e-6);
  model->base_score_ = std::log(p / (1.0 - p));

  std::vector<double> margins(train.size(), model->base_score_);
  std::vector<double> validation_margins(validation.size(),
                                         model->base_score_);
  std::vector<double> gradients(train.size());
  std::vector<double> hessians(train.size());
  Rng rng(options.seed);

  RegressionTree::Options tree_options;
  tree_options.max_depth = options.max_depth;
  tree_options.lambda = options.lambda;
  tree_options.gamma = options.gamma;
  tree_options.min_child_weight = options.min_child_weight;

  const size_t n = train.num_features();
  double best_validation_loss = std::numeric_limits<double>::infinity();
  size_t best_round_trees = 0;
  int rounds_since_improvement = 0;

  for (int round = 0; round < options.num_trees; ++round) {
    for (size_t i = 0; i < train.size(); ++i) {
      double prob = Sigmoid(margins[i]);
      gradients[i] = prob - static_cast<double>(train.label(i));
      hessians[i] = std::max(prob * (1.0 - prob), 1e-12);
    }

    std::vector<size_t> rows;
    if (options.subsample >= 1.0) {
      rows.resize(train.size());
      for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    } else {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(options.subsample *
                                 static_cast<double>(train.size())));
      rows = rng.SampleWithoutReplacement(train.size(), k);
      std::sort(rows.begin(), rows.end());
    }

    if (options.colsample < 1.0) {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(options.colsample *
                                 static_cast<double>(n)));
      tree_options.allowed_features.assign(n, false);
      for (size_t f : rng.SampleWithoutReplacement(n, k)) {
        tree_options.allowed_features[f] = true;
      }
    }

    RegressionTree tree;
    tree.Fit(train, gradients, hessians, rows, tree_options);
    tree.ScaleLeaves(options.learning_rate);
    for (size_t i = 0; i < train.size(); ++i) {
      margins[i] += tree.Predict(train.instance(i));
    }
    for (size_t i = 0; i < validation.size(); ++i) {
      validation_margins[i] += tree.Predict(validation.instance(i));
    }
    model->trees_.push_back(std::move(tree));

    if (options.early_stopping_rounds > 0) {
      double loss = LogLoss(validation_margins, validation.labels());
      if (loss < best_validation_loss - 1e-9) {
        best_validation_loss = loss;
        best_round_trees = model->trees_.size();
        rounds_since_improvement = 0;
      } else if (++rounds_since_improvement >=
                 options.early_stopping_rounds) {
        break;
      }
    }
  }
  if (options.early_stopping_rounds > 0 && best_round_trees > 0) {
    model->trees_.resize(best_round_trees);
  }
  return model;
}

std::unique_ptr<Gbdt> Gbdt::FromParts(double base_score,
                                      std::vector<RegressionTree> trees) {
  auto model = std::unique_ptr<Gbdt>(new Gbdt());
  model->base_score_ = base_score;
  model->trees_ = std::move(trees);
  return model;
}

double Gbdt::Margin(const Instance& x) const {
  double margin = base_score_;
  for (const RegressionTree& tree : trees_) margin += tree.Predict(x);
  return margin;
}

double Gbdt::Probability(const Instance& x) const {
  return Sigmoid(Margin(x));
}

Label Gbdt::Predict(const Instance& x) const {
  return Margin(x) > 0.0 ? 1 : 0;
}

std::vector<double> Gbdt::GainImportance(size_t num_features) const {
  std::vector<double> importance(num_features, 0.0);
  double total = 0.0;
  for (const RegressionTree& tree : trees_) {
    for (const TreeNode& node : tree.nodes()) {
      if (node.is_leaf || node.feature >= num_features) continue;
      importance[node.feature] += node.gain;
      total += node.gain;
    }
  }
  if (total > 0.0) {
    for (double& value : importance) value /= total;
  }
  return importance;
}

std::vector<FeatureId> Gbdt::UsedFeatures() const {
  std::vector<FeatureId> used;
  for (const RegressionTree& tree : trees_) {
    std::vector<FeatureId> tree_used = tree.UsedFeatures();
    used.insert(used.end(), tree_used.begin(), tree_used.end());
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

}  // namespace cce::ml
