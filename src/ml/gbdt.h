#ifndef CCE_ML_GBDT_H_
#define CCE_ML_GBDT_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/model.h"
#include "ml/tree.h"

namespace cce::ml {

/// Gradient-boosted decision trees for binary classification with the
/// second-order logistic objective — a from-scratch stand-in for the
/// XGBoost models the paper trains (Section 7.1). Implements cce::Model, so
/// every explainer (and none of the relative-key code) can query it.
class Gbdt : public Model {
 public:
  struct Options {
    int num_trees = 50;
    int max_depth = 4;
    double learning_rate = 0.2;
    double lambda = 1.0;
    double gamma = 0.0;
    double min_child_weight = 1.0;
    double subsample = 1.0;    // row subsampling fraction per round
    double colsample = 1.0;    // feature subsampling fraction per round
    /// Stop when the validation log-loss has not improved for this many
    /// rounds (0 disables; requires a validation set at Train time).
    int early_stopping_rounds = 0;
    uint64_t seed = 7;
  };

  /// Trains on `train`; labels must be binary (0/1 label ids).
  static Result<std::unique_ptr<Gbdt>> Train(const Dataset& train,
                                             const Options& options);

  /// Trains with early stopping monitored on `validation` (required
  /// non-empty when options.early_stopping_rounds > 0). The returned
  /// ensemble is truncated to the best validation round.
  static Result<std::unique_ptr<Gbdt>> TrainWithValidation(
      const Dataset& train, const Dataset& validation,
      const Options& options);

  /// Rebuilds an ensemble from its parts (deserialization path).
  static std::unique_ptr<Gbdt> FromParts(double base_score,
                                         std::vector<RegressionTree> trees);

  /// Raw additive margin (positive favours label 1).
  double Margin(const Instance& x) const;

  /// Positive-class probability sigmoid(margin).
  double Probability(const Instance& x) const;

  // Model interface.
  Label Predict(const Instance& x) const override;
  double Score(const Instance& x) const override { return Margin(x); }

  /// Ensemble internals for the formal explainer.
  const std::vector<RegressionTree>& trees() const { return trees_; }
  double base_score() const { return base_score_; }

  /// Features used anywhere in the ensemble, sorted unique.
  std::vector<FeatureId> UsedFeatures() const;

  /// Global gain-based feature importance: total split gain attributed to
  /// each feature across the ensemble, normalised to sum to 1 (all zeros
  /// for a stump-only model). The standard "model importance" XGBoost
  /// reports; contrast with context-relative importance
  /// (core/importance.h).
  std::vector<double> GainImportance(size_t num_features) const;

 private:
  Gbdt() = default;

  std::vector<RegressionTree> trees_;
  double base_score_ = 0.0;  // prior log-odds
};

}  // namespace cce::ml

#endif  // CCE_ML_GBDT_H_
