#include "ml/multiclass.h"

#include <limits>

namespace cce::ml {

Result<std::unique_ptr<OneVsRestGbdt>> OneVsRestGbdt::Train(
    const Dataset& train, const Options& options) {
  if (train.empty()) {
    return Status::InvalidArgument("training set is empty");
  }
  Label max_label = 0;
  for (size_t row = 0; row < train.size(); ++row) {
    max_label = std::max(max_label, train.label(row));
  }
  const size_t num_classes = static_cast<size_t>(max_label) + 1;
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }

  auto model = std::unique_ptr<OneVsRestGbdt>(new OneVsRestGbdt());
  // A binary task per class: this-class-vs-rest, sharing the schema.
  for (size_t k = 0; k < num_classes; ++k) {
    Dataset binary(train.schema_ptr());
    for (size_t row = 0; row < train.size(); ++row) {
      binary.Add(train.instance(row),
                 train.label(row) == static_cast<Label>(k) ? 1u : 0u);
    }
    Gbdt::Options member_options = options.gbdt;
    member_options.seed = options.gbdt.seed + k;
    Result<std::unique_ptr<Gbdt>> member =
        Gbdt::Train(binary, member_options);
    if (!member.ok()) return member.status();
    model->members_.push_back(std::move(member).value());
  }
  return model;
}

std::vector<double> OneVsRestGbdt::ClassMargins(const Instance& x) const {
  std::vector<double> margins;
  margins.reserve(members_.size());
  for (const auto& member : members_) {
    margins.push_back(member->Margin(x));
  }
  return margins;
}

Label OneVsRestGbdt::Predict(const Instance& x) const {
  Label best = 0;
  double best_margin = -std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < members_.size(); ++k) {
    double margin = members_[k]->Margin(x);
    if (margin > best_margin) {
      best_margin = margin;
      best = static_cast<Label>(k);
    }
  }
  return best;
}

double OneVsRestGbdt::Score(const Instance& x) const {
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& member : members_) {
    best = std::max(best, member->Margin(x));
  }
  return best;
}

}  // namespace cce::ml
