#ifndef CCE_ML_MULTICLASS_H_
#define CCE_ML_MULTICLASS_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/model.h"
#include "ml/gbdt.h"

namespace cce::ml {

/// One-vs-rest multiclass classifier over K binary GBDTs. Relative keys
/// are label-agnostic (they only compare prediction ids), so multiclass
/// models plug into CCE unchanged — this covers tasks like German's credit
/// levels and, more broadly, any K-way serving pipeline.
class OneVsRestGbdt : public Model {
 public:
  struct Options {
    Gbdt::Options gbdt;
  };

  /// Trains on `train`; labels may be any ids in [0, num_labels).
  static Result<std::unique_ptr<OneVsRestGbdt>> Train(
      const Dataset& train, const Options& options);

  /// The class with the highest one-vs-rest margin.
  Label Predict(const Instance& x) const override;

  /// Margin of the winning class.
  double Score(const Instance& x) const override;

  /// Per-class margin vector.
  std::vector<double> ClassMargins(const Instance& x) const;

  size_t num_classes() const { return members_.size(); }
  const Gbdt& member(size_t k) const { return *members_[k]; }

 private:
  OneVsRestGbdt() = default;

  std::vector<std::unique_ptr<Gbdt>> members_;
};

}  // namespace cce::ml

#endif  // CCE_ML_MULTICLASS_H_
