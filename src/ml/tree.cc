#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace cce::ml {
namespace {

double LeafWeight(double grad_sum, double hess_sum, double lambda) {
  return -grad_sum / (hess_sum + lambda);
}

double HalfScore(double grad_sum, double hess_sum, double lambda) {
  return grad_sum * grad_sum / (hess_sum + lambda);
}

}  // namespace

void RegressionTree::Fit(const Dataset& data,
                         const std::vector<double>& gradients,
                         const std::vector<double>& hessians,
                         const std::vector<size_t>& rows,
                         const Options& options) {
  CCE_CHECK(gradients.size() == data.size());
  CCE_CHECK(hessians.size() == data.size());
  nodes_.clear();
  if (rows.empty()) {
    nodes_.push_back(TreeNode{});  // zero-weight leaf
    return;
  }
  BuildNode(data, gradients, hessians, rows, 0, options);
}

int RegressionTree::BuildNode(const Dataset& data,
                              const std::vector<double>& gradients,
                              const std::vector<double>& hessians,
                              const std::vector<size_t>& rows, int depth,
                              const Options& options) {
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  for (size_t row : rows) {
    grad_sum += gradients[row];
    hess_sum += hessians[row];
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{});
  nodes_[node_id].value = LeafWeight(grad_sum, hess_sum, options.lambda);

  if (depth >= options.max_depth || rows.size() < 2) return node_id;

  // Exact greedy split search via per-value histograms: domains are small
  // (bucketed numerics / categoricals), so accumulating G/H per value and
  // prefix-scanning in value order enumerates all "<= v" thresholds.
  const size_t n = data.num_features();
  double best_gain = options.gamma;
  FeatureId best_feature = 0;
  ValueId best_threshold = 0;
  const double parent_score = HalfScore(grad_sum, hess_sum, options.lambda);

  std::vector<double> grad_hist;
  std::vector<double> hess_hist;
  for (FeatureId f = 0; f < n; ++f) {
    if (!options.allowed_features.empty() &&
        (f >= options.allowed_features.size() ||
         !options.allowed_features[f])) {
      continue;
    }
    size_t domain = data.schema().DomainSize(f);
    if (domain < 2) continue;
    grad_hist.assign(domain, 0.0);
    hess_hist.assign(domain, 0.0);
    for (size_t row : rows) {
      ValueId v = data.value(row, f);
      if (v >= domain) continue;  // value unseen at schema freeze time
      grad_hist[v] += gradients[row];
      hess_hist[v] += hessians[row];
    }
    double left_grad = 0.0;
    double left_hess = 0.0;
    for (ValueId v = 0; v + 1 < domain; ++v) {
      left_grad += grad_hist[v];
      left_hess += hess_hist[v];
      double right_grad = grad_sum - left_grad;
      double right_hess = hess_sum - left_hess;
      if (left_hess < options.min_child_weight ||
          right_hess < options.min_child_weight) {
        continue;
      }
      double gain = 0.5 * (HalfScore(left_grad, left_hess, options.lambda) +
                           HalfScore(right_grad, right_hess,
                                     options.lambda) -
                           parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = v;
      }
    }
  }

  if (best_gain <= options.gamma) return node_id;  // keep as leaf

  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (size_t row : rows) {
    if (data.value(row, best_feature) <= best_threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  if (left_rows.empty() || right_rows.empty()) return node_id;

  int left = BuildNode(data, gradients, hessians, left_rows, depth + 1,
                       options);
  int right = BuildNode(data, gradients, hessians, right_rows, depth + 1,
                        options);
  TreeNode& node = nodes_[node_id];
  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  node.gain = best_gain;
  return node_id;
}

double RegressionTree::Predict(const Instance& x) const {
  CCE_CHECK(!nodes_.empty());
  int node_id = 0;
  while (!nodes_[node_id].is_leaf) {
    const TreeNode& node = nodes_[node_id];
    node_id = x[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[node_id].value;
}

std::pair<double, double> RegressionTree::ReachableRange(
    const std::vector<int64_t>& fixed) const {
  CCE_CHECK(!nodes_.empty());
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  // Iterative DFS; tree sizes are tiny (2^depth nodes).
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    int node_id = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_[node_id];
    if (node.is_leaf) {
      lo = std::min(lo, node.value);
      hi = std::max(hi, node.value);
      continue;
    }
    int64_t fixed_value =
        node.feature < fixed.size() ? fixed[node.feature] : -1;
    if (fixed_value < 0) {
      stack.push_back(node.left);
      stack.push_back(node.right);
    } else if (fixed_value <= static_cast<int64_t>(node.threshold)) {
      stack.push_back(node.left);
    } else {
      stack.push_back(node.right);
    }
  }
  return {lo, hi};
}

Result<RegressionTree> RegressionTree::FromNodes(
    std::vector<TreeNode> nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("a tree needs at least one node");
  }
  for (const TreeNode& node : nodes) {
    if (node.is_leaf) continue;
    if (node.left < 0 || node.right < 0 ||
        node.left >= static_cast<int>(nodes.size()) ||
        node.right >= static_cast<int>(nodes.size())) {
      return Status::InvalidArgument("tree node child index out of range");
    }
  }
  RegressionTree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

void RegressionTree::ScaleLeaves(double factor) {
  for (TreeNode& node : nodes_) {
    if (node.is_leaf) node.value *= factor;
  }
}

std::vector<FeatureId> RegressionTree::UsedFeatures() const {
  std::vector<FeatureId> used;
  for (const TreeNode& node : nodes_) {
    if (!node.is_leaf) used.push_back(node.feature);
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

}  // namespace cce::ml
