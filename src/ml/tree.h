#ifndef CCE_ML_TREE_H_
#define CCE_ML_TREE_H_

#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/types.h"

namespace cce::ml {

/// One node of a regression tree. Internal nodes route on
/// `value(x, feature) <= threshold` (dictionary codes are treated as
/// ordinals — bucketed numerics keep their order; categoricals get an
/// arbitrary but fixed order, as XGBoost does after label encoding).
struct TreeNode {
  bool is_leaf = true;
  FeatureId feature = 0;
  ValueId threshold = 0;  // go left iff x[feature] <= threshold
  int left = -1;
  int right = -1;
  double value = 0.0;  // leaf weight (only meaningful for leaves)
  double gain = 0.0;   // split gain (internal nodes; not serialized)
};

/// A depth-limited CART regression tree fitted on gradient/hessian pairs
/// with the second-order (XGBoost-style) gain:
///   gain = 1/2 [ GL^2/(HL+λ) + GR^2/(HR+λ) - G^2/(H+λ) ] - γ.
/// The tree structure is public so the formal explainer can reason about
/// reachable leaves under partial feature assignments.
class RegressionTree {
 public:
  struct Options {
    int max_depth = 4;
    double lambda = 1.0;           // L2 regularisation on leaf weights
    double gamma = 0.0;            // minimum gain to split
    double min_child_weight = 1.0; // minimum hessian mass per child
    /// When non-empty, only features with allowed_features[f] true may be
    /// split on (per-round column subsampling).
    std::vector<bool> allowed_features;
  };

  /// Fits the tree to rows `rows` of `data` with per-row gradients and
  /// hessians (indexed by dataset row id).
  void Fit(const Dataset& data, const std::vector<double>& gradients,
           const std::vector<double>& hessians,
           const std::vector<size_t>& rows, const Options& options);

  /// Rebuilds a tree from serialized nodes (deserialization path).
  /// Validates child indices; node 0 is the root.
  static Result<RegressionTree> FromNodes(std::vector<TreeNode> nodes);

  /// Raw leaf weight reached by `x`.
  double Predict(const Instance& x) const;

  /// Bounds on the leaf weight reachable by any instance that agrees with
  /// `fixed` wherever it is non-negative (free features may take any value).
  /// Used by the formal explainer's branch-and-bound entailment oracle.
  /// `fixed[f] < 0` means feature f is unconstrained.
  std::pair<double, double> ReachableRange(
      const std::vector<int64_t>& fixed) const;

  /// Scales every leaf weight by `factor` (the ensemble learning rate).
  void ScaleLeaves(double factor);

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  bool empty() const { return nodes_.empty(); }

  /// Features referenced by any internal node, sorted and unique.
  std::vector<FeatureId> UsedFeatures() const;

 private:
  int BuildNode(const Dataset& data, const std::vector<double>& gradients,
                const std::vector<double>& hessians,
                const std::vector<size_t>& rows, int depth,
                const Options& options);

  std::vector<TreeNode> nodes_;
};

}  // namespace cce::ml

#endif  // CCE_ML_TREE_H_
