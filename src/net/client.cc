#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace cce::net {
namespace {

void SetTimeout(int fd, int which, std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout.count() / 1000;
  tv.tv_usec = (timeout.count() % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

}  // namespace

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port,
                                     const Options& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  SetTimeout(fd, SO_SNDTIMEO, options.send_timeout);
  SetTimeout(fd, SO_RCVTIMEO, options.recv_timeout);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return NetClient(fd);
}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void NetClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status NetClient::SendRaw(const void* data, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd_, p + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status NetClient::Send(const Request& request) {
  const std::string frame = EncodeRequest(request);
  return SendRaw(frame.data(), frame.size());
}

Status NetClient::ReadExact(void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::recv(fd_, p + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::Unavailable("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timeout");
    }
    return Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Result<Response> NetClient::Receive() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  uint8_t header_bytes[kFrameHeaderBytes];
  CCE_RETURN_IF_ERROR(ReadExact(header_bytes, sizeof(header_bytes)));
  FrameHeader header;
  CCE_RETURN_IF_ERROR(
      DecodeFrameHeader(header_bytes, sizeof(header_bytes), &header));
  if (header.body_len > (64u << 20)) {
    return Status::InvalidArgument("implausible response body length");
  }
  std::vector<uint8_t> body(header.body_len);
  if (header.body_len > 0) {
    CCE_RETURN_IF_ERROR(ReadExact(body.data(), body.size()));
  }
  Response response;
  CCE_RETURN_IF_ERROR(DecodeResponseBody(header, body.data(), &response));
  return response;
}

Result<Response> NetClient::Call(const Request& request) {
  CCE_RETURN_IF_ERROR(Send(request));
  return Receive();
}

Result<std::string> NetClient::HttpGet(const std::string& path) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: cce\r\nConnection: close\r\n\r\n";
  CCE_RETURN_IF_ERROR(SendRaw(request.data(), request.size()));
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      raw.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timeout");
    }
    return Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
  Close();  // server closes after one HTTP exchange; mirror it
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::InvalidArgument("malformed HTTP response");
  }
  if (raw.compare(0, 9, "HTTP/1.0 ") != 0 ||
      raw.compare(9, 3, "200") != 0) {
    return Status::NotFound("HTTP status: " + raw.substr(9, 3));
  }
  return raw.substr(header_end + 4);
}

}  // namespace cce::net
