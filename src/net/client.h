#ifndef CCE_NET_CLIENT_H_
#define CCE_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/protocol.h"

namespace cce::net {

/// A minimal blocking client for the CCE wire protocol — the building
/// block of the load generator and the tests. One client wraps one TCP
/// connection; Send and Receive are independent so callers can pipeline:
/// N Sends followed by N Receives exercises the server's per-tick
/// batching. Responses to pipelined requests may arrive out of request
/// order (the server completes work on a pool) — match on request_id.
///
/// Not thread-safe; one thread per client (or external locking).
class NetClient {
 public:
  struct Options {
    /// Receive timeout (SO_RCVTIMEO); zero blocks forever.
    std::chrono::milliseconds recv_timeout{0};
    /// Connect + send timeout (SO_SNDTIMEO); zero blocks forever.
    std::chrono::milliseconds send_timeout{0};
  };

  static Result<NetClient> Connect(const std::string& host, uint16_t port,
                                   const Options& options);
  static Result<NetClient> Connect(const std::string& host, uint16_t port) {
    return Connect(host, port, Options());
  }

  NetClient(NetClient&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  NetClient& operator=(NetClient&& other) noexcept;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  ~NetClient() { Close(); }

  /// Encodes and fully writes one request frame.
  Status Send(const Request& request);

  /// Blocks for one response frame. kDeadlineExceeded on a recv timeout,
  /// kUnavailable when the server closed the connection.
  Result<Response> Receive();

  /// Send + Receive. Only meaningful when nothing is pipelined (the next
  /// frame on the wire is this request's answer).
  Result<Response> Call(const Request& request);

  /// Writes raw bytes as-is — the torture tests use this to send
  /// garbage, truncated frames, and slow-loris fragments.
  Status SendRaw(const void* data, size_t len);

  /// One-shot HTTP GET on the protocol port (the server speaks minimal
  /// HTTP for /metrics); returns the response body. Consumes the
  /// connection — the server closes HTTP connections after one exchange.
  Result<std::string> HttpGet(const std::string& path);

  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  explicit NetClient(int fd) : fd_(fd) {}

  /// Reads exactly `len` bytes; kUnavailable on EOF.
  Status ReadExact(void* data, size_t len);

  int fd_ = -1;
};

}  // namespace cce::net

#endif  // CCE_NET_CLIENT_H_
