#include "net/loadgen/loadgen.h"

#include <poll.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <unordered_map>

#include "net/client.h"
#include "serving/overload.h"

namespace cce::net::loadgen {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

MessageType PickType(const Mix& mix, uint64_t* rng) {
  const double weights[4] = {mix.predict, mix.record, mix.explain,
                             mix.counterfactuals};
  double total = 0.0;
  for (double w : weights) total += w;
  const double roll =
      total * (static_cast<double>(XorShift64(rng) >> 11) / 9007199254740992.0);
  double acc = 0.0;
  static const MessageType kTypes[4] = {
      MessageType::kPredictRequest, MessageType::kRecordRequest,
      MessageType::kExplainRequest, MessageType::kCounterfactualsRequest};
  for (int i = 0; i < 4; ++i) {
    acc += weights[i];
    if (roll < acc) return kTypes[i];
  }
  return MessageType::kExplainRequest;
}

int ClassIndex(MessageType type) {
  switch (type) {
    case MessageType::kPredictRequest:
      return 0;
    case MessageType::kRecordRequest:
      return 1;
    case MessageType::kExplainRequest:
      return 2;
    default:
      return 3;
  }
}

struct Outstanding {
  int cls = 0;
  Clock::time_point sent_at;
};

/// One connection's traffic session; merged into the Report afterwards.
struct ConnResult {
  ClassStats per_class[4];
  std::vector<int64_t> ok_latencies_us;
  uint64_t retry_after_hints = 0;
  uint64_t retry_after_ms_total = 0;
  uint64_t unanswered = 0;
  uint64_t connect_failures = 0;
  Clock::time_point first_send{};
  Clock::time_point last_event{};
};

class ConnSession {
 public:
  ConnSession(const Options& options, size_t index, ConnResult* out)
      : options_(options),
        index_(index),
        out_(out),
        rng_(options.seed * 0x9E3779B97F4A7C15ull + index + 1) {}

  void Run() {
    auto client = NetClient::Connect(
        options_.host, options_.port,
        {.recv_timeout = options_.recv_timeout,
         .send_timeout = options_.recv_timeout});
    if (!client.ok()) {
      out_->connect_failures = 1;
      return;
    }
    client_ = &client.value();
    const Clock::time_point start = Clock::now();
    out_->first_send = start;
    const Clock::time_point end = start + options_.duration;
    if (options_.open_rate_rps > 0.0) {
      RunOpenLoop(end);
    } else {
      RunClosedLoop(end);
    }
    Drain();
    out_->last_event = Clock::now();
  }

 private:
  bool SendOne() {
    Request request;
    request.type = PickType(options_.mix, &rng_);
    request.request_id = ++next_id_;
    request.deadline_ms = options_.deadline_ms;
    const size_t slot =
        (index_ * 7919 + static_cast<size_t>(next_id_)) %
        options_.instances.size();
    request.instance = options_.instances[slot];
    request.label = options_.labels[slot % options_.labels.size()];
    const int cls = ClassIndex(request.type);
    if (!client_->Send(request).ok()) return false;
    ++out_->per_class[cls].sent;
    outstanding_[request.request_id] = {cls, Clock::now()};
    return true;
  }

  bool ReceiveOne() {
    Result<Response> received = client_->Receive();
    if (!received.ok()) return false;
    const Response& response = received.value();
    auto it = outstanding_.find(response.request_id);
    if (it == outstanding_.end()) return true;  // unmatched; ignore
    const int cls = it->second.cls;
    ClassStats& stats = out_->per_class[cls];
    switch (response.status) {
      case WireStatus::kOk: {
        ++stats.ok;
        if ((response.flags & kFlagDegraded) != 0) ++stats.degraded;
        if ((response.flags & kFlagCached) != 0) ++stats.cached;
        out_->ok_latencies_us.push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - it->second.sent_at)
                .count());
        break;
      }
      case WireStatus::kResourceExhausted:
        ++stats.shed;
        if (response.retry_after_ms > 0) {
          ++out_->retry_after_hints;
          out_->retry_after_ms_total += response.retry_after_ms;
        }
        break;
      case WireStatus::kDeadlineExceeded:
        ++stats.deadline_exceeded;
        break;
      default:
        ++stats.other_error;
        break;
    }
    outstanding_.erase(it);
    return true;
  }

  void RunClosedLoop(Clock::time_point end) {
    while (outstanding_.size() < options_.window && Clock::now() < end) {
      if (!SendOne()) return;
    }
    while (Clock::now() < end) {
      if (!ReceiveOne()) return;
      if (!SendOne()) return;
    }
  }

  void RunOpenLoop(Clock::time_point end) {
    const double per_conn_rps =
        options_.open_rate_rps / static_cast<double>(options_.connections);
    const auto interval = std::chrono::nanoseconds(
        static_cast<int64_t>(1e9 / std::max(per_conn_rps, 1e-6)));
    Clock::time_point next_send = Clock::now();
    while (true) {
      Clock::time_point now = Clock::now();
      if (now >= end) return;
      while (next_send <= now) {
        if (!SendOne()) return;
        next_send += interval;
      }
      // Wait for readability or the next arrival, whichever first — the
      // arrival process never blocks on the server.
      const auto wait = std::min(next_send, end) - now;
      pollfd pfd{client_->fd(), POLLIN, 0};
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(wait).count());
      int ready = ::poll(&pfd, 1, std::max(wait_ms, 0));
      if (ready > 0 && (pfd.revents & POLLIN) != 0) {
        if (!ReceiveOne()) return;
      }
    }
  }

  void Drain() {
    while (!outstanding_.empty() && client_->connected()) {
      if (!ReceiveOne()) break;
    }
    out_->unanswered += outstanding_.size();
    outstanding_.clear();
  }

  const Options& options_;
  const size_t index_;
  ConnResult* out_;
  uint64_t rng_;
  NetClient* client_ = nullptr;
  uint64_t next_id_ = 0;
  std::unordered_map<uint64_t, Outstanding> outstanding_;
};

int64_t Percentile(std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

std::vector<Instance> MakeInstancePool(size_t count, size_t features,
                                       size_t values, uint64_t seed) {
  std::vector<Instance> pool;
  pool.reserve(count);
  uint64_t rng = seed * 0x2545F4914F6CDD1Dull + 1;
  for (size_t i = 0; i < count; ++i) {
    Instance x(features);
    for (size_t f = 0; f < features; ++f) {
      x[f] = static_cast<ValueId>(XorShift64(&rng) % values);
    }
    pool.push_back(std::move(x));
  }
  return pool;
}

Result<Report> Run(const Options& options) {
  if (options.instances.empty()) {
    return Status::InvalidArgument("loadgen needs a non-empty instance pool");
  }
  if (options.labels.empty()) {
    return Status::InvalidArgument("loadgen needs at least one label");
  }
  if (options.connections == 0 || options.window == 0) {
    return Status::InvalidArgument("connections and window must be positive");
  }
  const double mix_total = options.mix.predict + options.mix.record +
                           options.mix.explain + options.mix.counterfactuals;
  if (mix_total <= 0.0) {
    return Status::InvalidArgument("traffic mix has no positive weight");
  }

  std::vector<ConnResult> results(options.connections);
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  const Clock::time_point started = Clock::now();
  for (size_t i = 0; i < options.connections; ++i) {
    threads.emplace_back([&options, i, &results] {
      ConnSession(options, i, &results[i]).Run();
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - started).count();

  Report report;
  std::vector<int64_t> latencies;
  for (const ConnResult& r : results) {
    for (int c = 0; c < 4; ++c) {
      ClassStats& into = report.per_class[c];
      const ClassStats& from = r.per_class[c];
      into.sent += from.sent;
      into.ok += from.ok;
      into.shed += from.shed;
      into.deadline_exceeded += from.deadline_exceeded;
      into.other_error += from.other_error;
      into.degraded += from.degraded;
      into.cached += from.cached;
    }
    report.retry_after_hints += r.retry_after_hints;
    report.retry_after_ms_total += r.retry_after_ms_total;
    report.unanswered += r.unanswered;
    report.connect_failures += r.connect_failures;
    latencies.insert(latencies.end(), r.ok_latencies_us.begin(),
                     r.ok_latencies_us.end());
  }
  for (int c = 0; c < 4; ++c) {
    const ClassStats& stats = report.per_class[c];
    report.sent += stats.sent;
    report.ok += stats.ok;
    report.shed += stats.shed;
    report.deadline_exceeded += stats.deadline_exceeded;
    report.other_error += stats.other_error;
  }
  report.elapsed_s = elapsed_s;
  const uint64_t completed = report.ok + report.shed +
                             report.deadline_exceeded + report.other_error;
  report.achieved_rps = elapsed_s > 0.0 ? completed / elapsed_s : 0.0;
  report.offered_rps = elapsed_s > 0.0 ? report.sent / elapsed_s : 0.0;
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = Percentile(latencies, 0.50);
  report.p95_us = Percentile(latencies, 0.95);
  report.p99_us = Percentile(latencies, 0.99);
  report.max_us = latencies.empty() ? 0 : latencies.back();
  return report;
}

std::string Report::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "elapsed %.3fs  offered %.0f req/s  achieved %.0f req/s\n",
                elapsed_s, offered_rps, achieved_rps);
  out += line;
  std::snprintf(line, sizeof(line),
                "sent %llu  ok %llu  shed %llu  deadline %llu  error %llu  "
                "unanswered %llu\n",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(deadline_exceeded),
                static_cast<unsigned long long>(other_error),
                static_cast<unsigned long long>(unanswered));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "ok latency us: p50 %lld  p95 %lld  p99 %lld  max %lld\n",
      static_cast<long long>(p50_us), static_cast<long long>(p95_us),
      static_cast<long long>(p99_us), static_cast<long long>(max_us));
  out += line;
  if (retry_after_hints > 0) {
    std::snprintf(line, sizeof(line),
                  "retry-after hints: %llu (mean %.1f ms)\n",
                  static_cast<unsigned long long>(retry_after_hints),
                  static_cast<double>(retry_after_ms_total) /
                      static_cast<double>(retry_after_hints));
    out += line;
  }
  static const char* kNames[4] = {"predict", "record", "explain",
                                  "counterfactuals"};
  for (int c = 0; c < 4; ++c) {
    const ClassStats& stats = per_class[c];
    if (stats.sent == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  %-16s sent %-8llu ok %-8llu shed %-7llu deadline %-5llu "
                  "error %-5llu degraded %-5llu cached %llu\n",
                  kNames[c], static_cast<unsigned long long>(stats.sent),
                  static_cast<unsigned long long>(stats.ok),
                  static_cast<unsigned long long>(stats.shed),
                  static_cast<unsigned long long>(stats.deadline_exceeded),
                  static_cast<unsigned long long>(stats.other_error),
                  static_cast<unsigned long long>(stats.degraded),
                  static_cast<unsigned long long>(stats.cached));
    out += line;
  }
  return out;
}

}  // namespace cce::net::loadgen
