#ifndef CCE_NET_LOADGEN_LOADGEN_H_
#define CCE_NET_LOADGEN_LOADGEN_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "net/protocol.h"

namespace cce::net::loadgen {

/// Per-class traffic weights; they need not sum to 1 (normalised
/// internally). Zero everywhere is an error.
struct Mix {
  double predict = 0.0;
  double record = 0.0;
  double explain = 1.0;
  double counterfactuals = 0.0;
};

/// The load generator: closed- and open-loop traffic against a NetServer,
/// with per-class mixes and pipelining (docs/operations.md has the smoke
/// recipe; bench_net drives it for BENCH_net.json).
///
///   closed loop — each connection keeps `window` requests outstanding
///   (send-one-per-receive after the ramp), measuring the server's
///   sustainable throughput: offered load adapts to service rate, and the
///   window is what the per-tick batching amortises over.
///
///   open loop — requests are paced at `open_rate_rps` regardless of
///   completions (arrivals don't wait for the server), which is how you
///   measure shedding honestly: a 20x flood keeps arriving even while
///   the server sheds, and every shed is counted at the wire.
struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Concurrent connections (one thread each).
  size_t connections = 4;
  /// Outstanding pipelined requests per connection (closed loop).
  size_t window = 32;

  /// Open-loop mode: pace arrivals at this aggregate rate instead of
  /// waiting for completions. 0 = closed loop.
  double open_rate_rps = 0.0;

  std::chrono::milliseconds duration{1000};
  /// Per-request deadline carried on the wire; 0 = none.
  uint32_t deadline_ms = 0;

  Mix mix;

  /// Instance pool cycled through by every connection (index advances
  /// per request, offset by connection). Must be non-empty.
  std::vector<Instance> instances;
  /// Label sent with Record/Explain/Counterfactuals; one per instance
  /// (parallel to `instances`) or a single shared value.
  std::vector<Label> labels = {0};

  /// Seeds the per-connection class picker (deterministic given seed,
  /// connections, and per-connection request ordinals).
  uint64_t seed = 1;

  /// Receive timeout guarding against a wedged server.
  std::chrono::milliseconds recv_timeout{10000};
};

struct ClassStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  /// kResourceExhausted responses (wire-level sheds).
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t other_error = 0;
  /// OK Explains flagged degraded / served from cache.
  uint64_t degraded = 0;
  uint64_t cached = 0;
};

struct Report {
  ClassStats per_class[4];  // indexed like serving::RequestClass
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t other_error = 0;
  /// Shed responses that carried a non-zero retry_after_ms hint.
  uint64_t retry_after_hints = 0;
  /// Sum of those hints (for the mean backoff a compliant client sees).
  uint64_t retry_after_ms_total = 0;
  /// Requests sent but never answered (connection cut / timeout).
  uint64_t unanswered = 0;
  uint64_t connect_failures = 0;

  double elapsed_s = 0.0;
  /// Completed responses (any status) per second of wall time.
  double achieved_rps = 0.0;
  /// Arrival rate actually offered (== achieved for closed loop).
  double offered_rps = 0.0;

  /// Latency of OK responses, microseconds.
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;

  /// Human-readable multi-line summary.
  std::string ToString() const;
};

/// Runs one traffic session. Blocks for ~Options::duration.
Result<Report> Run(const Options& options);

/// Deterministic instance pool for servers built on a uniform random
/// schema: `count` instances over `features` features with `values`
/// values each, seeded — the pool the example server and the CLI agree
/// on without sharing state.
std::vector<Instance> MakeInstancePool(size_t count, size_t features,
                                       size_t values, uint64_t seed);

}  // namespace cce::net::loadgen

#endif  // CCE_NET_LOADGEN_LOADGEN_H_
