// cce_loadgen — drive a NetServer with closed- or open-loop traffic.
//
// The instance pool is regenerated from the same synthetic dataset the
// example server builds (--dataset/--data-seed/--rows must match the
// server's flags), so every wire instance is valid for the server's
// schema without any shared state. See docs/operations.md for recipes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/generators.h"
#include "net/loadgen/loadgen.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [options]\n"
      "  --host H           server address (default 127.0.0.1)\n"
      "  --port P           server port (required)\n"
      "  --dataset NAME     Adult|German|Compas|Loan|Recid (default Compas)\n"
      "  --data-seed S      dataset seed, must match the server (default 7)\n"
      "  --rows N           dataset rows, must match the server (default 0 ="
      " paper size)\n"
      "  --pool N           instances drawn from the dataset (default 256)\n"
      "  --conns N          connections/threads (default 4)\n"
      "  --window N         pipelined requests per connection (default 32)\n"
      "  --rate R           open-loop arrivals/s; 0 = closed loop (default)\n"
      "  --duration-ms D    traffic duration (default 2000)\n"
      "  --deadline-ms D    per-request deadline on the wire (default 0)\n"
      "  --mix P:R:E:C      predict:record:explain:counterfactuals weights\n"
      "                     (default 0:0:1:0)\n"
      "  --seed S           traffic seed (default 1)\n",
      argv0);
}

bool ParseMix(const char* arg, cce::net::loadgen::Mix* mix) {
  return std::sscanf(arg, "%lf:%lf:%lf:%lf", &mix->predict, &mix->record,
                     &mix->explain, &mix->counterfactuals) == 4;
}

}  // namespace

int main(int argc, char** argv) {
  cce::net::loadgen::Options options;
  std::string dataset_name = "Compas";
  uint64_t data_seed = 7;
  size_t rows = 0;
  size_t pool = 256;
  options.duration = std::chrono::milliseconds(2000);

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    auto next = [&]() -> const char* {
      ++i;
      return value;
    };
    if (flag == "--help" || flag == "-h") {
      Usage(argv[0]);
      return 0;
    }
    if (value == nullptr) {
      Usage(argv[0]);
      return 2;
    }
    if (flag == "--host") {
      options.host = next();
    } else if (flag == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (flag == "--dataset") {
      dataset_name = next();
    } else if (flag == "--data-seed") {
      data_seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--rows") {
      rows = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--pool") {
      pool = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--conns") {
      options.connections = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--window") {
      options.window = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--rate") {
      options.open_rate_rps = std::atof(next());
    } else if (flag == "--duration-ms") {
      options.duration = std::chrono::milliseconds(std::atoll(next()));
    } else if (flag == "--deadline-ms") {
      options.deadline_ms = static_cast<uint32_t>(std::atoi(next()));
    } else if (flag == "--mix") {
      if (!ParseMix(next(), &options.mix)) {
        std::fprintf(stderr, "bad --mix (want P:R:E:C)\n");
        return 2;
      }
    } else if (flag == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (options.port == 0) {
    Usage(argv[0]);
    return 2;
  }

  auto dataset = cce::data::GenerateByName(dataset_name, data_seed, rows);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const size_t take = std::min(pool, dataset->size());
  options.instances.clear();
  options.labels.clear();
  for (size_t row = 0; row < take; ++row) {
    options.instances.push_back(dataset->instance(row));
    options.labels.push_back(dataset->label(row));
  }

  auto report = cce::net::loadgen::Run(options);
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report->ToString().c_str(), stdout);
  // Non-zero when nothing got through — lets shell recipes fail fast.
  return report->ok > 0 ? 0 : 1;
}
