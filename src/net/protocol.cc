#include "net/protocol.h"

#include <cstring>

namespace cce::net {
namespace {

// Little-endian byte accessors. Explicit shifts (not memcpy of structs)
// keep the wire layout independent of host struct padding and endianness.
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

/// Bounded cursor over a frame body: every read checks the remaining
/// length, so a truncated or lying body_len can never read past the
/// buffer — the fuzz half of net_protocol_test hammers this.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool ReadU8(uint8_t* v) {
    if (len_ - pos_ < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (len_ - pos_ < 2) return false;
    *v = GetU16(data_ + pos_);
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (len_ - pos_ < 4) return false;
    *v = GetU32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (len_ - pos_ < 8) return false;
    *v = GetU64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }
  bool ReadU32Vector(size_t count, std::vector<uint32_t>* out) {
    if ((len_ - pos_) / 4 < count) return false;
    out->resize(count);
    for (size_t i = 0; i < count; ++i) {
      (*out)[i] = GetU32(data_ + pos_);
      pos_ += 4;
    }
    return true;
  }
  bool ReadString(size_t count, std::string* out) {
    if (len_ - pos_ < count) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), count);
    pos_ += count;
    return true;
  }

  bool exhausted() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Reserves a full header at the front of `frame` and patches body_len in
/// once the body is written.
void FinishFrame(std::string* frame, MessageType type, uint64_t request_id) {
  FrameHeader header;
  header.type = static_cast<uint8_t>(type);
  header.request_id = request_id;
  header.body_len = static_cast<uint32_t>(frame->size() - kFrameHeaderBytes);
  EncodeFrameHeader(header,
                    reinterpret_cast<uint8_t*>(frame->data()));
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPredictRequest:
      return "PREDICT_REQUEST";
    case MessageType::kRecordRequest:
      return "RECORD_REQUEST";
    case MessageType::kExplainRequest:
      return "EXPLAIN_REQUEST";
    case MessageType::kCounterfactualsRequest:
      return "COUNTERFACTUALS_REQUEST";
    case MessageType::kPredictResponse:
      return "PREDICT_RESPONSE";
    case MessageType::kRecordResponse:
      return "RECORD_RESPONSE";
    case MessageType::kExplainResponse:
      return "EXPLAIN_RESPONSE";
    case MessageType::kCounterfactualsResponse:
      return "COUNTERFACTUALS_RESPONSE";
    case MessageType::kErrorResponse:
      return "ERROR_RESPONSE";
    case MessageType::kBatchExplainRequest:
      return "BATCH_EXPLAIN_REQUEST";
    case MessageType::kBatchExplainResponse:
      return "BATCH_EXPLAIN_RESPONSE";
  }
  return nullptr;
}

bool IsRequestType(MessageType type) {
  switch (type) {
    case MessageType::kPredictRequest:
    case MessageType::kRecordRequest:
    case MessageType::kExplainRequest:
    case MessageType::kCounterfactualsRequest:
    case MessageType::kBatchExplainRequest:
      return true;
    default:
      return false;
  }
}

MessageType ResponseTypeFor(MessageType type) {
  switch (type) {
    case MessageType::kPredictRequest:
      return MessageType::kPredictResponse;
    case MessageType::kRecordRequest:
      return MessageType::kRecordResponse;
    case MessageType::kExplainRequest:
      return MessageType::kExplainResponse;
    case MessageType::kCounterfactualsRequest:
      return MessageType::kCounterfactualsResponse;
    case MessageType::kBatchExplainRequest:
      return MessageType::kBatchExplainResponse;
    default:
      return MessageType::kErrorResponse;
  }
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireStatus::kNotFound:
      return "NOT_FOUND";
    case WireStatus::kOutOfRange:
      return "OUT_OF_RANGE";
    case WireStatus::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case WireStatus::kInternal:
      return "INTERNAL";
    case WireStatus::kUnimplemented:
      return "UNIMPLEMENTED";
    case WireStatus::kIoError:
      return "IO_ERROR";
    case WireStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireStatus::kUnavailable:
      return "UNAVAILABLE";
    case WireStatus::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return nullptr;
}

WireStatus WireStatusFromCode(StatusCode code) {
  // The enums correspond value for value (protocol_doc_test pins it).
  const int raw = static_cast<int>(code);
  if (raw < 0 || raw >= kNumWireStatuses) return WireStatus::kInternal;
  return static_cast<WireStatus>(raw);
}

StatusCode CodeFromWireStatus(WireStatus status) {
  const int raw = static_cast<int>(status);
  if (raw < 0 || raw >= kNumWireStatuses) return StatusCode::kInternal;
  return static_cast<StatusCode>(raw);
}

const std::vector<FrameField>& FrameHeaderFields() {
  static const std::vector<FrameField> kFields = {
      {"magic", 0, 2},   {"version", 2, 1},    {"type", 3, 1},
      {"body_len", 4, 4}, {"request_id", 8, 8},
  };
  return kFields;
}

void EncodeFrameHeader(const FrameHeader& header, uint8_t* out) {
  out[0] = static_cast<uint8_t>(header.magic & 0xff);
  out[1] = static_cast<uint8_t>(header.magic >> 8);
  out[2] = header.version;
  out[3] = header.type;
  out[4] = static_cast<uint8_t>(header.body_len & 0xff);
  out[5] = static_cast<uint8_t>((header.body_len >> 8) & 0xff);
  out[6] = static_cast<uint8_t>((header.body_len >> 16) & 0xff);
  out[7] = static_cast<uint8_t>((header.body_len >> 24) & 0xff);
  for (int i = 0; i < 8; ++i) {
    out[8 + i] = static_cast<uint8_t>((header.request_id >> (8 * i)) & 0xff);
  }
}

Status DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out) {
  if (len < kFrameHeaderBytes) {
    return Status::InvalidArgument("short frame header");
  }
  out->magic = GetU16(data);
  out->version = data[2];
  out->type = data[3];
  out->body_len = GetU32(data + 4);
  out->request_id = GetU64(data + 8);
  if (out->magic != kMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (out->version != kProtocolVersion) {
    return Status::Unimplemented("unsupported protocol version");
  }
  return Status::Ok();
}

std::string EncodeRequest(const Request& request) {
  std::string frame(kFrameHeaderBytes, '\0');
  if (request.type == MessageType::kBatchExplainRequest) {
    PutU16(&frame, static_cast<uint16_t>(request.batch.size()));
    for (const Request::BatchItem& item : request.batch) {
      PutU32(&frame, item.deadline_ms);
      PutU32(&frame, item.label);
      PutU16(&frame, static_cast<uint16_t>(item.instance.size()));
      for (ValueId v : item.instance) PutU32(&frame, v);
    }
  } else {
    PutU32(&frame, request.deadline_ms);
    PutU32(&frame, request.label);
    PutU16(&frame, static_cast<uint16_t>(request.instance.size()));
    for (ValueId v : request.instance) PutU32(&frame, v);
  }
  FinishFrame(&frame, request.type, request.request_id);
  return frame;
}

std::string EncodeResponse(const Response& response) {
  std::string frame(kFrameHeaderBytes, '\0');
  frame.push_back(static_cast<char>(response.status));
  PutU32(&frame, response.retry_after_ms);
  if (response.status != WireStatus::kOk) {
    const size_t len = std::min<size_t>(response.message.size(), 0xffff);
    PutU16(&frame, static_cast<uint16_t>(len));
    frame.append(response.message, 0, len);
  } else {
    switch (response.type) {
      case MessageType::kPredictResponse:
        PutU32(&frame, response.label);
        break;
      case MessageType::kRecordResponse:
        break;
      case MessageType::kExplainResponse:
        frame.push_back(static_cast<char>(response.flags));
        PutF64(&frame, response.achieved_alpha);
        PutU64(&frame, response.view_seq);
        PutU32(&frame, response.backend);
        PutU16(&frame, static_cast<uint16_t>(response.key.size()));
        for (FeatureId f : response.key) PutU32(&frame, f);
        break;
      case MessageType::kCounterfactualsResponse:
        PutU16(&frame, static_cast<uint16_t>(response.witnesses.size()));
        for (const Response::Witness& w : response.witnesses) {
          PutU64(&frame, w.row);
          PutU32(&frame, w.label);
          PutU16(&frame, static_cast<uint16_t>(w.changed_features.size()));
          for (FeatureId f : w.changed_features) PutU32(&frame, f);
        }
        break;
      case MessageType::kBatchExplainResponse:
        PutU16(&frame, static_cast<uint16_t>(response.batch.size()));
        for (const Response::BatchExplainItem& item : response.batch) {
          frame.push_back(static_cast<char>(item.status));
          PutU32(&frame, item.retry_after_ms);
          if (item.status != WireStatus::kOk) {
            const size_t len = std::min<size_t>(item.message.size(), 0xffff);
            PutU16(&frame, static_cast<uint16_t>(len));
            frame.append(item.message, 0, len);
            continue;
          }
          frame.push_back(static_cast<char>(item.flags));
          PutF64(&frame, item.achieved_alpha);
          PutU64(&frame, item.view_seq);
          PutU32(&frame, item.backend);
          PutU16(&frame, static_cast<uint16_t>(item.key.size()));
          for (FeatureId f : item.key) PutU32(&frame, f);
        }
        break;
      default:
        // kErrorResponse with an OK status carries no payload.
        break;
    }
  }
  FinishFrame(&frame, response.type, response.request_id);
  return frame;
}

Status DecodeRequestBody(const FrameHeader& header, const uint8_t* body,
                         Request* out) {
  const auto type = static_cast<MessageType>(header.type);
  if (!IsRequestType(type)) {
    return Status::InvalidArgument("not a request frame");
  }
  out->type = type;
  out->request_id = header.request_id;
  Reader reader(body, header.body_len);
  if (type == MessageType::kBatchExplainRequest) {
    uint16_t items = 0;
    if (!reader.ReadU16(&items)) {
      return Status::InvalidArgument("malformed batch request body");
    }
    out->batch.clear();
    out->batch.reserve(items);
    for (uint16_t i = 0; i < items; ++i) {
      Request::BatchItem item;
      uint16_t count = 0;
      if (!reader.ReadU32(&item.deadline_ms) || !reader.ReadU32(&item.label) ||
          !reader.ReadU16(&count) ||
          !reader.ReadU32Vector(count, &item.instance)) {
        return Status::InvalidArgument("malformed batch request item");
      }
      out->batch.push_back(std::move(item));
    }
    if (!reader.exhausted()) {
      return Status::InvalidArgument("trailing bytes in batch request body");
    }
    return Status::Ok();
  }
  uint16_t count = 0;
  if (!reader.ReadU32(&out->deadline_ms) || !reader.ReadU32(&out->label) ||
      !reader.ReadU16(&count) ||
      !reader.ReadU32Vector(count, &out->instance) || !reader.exhausted()) {
    return Status::InvalidArgument("malformed request body");
  }
  return Status::Ok();
}

Status DecodeResponseBody(const FrameHeader& header, const uint8_t* body,
                          Response* out) {
  const auto type = static_cast<MessageType>(header.type);
  if (MessageTypeName(type) == nullptr || IsRequestType(type)) {
    return Status::InvalidArgument("not a response frame");
  }
  out->type = type;
  out->request_id = header.request_id;
  Reader reader(body, header.body_len);
  uint8_t status = 0;
  if (!reader.ReadU8(&status) || status >= kNumWireStatuses ||
      !reader.ReadU32(&out->retry_after_ms)) {
    return Status::InvalidArgument("malformed response prefix");
  }
  out->status = static_cast<WireStatus>(status);
  if (out->status != WireStatus::kOk) {
    uint16_t len = 0;
    if (!reader.ReadU16(&len) || !reader.ReadString(len, &out->message) ||
        !reader.exhausted()) {
      return Status::InvalidArgument("malformed error message");
    }
    return Status::Ok();
  }
  switch (type) {
    case MessageType::kPredictResponse:
      if (!reader.ReadU32(&out->label)) {
        return Status::InvalidArgument("malformed predict payload");
      }
      break;
    case MessageType::kRecordResponse:
      break;
    case MessageType::kExplainResponse: {
      uint16_t count = 0;
      if (!reader.ReadU8(&out->flags) ||
          !reader.ReadF64(&out->achieved_alpha) ||
          !reader.ReadU64(&out->view_seq) || !reader.ReadU32(&out->backend) ||
          !reader.ReadU16(&count) || !reader.ReadU32Vector(count, &out->key)) {
        return Status::InvalidArgument("malformed explain payload");
      }
      break;
    }
    case MessageType::kCounterfactualsResponse: {
      uint16_t count = 0;
      if (!reader.ReadU16(&count)) {
        return Status::InvalidArgument("malformed counterfactuals payload");
      }
      out->witnesses.clear();
      out->witnesses.reserve(count);
      for (uint16_t i = 0; i < count; ++i) {
        Response::Witness w;
        uint16_t changed = 0;
        if (!reader.ReadU64(&w.row) || !reader.ReadU32(&w.label) ||
            !reader.ReadU16(&changed) ||
            !reader.ReadU32Vector(changed, &w.changed_features)) {
          return Status::InvalidArgument("malformed witness");
        }
        out->witnesses.push_back(std::move(w));
      }
      break;
    }
    case MessageType::kBatchExplainResponse: {
      uint16_t count = 0;
      if (!reader.ReadU16(&count)) {
        return Status::InvalidArgument("malformed batch explain payload");
      }
      out->batch.clear();
      out->batch.reserve(count);
      for (uint16_t i = 0; i < count; ++i) {
        Response::BatchExplainItem item;
        uint8_t status = 0;
        if (!reader.ReadU8(&status) || status >= kNumWireStatuses ||
            !reader.ReadU32(&item.retry_after_ms)) {
          return Status::InvalidArgument("malformed batch item prefix");
        }
        item.status = static_cast<WireStatus>(status);
        if (item.status != WireStatus::kOk) {
          uint16_t len = 0;
          if (!reader.ReadU16(&len) ||
              !reader.ReadString(len, &item.message)) {
            return Status::InvalidArgument("malformed batch item message");
          }
        } else {
          uint16_t features = 0;
          if (!reader.ReadU8(&item.flags) ||
              !reader.ReadF64(&item.achieved_alpha) ||
              !reader.ReadU64(&item.view_seq) ||
              !reader.ReadU32(&item.backend) || !reader.ReadU16(&features) ||
              !reader.ReadU32Vector(features, &item.key)) {
            return Status::InvalidArgument("malformed batch item payload");
          }
        }
        out->batch.push_back(std::move(item));
      }
      break;
    }
    default:
      break;
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes in response body");
  }
  return Status::Ok();
}

}  // namespace cce::net
