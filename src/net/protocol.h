#ifndef CCE_NET_PROTOCOL_H_
#define CCE_NET_PROTOCOL_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace cce::net {

/// The CCE wire protocol (docs/protocol.md — that spec is drift-enforced
/// against this header by protocol_doc_test): length-prefixed binary frames
/// over a byte stream. Every frame is a fixed 16-byte little-endian header
/// followed by `body_len` bytes of typed payload. Requests carry a
/// client-chosen `request_id` that the matching response echoes, so clients
/// may pipeline arbitrarily many frames on one connection — the batching
/// the server's event loop amortises its syscalls over.
///
/// Framing and struct layout are decoupled on purpose: encode/decode go
/// through explicit little-endian byte accessors, never a struct memcpy,
/// so the wire format is identical across compilers and architectures.

/// First two bytes of every frame; rejects non-protocol peers (and HTTP,
/// which the server detects separately for the /metrics path) cheaply.
inline constexpr uint16_t kMagic = 0xCCE1;

/// Protocol version carried in every frame header. Bump on any
/// incompatible change; the server rejects frames from other versions
/// with WireStatus::kUnimplemented.
inline constexpr uint8_t kProtocolVersion = 1;

/// Size of the fixed frame header on the wire.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Default cap on `body_len`; frames beyond it are a protocol error (the
/// server answers then closes — an attacker cannot make it buffer more).
inline constexpr uint32_t kDefaultMaxBodyBytes = 1u << 20;

/// Frame payload kind. Values are the wire encoding (one byte); 0 is
/// deliberately invalid so all-zero garbage cannot parse as a frame.
enum class MessageType : uint8_t {
  kPredictRequest = 1,
  kRecordRequest = 2,
  kExplainRequest = 3,
  kCounterfactualsRequest = 4,
  kPredictResponse = 5,
  kRecordResponse = 6,
  kExplainResponse = 7,
  kCounterfactualsResponse = 8,
  /// Server-originated failure frame for requests that never reached a
  /// typed handler (unknown type, undecodable body). Carries the same
  /// status + retry-after prefix as every response.
  kErrorResponse = 9,
  /// N explain items in one frame, answered positionally by one
  /// kBatchExplainResponse. The server runs compatible items as a single
  /// shared-build key search (one admission charge, one bitmap build);
  /// each item still carries its own deadline and succeeds or fails
  /// individually. Codes 11–13 are reserved so the request/response
  /// pairing rule (response = request + 4) holds for this pair too.
  kBatchExplainRequest = 10,
  kBatchExplainResponse = 14,
};

/// Spec name of a message type ("PREDICT_REQUEST"); nullptr for values
/// that are not part of the protocol. Iterating 0..255 against this is how
/// protocol_doc_test enumerates the real vocabulary.
const char* MessageTypeName(MessageType type);

bool IsRequestType(MessageType type);

/// The response type a well-formed request of `type` is answered with
/// (kErrorResponse for non-requests).
MessageType ResponseTypeFor(MessageType type);

/// Wire rendering of cce::StatusCode — the two enums correspond value for
/// value, which protocol_doc_test pins, so a new StatusCode cannot ship
/// without a wire encoding and a documented row.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIoError = 7,
  kDeadlineExceeded = 8,
  kUnavailable = 9,
  kResourceExhausted = 10,
};

inline constexpr int kNumWireStatuses = 11;

/// Spec name of a wire status ("RESOURCE_EXHAUSTED"); nullptr for values
/// outside the protocol.
const char* WireStatusName(WireStatus status);

WireStatus WireStatusFromCode(StatusCode code);
StatusCode CodeFromWireStatus(WireStatus status);

/// The fixed frame header. `body_len` counts payload bytes only (the
/// header is not included).
struct FrameHeader {
  uint16_t magic = kMagic;
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint32_t body_len = 0;
  uint64_t request_id = 0;
};

/// One header field as the spec documents it: name, byte offset, width.
/// protocol_doc_test compares this table against docs/protocol.md.
struct FrameField {
  const char* name;
  size_t offset;
  size_t bytes;
};

const std::vector<FrameField>& FrameHeaderFields();

/// Serialises `header` into exactly kFrameHeaderBytes at `out`.
void EncodeFrameHeader(const FrameHeader& header, uint8_t* out);

/// Parses and validates a header from `data` (>= kFrameHeaderBytes).
/// kInvalidArgument on bad magic, kUnimplemented on a version mismatch.
/// body_len is NOT bounds-checked here — the transport owns that policy.
Status DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out);

/// A decoded client request. The four scalar request types share one body
/// layout (deadline, label, instance); Predict ignores `label`, Record
/// ignores `deadline_ms`. A kBatchExplainRequest instead carries `batch`
/// and leaves the scalar fields unused.
struct Request {
  MessageType type = MessageType::kPredictRequest;
  uint64_t request_id = 0;
  /// Per-request budget in milliseconds; 0 = no deadline.
  uint32_t deadline_ms = 0;
  Label label = 0;
  Instance instance;

  /// kBatchExplainRequest payload: one explain item per entry, each with
  /// its own deadline (the same (deadline, label, instance) triple a
  /// scalar EXPLAIN_REQUEST carries).
  struct BatchItem {
    uint32_t deadline_ms = 0;
    Label label = 0;
    Instance instance;
  };
  std::vector<BatchItem> batch;
};

/// Explain response flag bits.
inline constexpr uint8_t kFlagDegraded = 1u << 0;
inline constexpr uint8_t kFlagCached = 1u << 1;
inline constexpr uint8_t kFlagHedged = 1u << 2;
inline constexpr uint8_t kFlagUnsatisfied = 1u << 3;

/// A decoded server response. Every response body begins with
/// (status, retry_after_ms); a non-OK status carries `message` and no
/// typed payload — the degradation/shed cause made visible at the wire.
struct Response {
  MessageType type = MessageType::kErrorResponse;
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  /// Backoff hint for retryable failures (sheds), milliseconds; 0 = none.
  uint32_t retry_after_ms = 0;
  /// Failure / degradation cause for non-OK statuses.
  std::string message;

  /// kPredictResponse payload.
  Label label = 0;

  /// kExplainResponse payload.
  uint8_t flags = 0;  // kFlag* bits
  double achieved_alpha = 0.0;
  uint64_t view_seq = 0;
  uint32_t backend = 0;
  FeatureSet key;

  /// kCounterfactualsResponse payload.
  struct Witness {
    uint64_t row = 0;
    Label label = 0;
    FeatureSet changed_features;
  };
  std::vector<Witness> witnesses;

  /// kBatchExplainResponse payload: one entry per request item,
  /// positional (entry i answers batch item i). Each entry carries its
  /// own status — a shed or degraded item never poisons its batchmates —
  /// followed, when OK, by exactly the kExplainResponse payload fields.
  struct BatchExplainItem {
    WireStatus status = WireStatus::kOk;
    uint32_t retry_after_ms = 0;
    std::string message;  // non-OK entries only
    uint8_t flags = 0;    // kFlag* bits
    double achieved_alpha = 0.0;
    uint64_t view_seq = 0;
    uint32_t backend = 0;
    FeatureSet key;
  };
  std::vector<BatchExplainItem> batch;
};

/// Full frame (header + body) for a request / response.
std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

/// Decodes a request body (`body`, exactly `header.body_len` bytes) whose
/// header already validated as a request type. kInvalidArgument on any
/// malformed or trailing bytes — a frame either parses exactly or not at
/// all.
Status DecodeRequestBody(const FrameHeader& header, const uint8_t* body,
                         Request* out);

/// Decodes a response body; same exactness contract.
Status DecodeResponseBody(const FrameHeader& header, const uint8_t* body,
                          Response* out);

}  // namespace cce::net

#endif  // CCE_NET_PROTOCOL_H_
