#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "obs/exposition.h"

namespace cce::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Responses buffered for one connection beyond this mean the peer has
/// stopped reading while still pumping requests; the connection is cut
/// rather than letting it grow the heap.
constexpr size_t kMaxOutBuffer = 32u << 20;

/// Largest HTTP request head the /metrics path will buffer.
constexpr size_t kMaxHttpHeader = 8192;

serving::RequestClass ClassFor(MessageType type) {
  switch (type) {
    case MessageType::kPredictRequest:
      return serving::RequestClass::kPredict;
    case MessageType::kRecordRequest:
      return serving::RequestClass::kRecord;
    case MessageType::kExplainRequest:
    case MessageType::kBatchExplainRequest:
      return serving::RequestClass::kExplain;
    default:
      return serving::RequestClass::kCounterfactuals;
  }
}

/// request_id straight off the wire, even when the header fails
/// validation — error frames echo whatever the client sent there.
uint64_t RawRequestId(const uint8_t* frame) {
  uint64_t id = 0;
  for (int i = 7; i >= 0; --i) id = (id << 8) | frame[8 + i];
  return id;
}

}  // namespace

NetServer::NetServer(serving::ServingGroup* group, const Options& options)
    : group_(group), options_(options) {
  registry_ = options_.registry != nullptr
                  ? options_.registry
                  : std::shared_ptr<obs::Registry>(std::shared_ptr<void>(),
                                                   &group_->registry());
  if (options_.overload.enabled) {
    controller_ = std::make_unique<serving::OverloadController>(
        options_.overload, registry_.get());
  }
  workers_ =
      std::make_unique<ThreadPool>(std::max<size_t>(1, options_.worker_threads));
  worker_gauges_ = std::make_unique<obs::ThreadPoolGauges>(
      registry_.get(), workers_.get(), "net_exec");
}

Result<std::unique_ptr<NetServer>> NetServer::Create(
    serving::ServingGroup* group, const Options& options) {
  if (group == nullptr) {
    return Status::InvalidArgument("NetServer requires a serving group");
  }
  std::unique_ptr<NetServer> server(new NetServer(group, options));
  server->InitInstruments();
  CCE_RETURN_IF_ERROR(server->Listen());
  return server;
}

NetServer::~NetServer() { Stop(); }

void NetServer::InitInstruments() {
  obs::Registry* reg = registry_.get();
  accepted_ = reg->GetCounter("cce_net_connections_accepted_total",
                              "TCP connections accepted by the front end");
  auto closed = [&](const char* cause) {
    return reg->GetCounter("cce_net_connections_closed_total",
                           "Connections closed, by cause",
                           {{"cause", cause}});
  };
  closed_client_ = closed("client");
  closed_drain_ = closed("drain");
  closed_error_ = closed("error");
  closed_idle_ = closed("idle");
  closed_overflow_ = closed("overflow");
  closed_protocol_ = closed("protocol");
  closed_stalled_ = closed("stalled");
  for (int i = 0; i < 4; ++i) {
    requests_[i] = reg->GetCounter(
        "cce_net_requests_total", "Decoded wire requests, by class",
        {{"class",
          serving::RequestClassName(static_cast<serving::RequestClass>(i))}});
  }
  responses_ = reg->GetCounter("cce_net_responses_total",
                               "Response frames queued to the wire");
  auto shed = [&](const char* cause) {
    return reg->GetCounter("cce_net_sheds_total",
                           "Requests shed at the wire, by cause",
                           {{"cause", cause}});
  };
  shed_admission_ = shed("admission");
  shed_overflow_ = shed("queue_overflow");
  auto proto = [&](const char* cause) {
    return reg->GetCounter("cce_net_protocol_errors_total",
                           "Malformed frames / streams, by cause",
                           {{"cause", cause}});
  };
  proto_err_magic_ = proto("magic");
  proto_err_version_ = proto("version");
  proto_err_type_ = proto("type");
  proto_err_body_ = proto("body");
  proto_err_oversized_ = proto("oversized");
  proto_err_http_ = proto("http");
  bytes_read_ =
      reg->GetCounter("cce_net_bytes_read_total", "Bytes read from sockets");
  bytes_written_ = reg->GetCounter("cce_net_bytes_written_total",
                                   "Bytes written to sockets");
  dropped_responses_ =
      reg->GetCounter("cce_net_dropped_responses_total",
                      "Responses whose connection closed before delivery");
  metrics_scrapes_ = reg->GetCounter("cce_net_metrics_scrapes_total",
                                     "HTTP GET /metrics requests served");
  open_connections_ =
      reg->GetGauge("cce_net_open_connections", "Connections currently open");
  tick_requests_ =
      reg->GetHistogram("cce_net_tick_requests",
                        "Requests decoded per event-loop tick (busy ticks)");
  flush_batch_ = reg->GetHistogram(
      "cce_net_flush_frames", "Response frames coalesced into one flush");
  request_latency_us_ = reg->GetHistogram(
      "cce_net_request_latency_us",
      "Decode-to-response-queued latency, microseconds");
  batch_size_ = reg->GetHistogram(
      "cce_batch_size",
      "Explain items answered per shared-build batch execution (scalar "
      "drains and BATCH_EXPLAIN frames)");
}

Status NetServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 256) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

Status NetServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  loop_ = std::thread([this] { LoopMain(); });
  return Status::Ok();
}

void NetServer::Stop() {
  if (stopped_.exchange(true)) return;
  if (started_.load()) {
    stop_requested_.store(true);
    Wake();
    loop_.join();
  }
  // Gauges read the pool, so unbind before the pool dies; the pool
  // destructor drains in-flight work, which may still Wake() — the
  // eventfd therefore closes last.
  worker_gauges_.reset();
  workers_.reset();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void NetServer::Wake() {
  uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

NetServer::Connection* NetServer::FindConn(int fd) {
  auto it = conns_.find(fd);
  return it == conns_.end() ? nullptr : it->second.get();
}

void NetServer::LoopMain() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  last_sweep_ = Clock::now();
  bool draining = false;
  Clock::time_point drain_deadline{};
  while (true) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, draining ? 5 : 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    tick_dispatched_ = 0;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        if (!draining) AcceptAll();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t tmp;
        while (::read(wake_fd_, &tmp, sizeof(tmp)) > 0) {
        }
        continue;
      }
      Connection* conn = FindConn(fd);
      if (conn == nullptr) continue;  // closed earlier this tick
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0 && (ev & EPOLLIN) == 0) {
        CloseConn(conn, "error");
        continue;
      }
      if ((ev & EPOLLIN) != 0) {
        HandleReadable(conn);
        conn = FindConn(fd);
        if (conn == nullptr) continue;
      }
      if ((ev & EPOLLOUT) != 0) FlushConn(conn);
    }
    DrainCompletions();
    if (tick_dispatched_ > 0) tick_requests_->Observe(tick_dispatched_);
    // The batched write: one flush per connection touched this tick.
    for (int fd : dirty_) {
      Connection* conn = FindConn(fd);
      if (conn != nullptr && conn->dirty) FlushConn(conn);
    }
    dirty_.clear();
    SweepStalled();
    if (stop_requested_.load() && !draining) {
      draining = true;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      drain_deadline = Clock::now() + options_.drain_timeout;
    }
    if (draining) {
      bool quiesced = pending_.load() == 0;
      if (quiesced) {
        std::lock_guard<std::mutex> lock(completions_mu_);
        quiesced = completions_.empty();
      }
      if (quiesced) {
        for (const auto& [fd, conn] : conns_) {
          if (conn->out_off < conn->out.size()) {
            quiesced = false;
            break;
          }
        }
      }
      if (quiesced || Clock::now() >= drain_deadline) break;
    }
  }
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    Connection* conn = FindConn(fd);
    if (conn != nullptr) CloseConn(conn, "drain");
  }
}

void NetServer::AcceptAll() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: try next tick
    }
    accepted_->Increment();
    if (conns_.size() >= options_.max_connections) {
      ::close(fd);
      closed_overflow_->Increment();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = Clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      closed_error_->Increment();
      continue;
    }
    conn_fd_by_id_[conn->id] = fd;
    conns_[fd] = std::move(conn);
    open_connections_->Add(1);
  }
}

void NetServer::CloseConn(Connection* conn, const char* cause) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  open_connections_->Add(-1);
  obs::Counter* counter = closed_client_;
  if (std::strcmp(cause, "drain") == 0) counter = closed_drain_;
  else if (std::strcmp(cause, "error") == 0) counter = closed_error_;
  else if (std::strcmp(cause, "idle") == 0) counter = closed_idle_;
  else if (std::strcmp(cause, "protocol") == 0) counter = closed_protocol_;
  else if (std::strcmp(cause, "stalled") == 0) counter = closed_stalled_;
  counter->Increment();
  conn_fd_by_id_.erase(conn->id);
  conn->dirty = false;
  conns_.erase(conn->fd);  // destroys *conn
}

void NetServer::HandleReadable(Connection* conn) {
  if (conn->close_after_flush) {
    // Stream already condemned: drain the socket so epoll quiets down,
    // discard the bytes.
    char scratch[4096];
    while (::read(conn->fd, scratch, sizeof(scratch)) > 0) {
    }
    return;
  }
  // Bounded read budget per tick; level-triggered epoll re-arms for the
  // remainder, so one firehose client cannot monopolise a tick.
  size_t budget = options_.read_chunk * 4;
  bool eof = false;
  while (budget > 0) {
    const size_t chunk = std::min(options_.read_chunk, budget);
    const size_t old = conn->in.size();
    conn->in.resize(old + chunk);
    ssize_t n = ::read(conn->fd, conn->in.data() + old, chunk);
    if (n > 0) {
      conn->in.resize(old + static_cast<size_t>(n));
      bytes_read_->Add(static_cast<uint64_t>(n));
      budget -= static_cast<size_t>(n);
      if (static_cast<size_t>(n) < chunk) break;  // socket drained
      continue;
    }
    conn->in.resize(old);
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn, "error");
    return;
  }
  const Clock::time_point now = Clock::now();
  conn->last_activity = now;
  if (!ParseBuffer(conn)) return;  // closed during parsing
  if (!conn->in.empty()) {
    if (!conn->has_partial) {
      conn->has_partial = true;
      conn->partial_since = now;
    }
  } else {
    conn->has_partial = false;
  }
  if (eof) {
    conn->peer_closed = true;
    // Half-close: the peer may still be reading; deliver what is owed,
    // then FlushConn closes when nothing is in flight or buffered.
    if (conn->in_flight == 0 && conn->out_off >= conn->out.size()) {
      CloseConn(conn, "client");
    }
  }
}

bool NetServer::ParseBuffer(Connection* conn) {
  if (!conn->http && conn->in.size() >= 4 &&
      std::memcmp(conn->in.data(), "GET ", 4) == 0) {
    conn->http = true;
  }
  if (conn->http) {
    static const char kHeaderEnd[] = "\r\n\r\n";
    auto end = std::search(conn->in.begin(), conn->in.end(), kHeaderEnd,
                           kHeaderEnd + 4);
    if (end == conn->in.end()) {
      if (conn->in.size() > kMaxHttpHeader) {
        proto_err_http_->Increment();
        CloseConn(conn, "protocol");
        return false;
      }
      return true;  // wait for the rest of the head
    }
    auto eol = std::find(conn->in.begin(), conn->in.end(), '\r');
    std::string request_line(conn->in.begin(), eol);
    conn->in.clear();
    HandleHttp(conn, request_line);
    return true;
  }
  size_t off = 0;
  bool condemned = false;
  while (conn->in.size() - off >= kFrameHeaderBytes) {
    const uint8_t* frame = conn->in.data() + off;
    FrameHeader header;
    Status header_status =
        DecodeFrameHeader(frame, kFrameHeaderBytes, &header);
    if (!header_status.ok()) {
      (header_status.code() == StatusCode::kUnimplemented
           ? proto_err_version_
           : proto_err_magic_)
          ->Increment();
      QueueError(conn, RawRequestId(frame), header_status);
      condemned = true;
      break;
    }
    if (header.body_len > options_.max_body_bytes) {
      proto_err_oversized_->Increment();
      QueueError(conn, header.request_id,
                 Status::InvalidArgument("frame body exceeds limit"));
      condemned = true;
      break;
    }
    if (conn->in.size() - off < kFrameHeaderBytes + header.body_len) break;
    const MessageType type = static_cast<MessageType>(header.type);
    if (!IsRequestType(type)) {
      proto_err_type_->Increment();
      QueueError(conn, header.request_id,
                 Status::InvalidArgument("not a request message type"));
      condemned = true;
      break;
    }
    Request request;
    Status body_status =
        DecodeRequestBody(header, frame + kFrameHeaderBytes, &request);
    if (!body_status.ok()) {
      proto_err_body_->Increment();
      QueueError(conn, header.request_id, body_status);
      condemned = true;
      break;
    }
    off += kFrameHeaderBytes + header.body_len;
    DispatchRequest(conn, std::move(request));
  }
  if (condemned) {
    // The stream is desynced; answer what we could parse, then close.
    conn->in.clear();
    conn->close_after_flush = true;
    conn->close_cause = "protocol";
  } else if (off > 0) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<ptrdiff_t>(off));
  }
  return true;
}

void NetServer::HandleHttp(Connection* conn, const std::string& request_line) {
  std::string method;
  std::string path;
  const size_t sp1 = request_line.find(' ');
  if (sp1 != std::string::npos) {
    method = request_line.substr(0, sp1);
    const size_t sp2 = request_line.find(' ', sp1 + 1);
    path = request_line.substr(sp1 + 1, sp2 == std::string::npos
                                            ? std::string::npos
                                            : sp2 - sp1 - 1);
  }
  std::string status_line = "HTTP/1.0 200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status_line = "HTTP/1.0 405 Method Not Allowed";
    body = "only GET is supported\n";
  } else if (path == "/metrics") {
    metrics_scrapes_->Increment();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = obs::RenderPrometheusText(*registry_);
  } else if (path == "/healthz") {
    body = group_->Health().fully_healthy ? "ok\n" : "degraded\n";
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "not found (try /metrics or /healthz)\n";
  }
  std::string out = status_line + "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n" + body;
  QueueFrame(conn, std::move(out));
  conn->close_after_flush = true;
  conn->close_cause = "client";
}

void NetServer::DispatchRequest(Connection* conn, Request request) {
  ++tick_dispatched_;
  const serving::RequestClass cls = ClassFor(request.type);
  requests_[static_cast<int>(cls)]->Increment();
  const Clock::time_point started = Clock::now();
  const uint32_t deadline_ms = request.deadline_ms != 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
  const Deadline deadline =
      deadline_ms != 0
          ? Deadline::After(std::chrono::milliseconds(deadline_ms))
          : Deadline::Infinite();
  // Cheap classes pass the token bucket right here on the loop thread
  // (AdmitCheap never blocks); expensive classes do their full —
  // possibly blocking — admission on a worker.
  if (controller_ != nullptr && (cls == serving::RequestClass::kPredict ||
                                 cls == serving::RequestClass::kRecord)) {
    Status admit = controller_->AdmitCheap(cls);
    if (!admit.ok()) {
      shed_admission_->Increment();
      QueueResponse(conn, ShedResponse(request, admit), started);
      return;
    }
  }
  if (pending_.load(std::memory_order_relaxed) >= options_.max_pending) {
    shed_overflow_->Increment();
    Response shed = ShedResponse(
        request, Status::ResourceExhausted("dispatch queue full"));
    if (shed.retry_after_ms == 0) {
      shed.retry_after_ms =
          static_cast<uint32_t>(options_.overflow_retry_after.count());
    }
    QueueResponse(conn, shed, started);
    return;
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  ++conn->in_flight;
  const uint64_t conn_id = conn->id;
  if (request.type == MessageType::kExplainRequest &&
      options_.max_explain_batch > 1) {
    // Park scalar Explains in the micro-batch queue instead of binding
    // each to its own worker task: the drain that answers this request
    // takes every batchmate queued behind it, so a flood's queue depth
    // becomes shared-build throughput instead of per-request searches.
    {
      std::lock_guard<std::mutex> lock(explain_mu_);
      explain_queue_.push_back(
          {conn_id, started, deadline, std::move(request)});
    }
    workers_->Submit([this] { DrainExplainQueue(); });
    return;
  }
  workers_->Submit(
      [this, conn_id, started, deadline, request = std::move(request)] {
        Response response = ExecuteRequest(request, deadline);
        std::string frame = EncodeResponse(response);
        pending_.fetch_sub(1, std::memory_order_relaxed);
        PushCompletion({conn_id, std::move(frame), started});
      });
}

void NetServer::DrainExplainQueue() {
  std::vector<PendingExplain> batch;
  {
    std::unique_lock<std::mutex> lock(explain_mu_);
    if (explain_queue_.empty()) return;  // a bigger drain already took it
    if (explain_queue_.size() < options_.max_explain_batch &&
        options_.explain_batch_linger.count() > 0) {
      lock.unlock();
      std::this_thread::sleep_for(options_.explain_batch_linger);
      lock.lock();
      if (explain_queue_.empty()) return;
    }
    const size_t take =
        std::min(std::max<size_t>(1, options_.max_explain_batch),
                 explain_queue_.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(explain_queue_.front()));
      explain_queue_.pop_front();
    }
  }
  batch_size_->Observe(static_cast<int64_t>(batch.size()));
  if (batch.size() == 1) {
    // A lone request runs the classic scalar path: same admission, same
    // search, no batch overhead.
    PendingExplain item = std::move(batch.front());
    Response response = ExecuteRequest(item.request, item.deadline);
    std::string frame = EncodeResponse(response);
    pending_.fetch_sub(1, std::memory_order_relaxed);
    PushCompletion({item.conn_id, std::move(frame), item.started});
    return;
  }
  ExecuteExplainBatch(std::move(batch));
}

void NetServer::ExecuteExplainBatch(std::vector<PendingExplain> batch) {
  const auto finish = [&](size_t i, Response response) {
    std::string frame = EncodeResponse(response);
    pending_.fetch_sub(1, std::memory_order_relaxed);
    PushCompletion({batch[i].conn_id, std::move(frame), batch[i].started});
  };
  const auto fail_item = [&](size_t i, const Status& status) {
    Response response;
    response.type = ResponseTypeFor(batch[i].request.type);
    response.request_id = batch[i].request.request_id;
    response.status = WireStatusFromCode(status.code());
    response.message = status.message();
    const int64_t hint = serving::ParseRetryAfterMs(status);
    if (hint >= 0) response.retry_after_ms = static_cast<uint32_t>(hint);
    finish(i, std::move(response));
  };
  // One admission charge for the whole batch — the expensive unit is the
  // shared bitmap build — bounded by the earliest item deadline so nobody
  // queues past its own budget.
  std::optional<serving::OverloadController::Permit> permit;
  if (controller_ != nullptr) {
    Deadline admit_deadline = batch.front().deadline;
    for (const PendingExplain& item : batch) {
      if (item.deadline.expiry() < admit_deadline.expiry()) {
        admit_deadline = item.deadline;
      }
    }
    auto admitted = controller_->AdmitExpensive(
        serving::RequestClass::kExplain, admit_deadline);
    if (!admitted.ok()) {
      for (size_t i = 0; i < batch.size(); ++i) {
        shed_admission_->Increment();
        finish(i, ShedResponse(batch[i].request, admitted.status()));
      }
      return;
    }
    permit.emplace(std::move(admitted).value());
  }
  // Deadlines stay per item: an already-expired one answers for itself
  // and the rest still share the build.
  std::vector<size_t> live;
  std::vector<serving::BatchQuery> queries;
  live.reserve(batch.size());
  queries.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].deadline.expired()) {
      fail_item(i,
                Status::DeadlineExceeded("deadline expired before execution"));
      continue;
    }
    live.push_back(i);
    queries.push_back({batch[i].request.instance, batch[i].request.label,
                       batch[i].deadline});
  }
  if (live.empty()) return;
  std::vector<Result<serving::ServingGroup::ExplainResult>> results =
      group_->ExplainBatch(queries);
  for (size_t j = 0; j < live.size(); ++j) {
    const size_t i = live[j];
    if (!results[j].ok()) {
      fail_item(i, results[j].status());
      continue;
    }
    const serving::ServingGroup::ExplainResult& explained =
        results[j].value();
    Response response;
    response.type = ResponseTypeFor(batch[i].request.type);
    response.request_id = batch[i].request.request_id;
    response.status = WireStatus::kOk;
    response.flags = (explained.key.degraded ? kFlagDegraded : 0) |
                     (explained.key.cached ? kFlagCached : 0) |
                     (explained.hedged ? kFlagHedged : 0) |
                     (explained.key.satisfied ? 0 : kFlagUnsatisfied);
    response.achieved_alpha = explained.key.achieved_alpha;
    response.view_seq = explained.view_seq;
    response.backend = static_cast<uint32_t>(explained.backend);
    response.key = explained.key.key;
    finish(i, std::move(response));
  }
}

Response NetServer::ShedResponse(const Request& request,
                                 const Status& shed) const {
  Response response;
  response.type = ResponseTypeFor(request.type);
  response.request_id = request.request_id;
  response.status = WireStatusFromCode(shed.code());
  response.message = shed.message();
  const int64_t hint = serving::ParseRetryAfterMs(shed);
  if (hint >= 0) response.retry_after_ms = static_cast<uint32_t>(hint);
  return response;
}

Response NetServer::ExecuteRequest(const Request& request,
                                   const Deadline& deadline) {
  Response response;
  response.type = ResponseTypeFor(request.type);
  response.request_id = request.request_id;
  const auto fail = [&](const Status& status) {
    response.status = WireStatusFromCode(status.code());
    response.message = status.message();
    const int64_t hint = serving::ParseRetryAfterMs(status);
    if (hint >= 0) response.retry_after_ms = static_cast<uint32_t>(hint);
  };
  if (deadline.expired()) {
    fail(Status::DeadlineExceeded("deadline expired before execution"));
    return response;
  }
  switch (request.type) {
    case MessageType::kPredictRequest: {
      Result<Label> result = group_->Predict(request.instance, deadline);
      if (!result.ok()) {
        fail(result.status());
        return response;
      }
      response.label = result.value();
      break;
    }
    case MessageType::kRecordRequest: {
      Status status = group_->Record(request.instance, request.label);
      if (!status.ok()) {
        fail(status);
        return response;
      }
      break;
    }
    case MessageType::kExplainRequest:
    case MessageType::kCounterfactualsRequest: {
      const serving::RequestClass cls = ClassFor(request.type);
      std::optional<serving::OverloadController::Permit> permit;
      if (controller_ != nullptr) {
        auto admitted = controller_->AdmitExpensive(cls, deadline);
        if (!admitted.ok()) {
          shed_admission_->Increment();
          fail(admitted.status());
          return response;
        }
        permit.emplace(std::move(admitted).value());
      }
      if (request.type == MessageType::kExplainRequest) {
        auto result =
            group_->Explain(request.instance, request.label, deadline);
        if (!result.ok()) {
          fail(result.status());
          return response;
        }
        const serving::ServingGroup::ExplainResult& explained = result.value();
        response.flags =
            (explained.key.degraded ? kFlagDegraded : 0) |
            (explained.key.cached ? kFlagCached : 0) |
            (explained.hedged ? kFlagHedged : 0) |
            (explained.key.satisfied ? 0 : kFlagUnsatisfied);
        response.achieved_alpha = explained.key.achieved_alpha;
        response.view_seq = explained.view_seq;
        response.backend = static_cast<uint32_t>(explained.backend);
        response.key = explained.key.key;
      } else {
        auto result = group_->Counterfactuals(request.instance, request.label);
        if (!result.ok()) {
          fail(result.status());
          return response;
        }
        response.witnesses.reserve(result.value().size());
        for (const RelativeCounterfactual& witness : result.value()) {
          response.witnesses.push_back({witness.witness_row,
                                        witness.witness_label,
                                        witness.changed_features});
        }
      }
      break;
    }
    case MessageType::kBatchExplainRequest: {
      // A client-formed batch: one admission charge, one shared-build
      // search, one response frame with per-item statuses.
      std::vector<Deadline> deadlines;
      deadlines.reserve(request.batch.size());
      Deadline admit_deadline = Deadline::Infinite();
      for (const Request::BatchItem& item : request.batch) {
        const uint32_t ms = item.deadline_ms != 0
                                ? item.deadline_ms
                                : options_.default_deadline_ms;
        const Deadline item_deadline =
            ms != 0 ? Deadline::After(std::chrono::milliseconds(ms))
                    : Deadline::Infinite();
        if (item_deadline.expiry() < admit_deadline.expiry()) {
          admit_deadline = item_deadline;
        }
        deadlines.push_back(item_deadline);
      }
      std::optional<serving::OverloadController::Permit> permit;
      if (controller_ != nullptr) {
        auto admitted = controller_->AdmitExpensive(
            serving::RequestClass::kExplain, admit_deadline);
        if (!admitted.ok()) {
          shed_admission_->Increment();
          fail(admitted.status());
          return response;
        }
        permit.emplace(std::move(admitted).value());
      }
      batch_size_->Observe(static_cast<int64_t>(request.batch.size()));
      response.batch.resize(request.batch.size());
      std::vector<size_t> live;
      std::vector<serving::BatchQuery> queries;
      live.reserve(request.batch.size());
      queries.reserve(request.batch.size());
      for (size_t i = 0; i < request.batch.size(); ++i) {
        if (deadlines[i].expired()) {
          response.batch[i].status = WireStatus::kDeadlineExceeded;
          response.batch[i].message = "deadline expired before execution";
          continue;
        }
        live.push_back(i);
        queries.push_back({request.batch[i].instance,
                           request.batch[i].label, deadlines[i]});
      }
      if (!live.empty()) {
        std::vector<Result<serving::ServingGroup::ExplainResult>> results =
            group_->ExplainBatch(queries);
        for (size_t j = 0; j < live.size(); ++j) {
          Response::BatchExplainItem& item = response.batch[live[j]];
          if (!results[j].ok()) {
            const Status& status = results[j].status();
            item.status = WireStatusFromCode(status.code());
            item.message = status.message();
            const int64_t hint = serving::ParseRetryAfterMs(status);
            if (hint >= 0) item.retry_after_ms = static_cast<uint32_t>(hint);
            continue;
          }
          const serving::ServingGroup::ExplainResult& explained =
              results[j].value();
          item.status = WireStatus::kOk;
          item.flags = (explained.key.degraded ? kFlagDegraded : 0) |
                       (explained.key.cached ? kFlagCached : 0) |
                       (explained.hedged ? kFlagHedged : 0) |
                       (explained.key.satisfied ? 0 : kFlagUnsatisfied);
          item.achieved_alpha = explained.key.achieved_alpha;
          item.view_seq = explained.view_seq;
          item.backend = static_cast<uint32_t>(explained.backend);
          item.key = explained.key.key;
        }
      }
      break;
    }
    default:
      fail(Status::Internal("non-request type dispatched"));
      return response;
  }
  response.status = WireStatus::kOk;
  return response;
}

void NetServer::QueueFrame(Connection* conn, std::string frame) {
  conn->out.append(frame);
  ++conn->coalesced;
  if (!conn->dirty) {
    conn->dirty = true;
    dirty_.push_back(conn->fd);
  }
}

void NetServer::QueueResponse(Connection* conn, const Response& response,
                              Clock::time_point started) {
  QueueFrame(conn, EncodeResponse(response));
  responses_->Increment();
  request_latency_us_->Observe(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            started)
          .count());
}

void NetServer::QueueError(Connection* conn, uint64_t request_id,
                           const Status& status) {
  Response response;
  response.type = MessageType::kErrorResponse;
  response.request_id = request_id;
  response.status = WireStatusFromCode(status.code());
  response.message = status.message();
  QueueResponse(conn, response, Clock::now());
}

void NetServer::PushCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  Wake();
}

void NetServer::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = conn_fd_by_id_.find(completion.conn_id);
    Connection* conn =
        it == conn_fd_by_id_.end() ? nullptr : FindConn(it->second);
    if (conn == nullptr) {
      dropped_responses_->Increment();
      continue;
    }
    if (conn->in_flight > 0) --conn->in_flight;
    QueueFrame(conn, std::move(completion.frame));
    responses_->Increment();
    request_latency_us_->Observe(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - completion.started)
            .count());
  }
}

void NetServer::FlushConn(Connection* conn) {
  conn->dirty = false;
  if (conn->out.size() - conn->out_off > kMaxOutBuffer) {
    CloseConn(conn, "error");  // peer pumps requests but never reads
    return;
  }
  while (conn->out_off < conn->out.size()) {
    // MSG_NOSIGNAL: a peer that resets mid-flush must surface as EPIPE
    // on this connection, not SIGPIPE the whole server.
    ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                       conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      bytes_written_->Add(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->wants_writable) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn->fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
        conn->wants_writable = true;
      }
      return;
    }
    CloseConn(conn, conn->peer_closed ? "client" : "error");
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  if (conn->coalesced > 0) {
    flush_batch_->Observe(conn->coalesced);
    conn->coalesced = 0;
  }
  if (conn->wants_writable) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->wants_writable = false;
  }
  if (conn->in_flight == 0 && (conn->close_after_flush || conn->peer_closed)) {
    CloseConn(conn, conn->close_cause != nullptr ? conn->close_cause
                                                 : "client");
  }
}

void NetServer::SweepStalled() {
  const Clock::time_point now = Clock::now();
  if (now - last_sweep_ < std::chrono::milliseconds(100)) return;
  last_sweep_ = now;
  std::vector<std::pair<int, const char*>> doomed;
  for (const auto& [fd, conn] : conns_) {
    if (options_.stalled_frame_timeout.count() > 0 && conn->has_partial &&
        now - conn->partial_since >= options_.stalled_frame_timeout) {
      doomed.emplace_back(fd, "stalled");
      continue;
    }
    if (options_.idle_timeout.count() > 0 && conn->in_flight == 0 &&
        conn->out_off >= conn->out.size() &&
        now - conn->last_activity >= options_.idle_timeout) {
      doomed.emplace_back(fd, "idle");
    }
  }
  for (const auto& [fd, cause] : doomed) {
    Connection* conn = FindConn(fd);
    if (conn != nullptr) CloseConn(conn, cause);
  }
}

NetServer::Stats NetServer::GetStats() const {
  Stats stats;
  stats.accepted = accepted_->Value();
  stats.closed = closed_client_->Value() + closed_drain_->Value() +
                 closed_error_->Value() + closed_idle_->Value() +
                 closed_overflow_->Value() + closed_protocol_->Value() +
                 closed_stalled_->Value();
  stats.open = static_cast<uint64_t>(open_connections_->Value());
  for (const obs::Counter* counter : requests_) {
    stats.requests += counter->Value();
  }
  stats.responses = responses_->Value();
  stats.sheds = shed_admission_->Value() + shed_overflow_->Value();
  stats.protocol_errors = proto_err_magic_->Value() +
                          proto_err_version_->Value() +
                          proto_err_type_->Value() + proto_err_body_->Value() +
                          proto_err_oversized_->Value() +
                          proto_err_http_->Value();
  stats.dropped_responses = dropped_responses_->Value();
  stats.metrics_scrapes = metrics_scrapes_->Value();
  return stats;
}

}  // namespace cce::net
