#ifndef CCE_NET_SERVER_H_
#define CCE_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "serving/overload.h"
#include "serving/serving_group.h"

namespace cce::net {

/// The network serving front end: a single-threaded epoll event loop
/// speaking the length-prefixed binary protocol of net/protocol.h in
/// front of a serving::ServingGroup, plus a minimal HTTP GET surface for
/// Prometheus scrapes (`/metrics`) and liveness probes (`/healthz`).
///
/// Batched per tick (docs/architecture.md has the lifecycle diagram): one
/// epoll_wait wakes the loop, every readable connection is drained and
/// *all* complete frames are decoded, each decoded request passes wire
/// admission, completed responses are coalesced per connection, and each
/// dirty connection gets ONE write() at the end of the tick — so a
/// pipelined client amortises the syscall pair across its whole batch.
///
/// Admission happens at the wire, not in-process: the server owns an
/// OverloadController (Options::overload) and every shed becomes a typed
/// response frame carrying WireStatus::kResourceExhausted, the cause
/// string, and a machine-readable retry_after_ms — clients that honour
/// the hint flatten their own flood (docs/operations.md). Cheap classes
/// (Predict/Record) are admitted on the loop thread (token bucket only,
/// never blocks); expensive classes (Explain/Counterfactuals) are handed
/// to a small worker pool whose threads wait out the controller's
/// bounded admission queue, so the event loop itself never blocks on a
/// slot or a key search.
///
/// Robustness contract (SUITE=net tortures it under ASan): a connection
/// that dies mid-frame, sends garbage, lies about body_len, or stalls a
/// frame forever (slow loris) is answered where possible and closed —
/// never crashes the loop, never leaks its fd, never blocks the tick.
///
/// Thread safety: Create/Start/Stop are for one owner thread. The loop
/// thread owns every connection; workers only touch the completion queue.
class NetServer {
 public:
  struct Options {
    /// Listen address. Port 0 binds an ephemeral port (see port()).
    std::string host = "127.0.0.1";
    uint16_t port = 0;

    /// Accepted connections beyond this are closed immediately
    /// (`cce_net_connections_closed_total{cause="overflow"}`).
    size_t max_connections = 1024;

    /// Frames whose body_len exceeds this are protocol errors: the server
    /// answers ERROR_RESPONSE and closes without ever buffering the body.
    uint32_t max_body_bytes = kDefaultMaxBodyBytes;

    /// Close a connection with no traffic for this long; 0 disables.
    std::chrono::milliseconds idle_timeout{30000};
    /// Close a connection that has held a *partial* frame (or partial
    /// HTTP header) this long without completing it — the slow-loris
    /// guard; 0 disables.
    std::chrono::milliseconds stalled_frame_timeout{5000};

    /// Worker threads executing requests against the serving group (the
    /// admission queue wait for expensive classes happens here, off the
    /// event loop).
    size_t worker_threads = 2;
    /// Requests allowed in flight between loop and workers; arrivals
    /// beyond it are shed at the wire with
    /// `cce_net_sheds_total{cause="queue_overflow"}` — the bound that
    /// keeps loop-to-worker memory finite under any flood.
    size_t max_pending = 256;
    /// retry_after_ms hint attached to queue_overflow sheds.
    std::chrono::milliseconds overflow_retry_after{5};

    static serving::OverloadController::Options DefaultOverload() {
      serving::OverloadController::Options o;
      o.enabled = true;
      return o;
    }
    /// Wire-level admission control. Enabled by default — the point of a
    /// shared network front end; the default buckets have refill 0 =
    /// unlimited rate, so everything is admitted while the shed
    /// machinery (and its metrics) stays armed.
    serving::OverloadController::Options overload = DefaultOverload();

    /// Deadline applied to requests that carry deadline_ms = 0; 0 = none.
    uint32_t default_deadline_ms = 0;

    /// Upper bound on Explain items answered by one shared-build key
    /// search (docs/operations.md). Queued scalar EXPLAIN_REQUEST frames
    /// are drained in compatible groups of up to this many and executed
    /// as one serving::ServingGroup::ExplainBatch — one admission charge,
    /// one bitmap build — so queue depth under a flood becomes batch
    /// throughput instead of sheds. 1 disables micro-batching (every
    /// request runs alone, the pre-batching behaviour). BATCH_EXPLAIN
    /// frames are always executed as the client-formed batch regardless
    /// of this knob. Keys are bit-identical at any batch split.
    size_t max_explain_batch = 16;
    /// How long a drain may wait for more queued Explains before running
    /// a partial batch. 0 (default) never waits: a drain takes whatever
    /// is queued at that instant, so an idle server adds no latency and a
    /// flooded one batches naturally off its own backlog.
    std::chrono::milliseconds explain_batch_linger{0};

    /// How long Stop() lets in-flight work and unflushed responses drain
    /// before closing connections.
    std::chrono::milliseconds drain_timeout{1000};

    /// Metric sink; null aliases the serving group's registry so one
    /// /metrics scrape exposes the whole stack.
    std::shared_ptr<obs::Registry> registry;

    /// Bytes read per read() call on the loop.
    size_t read_chunk = 64 * 1024;
  };

  /// Point-in-time counters assembled from the registry cells (tests).
  struct Stats {
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t open = 0;
    uint64_t requests = 0;
    uint64_t responses = 0;
    uint64_t sheds = 0;
    uint64_t protocol_errors = 0;
    uint64_t dropped_responses = 0;
    uint64_t metrics_scrapes = 0;
  };

  /// Binds and listens (so port() is valid immediately) and registers
  /// every cce_net_* instrument, but does not serve until Start().
  /// `group` is not owned and must outlive the server.
  static Result<std::unique_ptr<NetServer>> Create(
      serving::ServingGroup* group, const Options& options);

  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Spawns the event-loop thread. FailedPrecondition if already started.
  Status Start();

  /// Drains (bounded by Options::drain_timeout) and stops the loop, then
  /// joins workers. Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (resolves Options::port = 0).
  uint16_t port() const { return port_; }

  Stats GetStats() const;

  obs::Registry& registry() const { return *registry_; }
  serving::ServingGroup& group() const { return *group_; }

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    /// Unparsed inbound bytes (frame fragments accumulate here).
    std::vector<uint8_t> in;
    /// Encoded, unwritten outbound bytes + write offset.
    std::string out;
    size_t out_off = 0;
    /// Responses coalesced into `out` since the last successful flush.
    uint32_t coalesced = 0;
    /// Requests dispatched to workers, not yet answered.
    uint32_t in_flight = 0;
    bool http = false;
    bool peer_closed = false;
    bool close_after_flush = false;
    /// Counter attribution when close_after_flush fires.
    const char* close_cause = nullptr;
    bool wants_writable = false;
    /// Already on this tick's flush list.
    bool dirty = false;
    std::chrono::steady_clock::time_point last_activity;
    /// Set while `in` holds a partial frame (slow-loris clock).
    std::chrono::steady_clock::time_point partial_since;
    bool has_partial = false;
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string frame;
    std::chrono::steady_clock::time_point started;
  };

  /// One scalar Explain parked in the micro-batch queue between its
  /// DispatchRequest and the worker drain that answers it.
  struct PendingExplain {
    uint64_t conn_id = 0;
    std::chrono::steady_clock::time_point started;
    Deadline deadline;
    Request request;
  };

  NetServer(serving::ServingGroup* group, const Options& options);

  Status Listen();
  void InitInstruments();
  void LoopMain();

  void AcceptAll();
  void HandleReadable(Connection* conn);
  /// Decodes every complete frame buffered on `conn`; returns false when
  /// the connection was closed during parsing.
  bool ParseBuffer(Connection* conn);
  void HandleHttp(Connection* conn, const std::string& request_line);
  void DispatchRequest(Connection* conn, Request request);
  /// Runs on a worker: admission (expensive classes) + group call.
  Response ExecuteRequest(const Request& request, const Deadline& deadline);
  Response ShedResponse(const Request& request, const Status& shed) const;
  /// Runs on a worker: pops up to max_explain_batch queued Explains and
  /// answers them with one shared-build batch (one admission charge).
  void DrainExplainQueue();
  /// Executes `batch` (>= 2 items) as one ServingGroup::ExplainBatch and
  /// pushes one completion per item.
  void ExecuteExplainBatch(std::vector<PendingExplain> batch);

  void QueueResponse(Connection* conn, const Response& response,
                     std::chrono::steady_clock::time_point started);
  void QueueError(Connection* conn, uint64_t request_id,
                  const Status& status);
  void QueueFrame(Connection* conn, std::string frame);
  void PushCompletion(Completion completion);
  void DrainCompletions();
  /// One write() of everything buffered; arms EPOLLOUT on a short write.
  void FlushConn(Connection* conn);
  void CloseConn(Connection* conn, const char* cause);
  void SweepStalled();
  void Wake();

  Connection* FindConn(int fd);

  serving::ServingGroup* group_;
  Options options_;
  std::shared_ptr<obs::Registry> registry_;
  std::unique_ptr<serving::OverloadController> controller_;
  std::unique_ptr<ThreadPool> workers_;
  std::unique_ptr<obs::ThreadPoolGauges> worker_gauges_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;

  std::thread loop_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopped_{false};

  /// Loop-thread state.
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::unordered_map<uint64_t, int> conn_fd_by_id_;
  uint64_t next_conn_id_ = 1;
  std::vector<int> dirty_;
  uint32_t tick_dispatched_ = 0;
  std::chrono::steady_clock::time_point last_sweep_;

  /// Loop <-> worker handoff.
  std::mutex completions_mu_;
  std::deque<Completion> completions_;
  std::atomic<size_t> pending_{0};

  /// Scalar-Explain micro-batch queue (loop thread pushes, workers
  /// drain). Each push submits a drain task; a drain that finds the
  /// queue already emptied by a bigger batch is a no-op.
  std::mutex explain_mu_;
  std::deque<PendingExplain> explain_queue_;

  // Instruments (cells owned by registry_).
  obs::Counter* accepted_ = nullptr;
  obs::Counter* closed_client_ = nullptr;
  obs::Counter* closed_drain_ = nullptr;
  obs::Counter* closed_error_ = nullptr;
  obs::Counter* closed_idle_ = nullptr;
  obs::Counter* closed_overflow_ = nullptr;
  obs::Counter* closed_protocol_ = nullptr;
  obs::Counter* closed_stalled_ = nullptr;
  obs::Counter* requests_[4] = {};  // indexed by serving::RequestClass
  obs::Counter* responses_ = nullptr;
  obs::Counter* shed_admission_ = nullptr;
  obs::Counter* shed_overflow_ = nullptr;
  obs::Counter* proto_err_magic_ = nullptr;
  obs::Counter* proto_err_version_ = nullptr;
  obs::Counter* proto_err_type_ = nullptr;
  obs::Counter* proto_err_body_ = nullptr;
  obs::Counter* proto_err_oversized_ = nullptr;
  obs::Counter* proto_err_http_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::Counter* dropped_responses_ = nullptr;
  obs::Counter* metrics_scrapes_ = nullptr;
  obs::Gauge* open_connections_ = nullptr;
  obs::Histogram* tick_requests_ = nullptr;
  obs::Histogram* flush_batch_ = nullptr;
  obs::Histogram* request_latency_us_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
};

}  // namespace cce::net

#endif  // CCE_NET_SERVER_H_
