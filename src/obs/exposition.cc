#include "obs/exposition.h"

#include <string>
#include <vector>

namespace cce::obs {
namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// HELP text escaping: backslash and newline (quotes are legal there).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders `{k1="v1",k2="v2"}`; `extra` (the `le` bucket label) goes last,
/// matching Prometheus client conventions. Empty label set renders nothing
/// unless `extra` is present.
std::string RenderLabels(const Labels& labels, const std::string& extra_key,
                         const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += EscapeLabelValue(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(const std::string& value) {
  return "\"" + JsonEscape(value) + "\"";
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ", ";
    first = false;
    out += JsonString(key);
    out += ": ";
    out += JsonString(value);
  }
  out += '}';
  return out;
}

}  // namespace

std::string RenderPrometheusText(const Registry& registry) {
  std::string out;
  for (const Registry::FamilySnapshot& family : registry.Collect()) {
    out += "# HELP " + family.name + " " + EscapeHelp(family.help) + "\n";
    out += "# TYPE " + family.name + " ";
    out += MetricTypeName(family.type);
    out += "\n";
    for (const Registry::SampleSnapshot& sample : family.samples) {
      if (family.type == MetricType::kHistogram) {
        const Histogram::Snapshot& h = sample.histogram;
        uint64_t cumulative = 0;
        for (size_t b = 0; b < h.bounds.size(); ++b) {
          cumulative += h.counts[b];
          out += family.name + "_bucket" +
                 RenderLabels(sample.labels, "le",
                              std::to_string(h.bounds[b])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += family.name + "_bucket" +
               RenderLabels(sample.labels, "le", "+Inf") + " " +
               std::to_string(h.count) + "\n";
        out += family.name + "_sum" + RenderLabels(sample.labels, "", "") +
               " " + std::to_string(h.sum) + "\n";
        out += family.name + "_count" + RenderLabels(sample.labels, "", "") +
               " " + std::to_string(h.count) + "\n";
      } else {
        out += family.name + RenderLabels(sample.labels, "", "") + " " +
               std::to_string(sample.value) + "\n";
      }
    }
  }
  return out;
}

std::string RenderJson(const Registry& registry) {
  std::string out = "{\n  \"metrics\": [";
  bool first_family = true;
  for (const Registry::FamilySnapshot& family : registry.Collect()) {
    out += first_family ? "\n" : ",\n";
    first_family = false;
    out += "    {\n";
    out += "      \"name\": " + JsonString(family.name) + ",\n";
    out += "      \"type\": " +
           JsonString(MetricTypeName(family.type)) + ",\n";
    out += "      \"help\": " + JsonString(family.help) + ",\n";
    out += "      \"samples\": [";
    bool first_sample = true;
    for (const Registry::SampleSnapshot& sample : family.samples) {
      out += first_sample ? "\n" : ",\n";
      first_sample = false;
      out += "        {\"labels\": " + JsonLabels(sample.labels);
      if (family.type == MetricType::kHistogram) {
        const Histogram::Snapshot& h = sample.histogram;
        out += ", \"count\": " + std::to_string(h.count);
        out += ", \"sum\": " + std::to_string(h.sum);
        out += ", \"buckets\": [";
        uint64_t cumulative = 0;
        for (size_t b = 0; b < h.bounds.size(); ++b) {
          cumulative += h.counts[b];
          if (b > 0) out += ", ";
          out += "{\"le\": " + std::to_string(h.bounds[b]) +
                 ", \"count\": " + std::to_string(cumulative) + "}";
        }
        if (!h.bounds.empty()) out += ", ";
        out += "{\"le\": \"+Inf\", \"count\": " + std::to_string(h.count) +
               "}]";
      } else {
        out += ", \"value\": " + std::to_string(sample.value);
      }
      out += "}";
    }
    out += "\n      ]\n    }";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string RenderTracesJson(const TraceRing& ring, size_t max_records) {
  std::string out = "[";
  bool first = true;
  for (const TraceRecord& record : ring.Recent(max_records)) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"id\": " + std::to_string(record.id);
    out += ", \"op\": " + JsonString(record.op);
    out += ", \"outcome\": " + JsonString(TraceOutcomeName(record.outcome));
    out += ", \"total_us\": " + std::to_string(record.total_us);
    out += ", \"detail\": " + JsonString(record.detail);
    out += ", \"phases\": [";
    for (size_t i = 0; i < record.num_phases; ++i) {
      if (i > 0) out += ", ";
      out += "{\"name\": " + JsonString(record.phases[i].name) +
             ", \"duration_us\": " +
             std::to_string(record.phases[i].duration_us) + "}";
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

}  // namespace cce::obs
