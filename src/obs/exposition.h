#ifndef CCE_OBS_EXPOSITION_H_
#define CCE_OBS_EXPOSITION_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cce::obs {

/// Renders every metric in `registry` in the Prometheus text exposition
/// format (version 0.0.4): `# HELP` / `# TYPE` headers per family, one
/// sample line per child, histograms as cumulative `_bucket{le=...}` series
/// plus `_sum` and `_count`. Families are ordered by name and children by
/// label signature, so the output is byte-stable for a given registry state
/// (golden-tested). Label values are escaped per the spec (backslash,
/// double quote, newline).
std::string RenderPrometheusText(const Registry& registry);

/// Renders the same snapshot as deterministic, pretty-printed JSON:
///
///   { "metrics": [ { "name": ..., "type": ..., "help": ...,
///                    "samples": [ { "labels": {...}, "value": N } ] } ] }
///
/// Histogram samples carry "count", "sum" and a "buckets" array of
/// {"le": bound-or-"+Inf", "count": cumulative} objects — the same
/// cumulative convention as the Prometheus rendering, so the two formats
/// agree bucket for bucket.
std::string RenderJson(const Registry& registry);

/// Renders up to `max_records` recent traces (newest first; 0 = all held)
/// as a JSON array of {id, op, outcome, total_us, detail, phases}.
std::string RenderTracesJson(const TraceRing& ring, size_t max_records = 0);

}  // namespace cce::obs

#endif  // CCE_OBS_EXPOSITION_H_
