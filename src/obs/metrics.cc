#include "obs/metrics.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace cce::obs {

namespace internal {

size_t ThreadShard() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  return shard;
}

}  // namespace internal

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

/// Canonical child key: labels sorted by key, rendered "k1=v1,k2=v2". The
/// value bytes go in verbatim — uniqueness, not readability, is the goal.
std::string LabelSignature(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string signature;
  for (const auto& [key, value] : sorted) {
    signature += key;
    signature += '=';
    signature += value;
    signature += ',';
  }
  return signature;
}

}  // namespace

// ------------------------------------------------------------------ Counter

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// -------------------------------------------------------------------- Gauge

int64_t Gauge::Value() const {
  {
    std::lock_guard<std::mutex> lock(callback_mu_);
    if (callback_) return callback_();
  }
  return value_.load(std::memory_order_relaxed);
}

uint64_t Gauge::SetCallback(std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  callback_ = std::move(fn);
  return ++callback_token_;
}

void Gauge::ClearCallback(uint64_t token) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  if (callback_token_ == token) callback_ = nullptr;
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(const Options& options, const std::atomic<bool>* enabled)
    : enabled_(enabled) {
  const int sub = std::max(1, options.sub_buckets_per_octave);
  const int64_t max_value = std::max<int64_t>(sub, options.max_value);
  for (int64_t bound = 1; bound <= sub; ++bound) bounds_.push_back(bound);
  for (int64_t octave = sub; octave < max_value; octave *= 2) {
    const int64_t step = octave / sub;
    for (int i = 1; i <= sub; ++i) {
      const int64_t bound = octave + i * step;
      if (bound > max_value) break;
      bounds_.push_back(bound);
    }
  }
  cells_ = std::vector<std::atomic<uint64_t>>(internal::kShards *
                                              (bounds_.size() + 1));
  for (auto& sum : sums_) sum.store(0, std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(int64_t value) const {
  // First finite bound >= value; everything past the last bound overflows
  // into the trailing +Inf bucket.
  return std::lower_bound(bounds_.begin(), bounds_.end(), value) -
         bounds_.begin();
}

void Histogram::Observe(int64_t value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  if (value < 0) value = 0;
  const size_t shard = internal::ThreadShard() & (internal::kShards - 1);
  const size_t num_buckets = bounds_.size() + 1;
  cells_[shard * num_buckets + BucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  const size_t num_buckets = bounds_.size() + 1;
  snapshot.counts.assign(num_buckets, 0);
  for (size_t shard = 0; shard < internal::kShards; ++shard) {
    for (size_t b = 0; b < num_buckets; ++b) {
      snapshot.counts[b] +=
          cells_[shard * num_buckets + b].load(std::memory_order_relaxed);
    }
    snapshot.sum += sums_[shard].load(std::memory_order_relaxed);
  }
  for (uint64_t c : snapshot.counts) snapshot.count += c;
  return snapshot;
}

// ----------------------------------------------------------------- Registry

Registry::Registry(const Options& options)
    : clock_(options.clock), enabled_(options.enabled) {
  if (!clock_) {
    clock_ = [] { return std::chrono::steady_clock::now(); };
  }
}

Registry::Child* Registry::GetChild(const std::string& name,
                                    const std::string& help, MetricType type,
                                    const Labels& labels) {
  CCE_CHECK(ValidMetricName(name));
  for (const auto& [key, value] : labels) {
    CCE_CHECK(ValidMetricName(key));
    (void)value;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [family_it, created] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (created) {
    family.help = help;
    family.type = type;
  } else {
    // A name registered twice with different types would make exposition
    // ambiguous; that is a programmer error, not a runtime condition.
    CCE_CHECK(family.type == type);
  }
  Child& child = family.children[LabelSignature(labels)];
  if (child.labels.empty() && !labels.empty()) {
    child.labels = labels;
    std::sort(child.labels.begin(), child.labels.end());
  }
  return &child;
}

Counter* Registry::GetCounter(const std::string& name, const std::string& help,
                              const Labels& labels) {
  Child* child = GetChild(name, help, MetricType::kCounter, labels);
  if (child->counter == nullptr) {
    child->counter.reset(new Counter(&enabled_));
  }
  return child->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          const Labels& labels) {
  Child* child = GetChild(name, help, MetricType::kGauge, labels);
  if (child->gauge == nullptr) {
    child->gauge.reset(new Gauge(&enabled_));
  }
  return child->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels,
                                  const Histogram::Options& options) {
  Child* child = GetChild(name, help, MetricType::kHistogram, labels);
  if (child->histogram == nullptr) {
    child->histogram.reset(new Histogram(options, &enabled_));
  }
  return child->histogram.get();
}

std::vector<Registry::FamilySnapshot> Registry::Collect() const {
  // Two phases: copy the family/child structure under the registry mutex,
  // then read values outside it so gauge callbacks may take their own locks
  // (e.g. the proxy mutex) without inverting against ours.
  struct PendingSample {
    Labels labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  struct PendingFamily {
    std::string name;
    std::string help;
    MetricType type;
    std::vector<PendingSample> samples;
  };
  std::vector<PendingFamily> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.reserve(families_.size());
    for (const auto& [name, family] : families_) {
      PendingFamily out{name, family.help, family.type, {}};
      out.samples.reserve(family.children.size());
      for (const auto& [signature, child] : family.children) {
        out.samples.push_back(PendingSample{child.labels, child.counter.get(),
                                            child.gauge.get(),
                                            child.histogram.get()});
      }
      pending.push_back(std::move(out));
    }
  }
  std::vector<FamilySnapshot> result;
  result.reserve(pending.size());
  for (const PendingFamily& family : pending) {
    FamilySnapshot out{family.name, family.help, family.type, {}};
    for (const PendingSample& sample : family.samples) {
      SampleSnapshot snapshot;
      snapshot.labels = sample.labels;
      if (sample.counter != nullptr) {
        snapshot.value = static_cast<int64_t>(sample.counter->Value());
      } else if (sample.gauge != nullptr) {
        snapshot.value = sample.gauge->Value();
      } else if (sample.histogram != nullptr) {
        snapshot.histogram = sample.histogram->TakeSnapshot();
      }
      out.samples.push_back(std::move(snapshot));
    }
    result.push_back(std::move(out));
  }
  return result;
}

Registry& GlobalRegistry() {
  static Registry* global = new Registry();
  return *global;
}

// --------------------------------------------------------- ThreadPoolGauges

ThreadPoolGauges::ThreadPoolGauges(Registry* registry, const ThreadPool* pool,
                                   const std::string& pool_name) {
  if (registry == nullptr || pool == nullptr) return;
  const Labels labels = {{"pool", pool_name}};
  depth_ = registry->GetGauge("cce_thread_pool_queue_depth",
                              "Tasks queued (not yet running) in the pool.",
                              labels);
  depth_token_ = depth_->SetCallback(
      [pool] { return static_cast<int64_t>(pool->queued()); });
  threads_ = registry->GetGauge("cce_thread_pool_threads",
                                "Worker threads in the pool.", labels);
  threads_token_ = threads_->SetCallback(
      [pool] { return static_cast<int64_t>(pool->num_threads()); });
}

ThreadPoolGauges::~ThreadPoolGauges() {
  if (depth_ != nullptr) depth_->ClearCallback(depth_token_);
  if (threads_ != nullptr) threads_->ClearCallback(threads_token_);
}

}  // namespace cce::obs
