#ifndef CCE_OBS_METRICS_H_
#define CCE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cce {
class ThreadPool;
}  // namespace cce

namespace cce::obs {

/// Process-wide metrics substrate (DESIGN.md §9). Three metric kinds in the
/// Prometheus tradition:
///
///   Counter   — monotonically increasing event count. Writes are sharded
///               across cache-line-aligned atomics (one relaxed fetch_add on
///               the shard owned by the calling thread's hash), so the
///               serving hot path pays roughly one uncontended cache line
///               per increment even when many threads instrument at once.
///   Gauge     — a settable level (queue depth, breaker state, live limit),
///               either stored or computed on read by a callback.
///   Histogram — a log-linear latency distribution: every power-of-two
///               octave is split into `sub_buckets_per_octave` linear
///               buckets, giving ~12% relative resolution across six
///               decades with ~100 buckets. Same sharding as counters.
///
/// Metrics are created through (and owned by) a Registry; the returned raw
/// pointers stay valid for the registry's lifetime and are safe to hammer
/// from any thread. Families are keyed by name, children by their label
/// set, so a metric exists in exactly one place — HealthSnapshot, the
/// Prometheus endpoint and the JSON endpoint all read the same cells.
///
/// A registry can be disabled (set_enabled(false)): every write becomes a
/// single relaxed load + branch, which is how bench_obs measures the cost
/// of instrumentation itself.

/// Label set of one metric child, e.g. {{"class", "predict"}}. Order given
/// at creation is normalised (sorted by key) internally.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

namespace internal {
/// Stable per-thread shard index; cheap (one thread_local read).
size_t ThreadShard();
constexpr size_t kShards = 8;
}  // namespace internal

/// Monotonically increasing event counter with sharded storage.
class Counter {
 public:
  void Increment() { Add(1); }

  void Add(uint64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[internal::ThreadShard() & (internal::kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over shards. Relaxed: concurrent writers may not be visible yet;
  /// exact after the writing threads are joined (or under a happens-before
  /// edge such as a mutex).
  uint64_t Value() const;

 private:
  friend class Registry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, internal::kShards> shards_;
  const std::atomic<bool>* enabled_;
};

/// A settable level. Value() is either the stored cell or, when a callback
/// is bound, the callback's result — that is how cheap pull-style gauges
/// (thread-pool queue depth) are exposed without a write on every change.
class Gauge {
 public:
  void Set(int64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const;

  /// Binds `fn` as the value source; returns a token for ClearCallback.
  /// The callback must stay valid until cleared; it is invoked under the
  /// gauge's own mutex, so clearing synchronises with in-flight reads.
  uint64_t SetCallback(std::function<int64_t()> fn);

  /// Unbinds the callback if `token` still owns it (a later SetCallback
  /// wins, which makes RAII binders safe to stack on one gauge name).
  void ClearCallback(uint64_t token);

 private:
  friend class Registry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<int64_t> value_{0};
  const std::atomic<bool>* enabled_;
  mutable std::mutex callback_mu_;
  std::function<int64_t()> callback_;
  uint64_t callback_token_ = 0;
};

/// Log-linear histogram of non-negative integer observations (the serving
/// layer records microseconds). Bucket upper bounds are 1..S, then every
/// octave [S·2^k, S·2^(k+1)) split into S linear steps — e.g. with S=4:
/// 1,2,3,4,5,6,7,8,10,12,14,16,20,24,28,32,... plus a +Inf overflow bucket.
class Histogram {
 public:
  struct Options {
    /// Largest finite bucket bound; observations beyond land in +Inf.
    int64_t max_value = int64_t{1} << 30;
    /// Linear sub-buckets per power-of-two octave (resolution knob).
    int sub_buckets_per_octave = 4;
  };

  /// Point-in-time copy: per-bucket (non-cumulative) counts aligned with
  /// `bounds`, the +Inf overflow count last, plus total count and sum.
  struct Snapshot {
    std::vector<int64_t> bounds;   // finite upper bounds, ascending
    std::vector<uint64_t> counts;  // bounds.size() + 1 (last = +Inf)
    uint64_t count = 0;
    int64_t sum = 0;
  };

  void Observe(int64_t value);

  Snapshot TakeSnapshot() const;

  /// Finite bucket upper bounds (shared by every shard).
  const std::vector<int64_t>& bounds() const { return bounds_; }

 private:
  friend class Registry;
  Histogram(const Options& options, const std::atomic<bool>* enabled);

  size_t BucketIndex(int64_t value) const;

  std::vector<int64_t> bounds_;
  /// Shard-major flat storage: shard s, bucket b at [s * num_buckets + b],
  /// where num_buckets = bounds_.size() + 1 (+Inf last).
  std::vector<std::atomic<uint64_t>> cells_;
  std::array<std::atomic<int64_t>, internal::kShards> sums_;
  const std::atomic<bool>* enabled_;
};

/// Owner and lookup point for every metric. Thread-safe. Creation is
/// find-or-create: asking twice for the same (name, labels) returns the
/// same cell, which is what lets the proxy, the overload controller and the
/// exposition endpoints agree on one set of counters.
class Registry {
 public:
  using ClockFn = std::function<std::chrono::steady_clock::time_point()>;

  struct Options {
    /// Injectable monotonic clock used by ScopedLatency and anything else
    /// that times against this registry; tests drive it manually.
    ClockFn clock;
    /// Initial enabled state (see set_enabled).
    bool enabled = true;
  };

  Registry() : Registry(Options{}) {}
  explicit Registry(const Options& options);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. `help` is recorded on first creation; a type clash on
  /// an existing family is a programmer error and aborts.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const Labels& labels = {},
                          const Histogram::Options& options = {});

  /// Master write switch: when false every Increment/Add/Set/Observe is a
  /// relaxed load + branch and nothing else. Collection still works (it
  /// reports whatever was recorded while enabled).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::chrono::steady_clock::time_point now() const { return clock_(); }
  const ClockFn& clock() const { return clock_; }

  /// One collected sample (child) of a family.
  struct SampleSnapshot {
    Labels labels;  // sorted by key
    int64_t value = 0;  // counter / gauge reading
    Histogram::Snapshot histogram;  // populated for histogram families
  };
  /// One metric family with all its children, sorted for stable exposition.
  struct FamilySnapshot {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<SampleSnapshot> samples;
  };

  /// Snapshot of every family, sorted by name (children by label string).
  /// Gauge callbacks are invoked here, outside the registry mutex, so they
  /// may take their own locks.
  std::vector<FamilySnapshot> Collect() const;

 private:
  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    /// Children keyed by canonical label signature, sorted.
    std::map<std::string, Child> children;
  };

  Child* GetChild(const std::string& name, const std::string& help,
                  MetricType type, const Labels& labels);

  ClockFn clock_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// The default process-wide registry. Components that are not told which
/// registry to use (e.g. the batch explain thread pool) report here; the
/// proxy defaults to a private registry per instance so tests and
/// co-located proxies never share counters unless asked to.
Registry& GlobalRegistry();

/// RAII latency sample: observes the elapsed time (in microseconds, on the
/// registry's clock) into `histogram` at scope exit. Null-safe.
class ScopedLatency {
 public:
  ScopedLatency(const Registry* registry, Histogram* histogram)
      : registry_(registry), histogram_(histogram) {
    if (registry_ != nullptr) start_ = registry_->now();
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (registry_ == nullptr || histogram_ == nullptr) return;
    histogram_->Observe(std::chrono::duration_cast<std::chrono::microseconds>(
                            registry_->now() - start_)
                            .count());
  }

 private:
  const Registry* registry_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

/// Binds pull-style gauges for a ThreadPool's live state:
///   cce_thread_pool_queue_depth{pool=...}  — tasks queued, not yet running
///   cce_thread_pool_threads{pool=...}      — worker count
/// The callbacks read the pool directly, so the pool must outlive this
/// object; the destructor unbinds them (the gauges then read 0), which
/// makes instrumenting short-lived pools safe.
class ThreadPoolGauges {
 public:
  ThreadPoolGauges(Registry* registry, const ThreadPool* pool,
                   const std::string& pool_name);
  ThreadPoolGauges(const ThreadPoolGauges&) = delete;
  ThreadPoolGauges& operator=(const ThreadPoolGauges&) = delete;
  ~ThreadPoolGauges();

 private:
  Gauge* depth_ = nullptr;
  uint64_t depth_token_ = 0;
  Gauge* threads_ = nullptr;
  uint64_t threads_token_ = 0;
};

}  // namespace cce::obs

#endif  // CCE_OBS_METRICS_H_
