#include "obs/trace.h"

#include <algorithm>

namespace cce::obs {

const char* TraceOutcomeName(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kUnset:
      return "unset";
    case TraceOutcome::kServedFull:
      return "served_full";
    case TraceOutcome::kServedCached:
      return "served_cached";
    case TraceOutcome::kDegraded:
      return "degraded";
    case TraceOutcome::kShed:
      return "shed";
    case TraceOutcome::kRetried:
      return "retried";
    case TraceOutcome::kBroke:
      return "broke";
    case TraceOutcome::kError:
      return "error";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity, ClockFn clock)
    : capacity_(capacity), clock_(std::move(clock)), ring_(capacity) {
  if (!clock_) {
    clock_ = [] { return std::chrono::steady_clock::now(); };
  }
}

void TraceRing::Commit(TraceRecord&& record) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  record.id = ++committed_;
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceRecord> TraceRing::Recent(size_t max_records) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t held = std::min<uint64_t>(committed_, capacity_);
  size_t want = max_records == 0 ? held : std::min(max_records, held);
  std::vector<TraceRecord> out;
  out.reserve(want);
  // next_ points at the oldest slot once the ring has wrapped; walk
  // backwards from the newest commit.
  size_t index = next_;
  while (want-- > 0) {
    index = (index + capacity_ - 1) % capacity_;
    out.push_back(ring_[index]);
  }
  return out;
}

uint64_t TraceRing::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

RequestTrace::RequestTrace(TraceRing* ring, const char* op) : ring_(ring) {
  if (ring_ == nullptr) return;
  record_.op = op;
  start_ = ring_->now();
}

RequestTrace::~RequestTrace() {
  if (ring_ == nullptr) return;
  record_.total_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         ring_->now() - start_)
                         .count();
  ring_->Commit(std::move(record_));
}

RequestTrace::Span::Span(RequestTrace* parent, const char* name)
    : parent_(parent), name_(name) {
  if (parent_ != nullptr) start_ = parent_->ring_->now();
}

void RequestTrace::Span::End() {
  if (parent_ == nullptr) return;
  TraceRecord& record = parent_->record_;
  if (record.num_phases < TraceRecord::kMaxPhases) {
    record.phases[record.num_phases++] = TracePhase{
        name_, std::chrono::duration_cast<std::chrono::microseconds>(
                   parent_->ring_->now() - start_)
                   .count()};
  }
  parent_ = nullptr;
}

RequestTrace::Span RequestTrace::Phase(const char* name) {
  return Span(ring_ == nullptr ? nullptr : this, name);
}

}  // namespace cce::obs
