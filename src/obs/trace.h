#ifndef CCE_OBS_TRACE_H_
#define CCE_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace cce::obs {

/// Always-on per-request tracing (DESIGN.md §9). Every request through an
/// instrumented entry point builds one TraceRecord — phase timings plus a
/// cause-of-outcome annotation — and commits it into a bounded ring of
/// recent traces. The ring answers the incident-debugging question metrics
/// cannot: not "how many requests degraded" but "what did the last degraded
/// request spend its time on".
///
/// Cost discipline: a record is a small fixed-size struct (phase names are
/// static strings, no allocation on the success path), and committing is
/// one mutex acquisition + a struct move into a preallocated slot. The
/// Predict-path overhead is measured in bench_obs.

/// Why a request ended the way it did — the degradation ladder, annotated.
enum class TraceOutcome {
  kUnset = 0,
  /// Full service: the request was answered completely and on time.
  kServedFull,
  /// Answered from the explanation cache (the cached ladder rung).
  kServedCached,
  /// Answered with a valid but non-minimal key (deadline-truncated).
  kDegraded,
  /// Rejected by admission control (rate limit, queue, CoDel, deadline
  /// feasibility) — kResourceExhausted/kDeadlineExceeded to the client.
  kShed,
  /// Served successfully, but only after one or more retries.
  kRetried,
  /// Rejected fast because the circuit breaker was open.
  kBroke,
  /// Any other failure (validation reject, backend error, I/O error).
  kError,
};

const char* TraceOutcomeName(TraceOutcome outcome);

/// One timed phase inside a request. `name` must be a string literal (or
/// otherwise outlive the ring) — records store the pointer, not a copy.
struct TracePhase {
  const char* name = "";
  int64_t duration_us = 0;
};

/// One completed request.
struct TraceRecord {
  /// 1-based commit sequence number (monotonic per ring).
  uint64_t id = 0;
  /// Entry point, e.g. "predict" / "explain"; a string literal.
  const char* op = "";
  TraceOutcome outcome = TraceOutcome::kUnset;
  /// Wall time from RequestTrace construction to commit.
  int64_t total_us = 0;
  /// Phase timings in execution order (capped at kMaxPhases).
  static constexpr size_t kMaxPhases = 8;
  std::array<TracePhase, kMaxPhases> phases{};
  size_t num_phases = 0;
  /// Failure detail (status message); empty on the success path.
  std::string detail;
};

/// Fixed-capacity ring of recent traces. Thread-safe; commits overwrite the
/// oldest record once full. Capacity 0 is a valid inert ring.
class TraceRing {
 public:
  using ClockFn = std::function<std::chrono::steady_clock::time_point()>;

  explicit TraceRing(size_t capacity, ClockFn clock = nullptr);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Newest-first copy of up to `max_records` recent traces (0 = all held).
  std::vector<TraceRecord> Recent(size_t max_records = 0) const;

  /// Traces ever committed (≥ the number currently held).
  uint64_t committed() const;

  size_t capacity() const { return capacity_; }

  std::chrono::steady_clock::time_point now() const { return clock_(); }

 private:
  friend class RequestTrace;

  /// Stamps the id and stores the record, overwriting the oldest.
  void Commit(TraceRecord&& record);

  size_t capacity_;
  ClockFn clock_;
  mutable std::mutex mu_;
  std::vector<TraceRecord> ring_;
  size_t next_ = 0;
  uint64_t committed_ = 0;
};

/// RAII builder for one request's trace. Construct at the top of an entry
/// point, time phases with Phase(), set the outcome, and the destructor
/// commits to the ring. A null ring makes every operation a no-op, so call
/// sites need no "is tracing on" branches.
class RequestTrace {
 public:
  /// `op` must be a string literal.
  RequestTrace(TraceRing* ring, const char* op);
  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;
  ~RequestTrace();

  /// RAII phase timer: duration from construction to destruction is
  /// appended to the parent trace (phases beyond kMaxPhases are dropped).
  class Span {
   public:
    Span(Span&& other) noexcept
        : parent_(other.parent_), name_(other.name_), start_(other.start_) {
      other.parent_ = nullptr;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;
    ~Span() { End(); }

    /// Ends the phase early (idempotent).
    void End();

   private:
    friend class RequestTrace;
    Span(RequestTrace* parent, const char* name);

    RequestTrace* parent_;
    const char* name_;
    std::chrono::steady_clock::time_point start_{};
  };

  /// Starts a timed phase; `name` must be a string literal.
  Span Phase(const char* name);

  void set_outcome(TraceOutcome outcome) { record_.outcome = outcome; }
  TraceOutcome outcome() const { return record_.outcome; }

  /// Records failure detail (allocates; keep off the success path).
  void set_detail(std::string detail) { record_.detail = std::move(detail); }

  const char* op() const { return record_.op; }

  bool active() const { return ring_ != nullptr; }

 private:
  TraceRing* ring_;
  TraceRecord record_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace cce::obs

#endif  // CCE_OBS_TRACE_H_
