#include "sat/cnf.h"

namespace cce::sat {

void CnfFormula::AddExactlyOne(const std::vector<Lit>& lits) {
  // At least one.
  AddClause(lits);
  // At most one, pairwise.
  for (size_t i = 0; i < lits.size(); ++i) {
    for (size_t j = i + 1; j < lits.size(); ++j) {
      AddBinary(~lits[i], ~lits[j]);
    }
  }
}

}  // namespace cce::sat
