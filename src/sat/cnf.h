#ifndef CCE_SAT_CNF_H_
#define CCE_SAT_CNF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cce::sat {

/// A propositional variable, 0-based.
using Var = int32_t;

/// A literal in MiniSat encoding: code = 2*var + (negated ? 1 : 0).
struct Lit {
  int32_t code = -1;

  Var var() const { return code >> 1; }
  bool negated() const { return (code & 1) != 0; }
  Lit operator~() const { return Lit{code ^ 1}; }
  bool operator==(const Lit& other) const = default;
};

inline Lit Pos(Var v) { return Lit{2 * v}; }
inline Lit Neg(Var v) { return Lit{2 * v + 1}; }

using Clause = std::vector<Lit>;

/// A CNF formula under construction. Variables are allocated through
/// NewVar(); clauses reference allocated variables only.
class CnfFormula {
 public:
  Var NewVar() { return num_vars_++; }

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// formula trivially unsatisfiable.
  void AddClause(Clause clause) { clauses_.push_back(std::move(clause)); }

  void AddUnit(Lit a) { AddClause({a}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  /// Asserts exactly one of `lits` is true (pairwise encoding — adequate
  /// for the small feature domains we encode).
  void AddExactlyOne(const std::vector<Lit>& lits);

  int num_vars() const { return num_vars_; }
  const std::vector<Clause>& clauses() const { return clauses_; }

 private:
  int num_vars_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace cce::sat

#endif  // CCE_SAT_CNF_H_
