#include "sat/dimacs.h"

#include <ostream>
#include <sstream>

namespace cce::sat {

Status WriteDimacs(const CnfFormula& formula, std::ostream* out) {
  *out << "p cnf " << formula.num_vars() << " " << formula.clauses().size()
       << "\n";
  for (const Clause& clause : formula.clauses()) {
    for (Lit lit : clause) {
      *out << (lit.negated() ? -(lit.var() + 1) : (lit.var() + 1)) << " ";
    }
    *out << "0\n";
  }
  if (!out->good()) return Status::IoError("write failed");
  return Status::Ok();
}

std::string ToDimacsString(const CnfFormula& formula) {
  std::ostringstream out;
  WriteDimacs(formula, &out);
  return out.str();
}

Result<CnfFormula> ParseDimacs(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  CnfFormula formula;
  long long declared_vars = -1;
  long long declared_clauses = -1;
  size_t parsed_clauses = 0;
  Clause current;
  bool clause_open = false;

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      if (declared_vars >= 0) {
        return Status::InvalidArgument("duplicate problem line");
      }
      std::istringstream parser(line);
      std::string p, cnf;
      parser >> p >> cnf >> declared_vars >> declared_clauses;
      if (cnf != "cnf" || declared_vars < 0 || declared_clauses < 0) {
        return Status::InvalidArgument("bad problem line: '" + line + "'");
      }
      for (long long v = 0; v < declared_vars; ++v) formula.NewVar();
      continue;
    }
    if (declared_vars < 0) {
      return Status::InvalidArgument("clause before problem line");
    }
    std::istringstream parser(line);
    long long raw;
    while (parser >> raw) {
      if (raw == 0) {
        formula.AddClause(current);
        current.clear();
        clause_open = false;
        ++parsed_clauses;
        continue;
      }
      long long var = raw > 0 ? raw : -raw;
      if (var > declared_vars) {
        return Status::InvalidArgument("literal exceeds declared vars");
      }
      current.push_back(raw > 0 ? Pos(static_cast<Var>(var - 1))
                                : Neg(static_cast<Var>(var - 1)));
      clause_open = true;
    }
  }
  if (clause_open) {
    return Status::InvalidArgument("last clause not 0-terminated");
  }
  if (declared_vars < 0) {
    return Status::InvalidArgument("missing problem line");
  }
  if (static_cast<long long>(parsed_clauses) != declared_clauses) {
    return Status::InvalidArgument("clause count mismatch");
  }
  return formula;
}

}  // namespace cce::sat
