#ifndef CCE_SAT_DIMACS_H_
#define CCE_SAT_DIMACS_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "sat/cnf.h"

namespace cce::sat {

/// DIMACS CNF interchange, so formulas can be exported to (and imported
/// from) standard SAT tooling for cross-checking the built-in solver.

/// Writes `formula` in DIMACS format ("p cnf <vars> <clauses>" header,
/// 1-based signed literals, 0-terminated clauses).
Status WriteDimacs(const CnfFormula& formula, std::ostream* out);

/// Renders to a string (convenience for tests/logging).
std::string ToDimacsString(const CnfFormula& formula);

/// Parses DIMACS text. Comment lines ('c ...') are skipped; the problem
/// line is validated against the clause payload.
Result<CnfFormula> ParseDimacs(const std::string& text);

}  // namespace cce::sat

#endif  // CCE_SAT_DIMACS_H_
