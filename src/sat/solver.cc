#include "sat/solver.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cce::sat {

Solver::Solver(const CnfFormula& formula, Options options)
    : options_(options) {
  const int n = formula.num_vars();
  watches_.resize(2 * static_cast<size_t>(n));
  values_.assign(n, kUndef);
  phase_.assign(n, kFalse);
  levels_.assign(n, 0);
  reasons_.assign(n, -1);
  activity_.assign(n, 0.0);

  for (const Clause& original : formula.clauses()) {
    // Normalise: drop duplicate literals; skip tautologies.
    Clause clause = original;
    std::sort(clause.begin(), clause.end(),
              [](Lit a, Lit b) { return a.code < b.code; });
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    bool tautology = false;
    for (size_t i = 0; i + 1 < clause.size(); ++i) {
      if (clause[i].var() == clause[i + 1].var()) {
        tautology = true;
        break;
      }
    }
    if (tautology) continue;
    if (clause.empty()) {
      unsat_at_root_ = true;
      return;
    }
    clauses_.push_back(std::move(clause));
    if (!AttachClause(static_cast<int>(clauses_.size()) - 1)) {
      unsat_at_root_ = true;
      return;
    }
  }
}

bool Solver::AttachClause(int clause_index) {
  Clause& clause = clauses_[clause_index];
  if (clause.size() == 1) {
    // Unit at root level.
    if (LitValue(clause[0]) == kFalse) return false;
    if (LitValue(clause[0]) == kUndef) Enqueue(clause[0], clause_index);
    return true;
  }
  watches_[clause[0].code ^ 1].push_back(clause_index);
  watches_[clause[1].code ^ 1].push_back(clause_index);
  return true;
}

int8_t Solver::LitValue(Lit lit) const {
  int8_t v = values_[lit.var()];
  if (v == kUndef) return kUndef;
  return lit.negated() ? static_cast<int8_t>(v ^ 1) : v;
}

void Solver::Enqueue(Lit lit, int reason_clause) {
  CCE_CHECK(LitValue(lit) == kUndef);
  values_[lit.var()] = lit.negated() ? kFalse : kTrue;
  levels_[lit.var()] = CurrentLevel();
  reasons_[lit.var()] = reason_clause;
  trail_.push_back(lit);
}

int Solver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    Lit lit = trail_[propagate_head_++];
    ++stats_.propagations;
    // Clauses watching ~lit must be inspected: lit just became true, so the
    // watched literal ~lit became false.
    std::vector<int>& watch_list = watches_[lit.code];
    size_t keep = 0;
    for (size_t i = 0; i < watch_list.size(); ++i) {
      int clause_index = watch_list[i];
      Clause& clause = clauses_[clause_index];
      // Ensure the false literal is at position 1.
      Lit false_lit{lit.code ^ 1};
      if (clause[0] == false_lit) std::swap(clause[0], clause[1]);
      if (LitValue(clause[0]) == kTrue) {
        watch_list[keep++] = clause_index;  // clause already satisfied
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (size_t k = 2; k < clause.size(); ++k) {
        if (LitValue(clause[k]) != kFalse) {
          std::swap(clause[1], clause[k]);
          watches_[clause[1].code ^ 1].push_back(clause_index);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // No replacement: clause is unit or conflicting.
      watch_list[keep++] = clause_index;
      if (LitValue(clause[0]) == kFalse) {
        // Conflict: restore untraversed watches and report.
        for (size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return clause_index;
      }
      Enqueue(clause[0], clause_index);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void Solver::BumpVar(Var v) {
  activity_[v] += activity_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    activity_inc_ *= 1e-100;
  }
}

void Solver::DecayActivities() { activity_inc_ *= (1.0 / 0.95); }

int Solver::Analyze(int conflict_clause, Clause* learned) {
  learned->clear();
  learned->push_back(Lit{-2});  // placeholder for the asserting literal

  std::vector<bool> seen(values_.size(), false);
  int counter = 0;  // literals of the current level pending resolution
  Lit resolved{-2};
  size_t trail_index = trail_.size();
  int clause_index = conflict_clause;

  do {
    CCE_CHECK(clause_index >= 0);
    const Clause& clause = clauses_[clause_index];
    // Skip clause[0] on later iterations: it is the resolved literal.
    size_t start = (resolved.code == -2) ? 0 : 1;
    for (size_t i = start; i < clause.size(); ++i) {
      Lit q = clause[i];
      if (seen[q.var()] || levels_[q.var()] == 0) continue;
      seen[q.var()] = true;
      BumpVar(q.var());
      if (levels_[q.var()] >= CurrentLevel()) {
        ++counter;
      } else {
        learned->push_back(q);
      }
    }
    // Pick the next current-level literal from the trail to resolve on.
    while (!seen[trail_[trail_index - 1].var()]) --trail_index;
    --trail_index;
    resolved = trail_[trail_index];
    clause_index = reasons_[resolved.var()];
    seen[resolved.var()] = false;
    --counter;
  } while (counter > 0);
  (*learned)[0] = ~resolved;  // the first-UIP asserting literal

  // Backjump level: highest level among the non-asserting literals.
  int backjump = 0;
  size_t max_index = 1;
  for (size_t i = 1; i < learned->size(); ++i) {
    int level = levels_[(*learned)[i].var()];
    if (level > backjump) {
      backjump = level;
      max_index = i;
    }
  }
  if (learned->size() > 1) {
    std::swap((*learned)[1], (*learned)[max_index]);
  }
  return backjump;
}

void Solver::Backtrack(int level) {
  while (CurrentLevel() > level) {
    size_t boundary = static_cast<size_t>(trail_lim_.back());
    while (trail_.size() > boundary) {
      Lit lit = trail_.back();
      trail_.pop_back();
      phase_[lit.var()] = values_[lit.var()];
      values_[lit.var()] = kUndef;
      reasons_[lit.var()] = -1;
    }
    trail_lim_.pop_back();
  }
  propagate_head_ = std::min(propagate_head_, trail_.size());
}

Lit Solver::PickBranchLit() {
  Var best = -1;
  double best_activity = -1.0;
  for (Var v = 0; v < static_cast<Var>(values_.size()); ++v) {
    if (values_[v] == kUndef && activity_[v] > best_activity) {
      best_activity = activity_[v];
      best = v;
    }
  }
  if (best < 0) return Lit{-1};
  return phase_[best] == kTrue ? Pos(best) : Neg(best);
}

int64_t Solver::Luby(int64_t i) {
  // Luby sequence 1 1 2 1 1 2 4 ... (MiniSat formulation, 0-based index).
  int64_t size = 1;
  int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return 1LL << seq;
}

Solver::Outcome Solver::Solve(const std::vector<Lit>& assumptions) {
  if (unsat_at_root_) return Outcome::kUnsat;

  // Reset to root level for re-entrant calls.
  Backtrack(0);
  int conflict = Propagate();
  if (conflict >= 0) return Outcome::kUnsat;

  int64_t restart_count = 0;
  int64_t conflicts_until_restart = 100 * Luby(restart_count);
  int64_t conflicts_since_restart = 0;

  while (true) {
    conflict = Propagate();
    if (conflict >= 0) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (CurrentLevel() == 0) return Outcome::kUnsat;
      // Conflicts among assumption-forced levels mean UNSAT under the
      // assumptions (we place assumptions on the lowest decision levels).
      Clause learned;
      int backjump = Analyze(conflict, &learned);
      // Backjumping below an assumption level unassigns that assumption;
      // the re-assumption loop below re-asserts it, and a now-false
      // assumption is reported as kUnsat there.
      Backtrack(backjump);
      clauses_.push_back(learned);
      ++stats_.learned_clauses;
      int clause_index = static_cast<int>(clauses_.size()) - 1;
      if (learned.size() >= 2) {
        watches_[learned[0].code ^ 1].push_back(clause_index);
        watches_[learned[1].code ^ 1].push_back(clause_index);
        Enqueue(learned[0], clause_index);
      } else {
        if (LitValue(learned[0]) == kFalse) return Outcome::kUnsat;
        if (LitValue(learned[0]) == kUndef) Enqueue(learned[0], clause_index);
      }
      DecayActivities();
      if (options_.max_conflicts >= 0 &&
          stats_.conflicts >= options_.max_conflicts) {
        return Outcome::kUnknown;
      }
      if (conflicts_since_restart >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_count;
        conflicts_since_restart = 0;
        conflicts_until_restart = 100 * Luby(restart_count);
        Backtrack(0);
      }
      continue;
    }

    // Re-assert any assumption not yet on the trail, one level each.
    bool conflict_on_assumption = false;
    bool enqueued_assumption = false;
    for (const Lit& assumption : assumptions) {
      int8_t value = LitValue(assumption);
      if (value == kTrue) continue;
      if (value == kFalse) {
        conflict_on_assumption = true;
        break;
      }
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      Enqueue(assumption, -1);
      enqueued_assumption = true;
      break;
    }
    if (conflict_on_assumption) return Outcome::kUnsat;
    if (enqueued_assumption) continue;

    Lit decision = PickBranchLit();
    if (decision.code < 0) return Outcome::kSat;  // full assignment
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    Enqueue(decision, -1);
  }
}

bool Solver::ModelValue(Var v) const {
  CCE_CHECK(v >= 0 && v < static_cast<Var>(values_.size()));
  return values_[v] == kTrue;
}

}  // namespace cce::sat
