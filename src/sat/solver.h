#ifndef CCE_SAT_SOLVER_H_
#define CCE_SAT_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sat/cnf.h"

namespace cce::sat {

/// A compact CDCL SAT solver: two-watched-literal propagation, first-UIP
/// clause learning, VSIDS-style activity decisions with phase saving, and
/// Luby restarts. Used by the Xreason baseline's CNF path and tested
/// standalone; deliberately favours clarity over raw speed.
class Solver {
 public:
  enum class Outcome { kSat, kUnsat, kUnknown };

  struct Options {
    /// Abort with kUnknown after this many conflicts (< 0 = unlimited).
    int64_t max_conflicts = -1;
  };

  struct Stats {
    int64_t decisions = 0;
    int64_t propagations = 0;
    int64_t conflicts = 0;
    int64_t restarts = 0;
    int64_t learned_clauses = 0;
  };

  explicit Solver(const CnfFormula& formula) : Solver(formula, Options()) {}
  Solver(const CnfFormula& formula, Options options);

  /// Decides satisfiability under the given assumption literals.
  Outcome Solve(const std::vector<Lit>& assumptions = {});

  /// Model value of `v`; valid only after Solve() returned kSat.
  bool ModelValue(Var v) const;

  const Stats& stats() const { return stats_; }

 private:
  enum : int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  int8_t LitValue(Lit lit) const;
  void Enqueue(Lit lit, int reason_clause);
  /// Returns the conflicting clause index, or -1 on success.
  int Propagate();
  /// First-UIP conflict analysis; fills `learned` (asserting literal first)
  /// and returns the backjump level.
  int Analyze(int conflict_clause, Clause* learned);
  void Backtrack(int level);
  Lit PickBranchLit();
  void BumpVar(Var v);
  void DecayActivities();
  bool AttachClause(int clause_index);
  int CurrentLevel() const { return static_cast<int>(trail_lim_.size()); }
  static int64_t Luby(int64_t i);

  Options options_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  // per literal code
  std::vector<int8_t> values_;             // per var
  std::vector<int8_t> phase_;              // saved phase per var
  std::vector<int> levels_;                // per var
  std::vector<int> reasons_;               // per var, clause index or -1
  std::vector<double> activity_;           // per var
  double activity_inc_ = 1.0;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t propagate_head_ = 0;
  bool unsat_at_root_ = false;
  Stats stats_;
};

}  // namespace cce::sat

#endif  // CCE_SAT_SOLVER_H_
