#include "serving/context_shard.h"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <utility>

#include "io/atomic_file.h"
#include "io/serialize.h"
#include "io/shard_snapshot.h"

namespace cce::serving {

ContextShard::ContextShard(std::shared_ptr<const Schema> schema,
                           const Options& options,
                           const Instruments& instruments)
    : schema_(std::move(schema)),
      options_(options),
      env_(options.env != nullptr ? options.env : io::Env::Default()),
      ins_(instruments) {
  if (options_.monitor_drift) {
    drift_ = std::make_unique<DriftMonitor>(schema_, options_.drift);
  }
}

size_t ContextShard::ShardFor(const Instance& x, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const ValueId v : x) {
    h ^= static_cast<uint64_t>(v);
    h *= 1099511628211ull;  // FNV prime
  }
  return static_cast<size_t>(h % num_shards);
}

void ContextShard::SetStateLocked(State state) {
  state_.store(state, std::memory_order_release);
  if (ins_.shard_quarantined != nullptr) {
    ins_.shard_quarantined->Set(state == State::kQuarantined ? 1 : 0);
  }
  if (ins_.shard_read_only != nullptr) {
    ins_.shard_read_only->Set(state == State::kReadOnly ? 1 : 0);
  }
}

Status ContextShard::QuarantineLocked(const std::string& reason,
                                      const char* cause) {
  quarantine_reason_ = reason;
  last_quarantine_reason_ = reason;
  last_quarantine_cause_ = cause;
  if (std::string(cause) == "snapshot") {
    if (ins_.shard_quarantines_snapshot != nullptr) {
      ins_.shard_quarantines_snapshot->Increment();
    }
  } else if (ins_.shard_quarantines_wal != nullptr) {
    ins_.shard_quarantines_wal->Increment();
  }
  wal_.reset();
  window_.clear();
  window_size_.store(0, std::memory_order_release);
  front_seq_.store(UINT64_MAX, std::memory_order_release);
  total_recorded_.store(0, std::memory_order_release);
  SetStateLocked(State::kQuarantined);
  return Status::Ok();
}

void ContextShard::PushRowLocked(uint64_t seq, const Instance& x, Label y) {
  if (window_.empty()) {
    front_seq_.store(seq, std::memory_order_release);
  }
  window_.push_back(Row{seq, x, y});
  window_size_.store(window_.size(), std::memory_order_release);
  if (drift_ != nullptr) drift_->Observe(x, y);
}

void ContextShard::SyncFsyncCountersLocked() {
  if (wal_ == nullptr) return;
  const uint64_t fsyncs = wal_->fsyncs();
  if (fsyncs > wal_fsyncs_exported_) {
    const uint64_t delta = fsyncs - wal_fsyncs_exported_;
    if (ins_.shard_wal_fsyncs != nullptr) ins_.shard_wal_fsyncs->Add(delta);
    if (ins_.agg_fsyncs != nullptr) ins_.agg_fsyncs->Add(delta);
    wal_fsyncs_exported_ = fsyncs;
  }
}

Status ContextShard::Recover(std::atomic<uint64_t>* seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.wal_path.empty()) return Status::Ok();  // in-memory shard

  io::LoadedShardSnapshot snapshot;
  snapshot.rows = Dataset(schema_);
  if (env_->FileExists(options_.snapshot_path)) {
    auto loaded = io::LoadShardSnapshot(env_, options_.snapshot_path);
    if (!loaded.ok()) {
      return QuarantineLocked("shard " + std::to_string(options_.index) +
                                  " snapshot unrecoverable: " +
                                  loaded.status().message(),
                              "snapshot");
    }
    snapshot = std::move(loaded).value();
    Status compatible =
        io::CheckShardSchemaCompatible(*schema_, snapshot.rows.schema());
    // A schema clash is the hard failure that must stop Create: serving
    // another deployment's context would silently mis-explain everything.
    CCE_RETURN_IF_ERROR(compatible);
  }

  // Collect the log's frames first, then decide what to apply: the skip
  // count below depends on recovery stats only known after Open returns.
  std::vector<Row> frames;
  io::ContextWal::RecoveryStats stats;
  io::ContextWal::Options wal_options;
  wal_options.sync_every = options_.sync_every;
  wal_options.env = env_;
  auto replay = [&frames](uint64_t frame_seq, const Instance& x, Label y) {
    frames.push_back(Row{frame_seq, x, y});
    return Status::Ok();
  };
  auto opened = io::ContextWal::Open(options_.wal_path, wal_options, replay,
                                     &stats);
  if (!opened.ok()) {
    return QuarantineLocked("shard " + std::to_string(options_.index) +
                                " wal unrecoverable: " +
                                opened.status().message(),
                            "wal");
  }
  wal_ = std::move(opened).value();
  last_salvage_truncated_bytes_ = stats.bytes_discarded;
  if (ins_.shard_salvage_truncated_bytes != nullptr) {
    ins_.shard_salvage_truncated_bytes->Set(
        static_cast<int64_t>(stats.bytes_discarded));
  }

  // Torn-compaction healing: a crash after the snapshot rename but before
  // the WAL reset leaves log frames that the snapshot already contains.
  // The wrapper's covers count identifies exactly how many to skip.
  const uint64_t base = stats.base_recorded;
  uint64_t skip = 0;
  if (snapshot.covers_valid && snapshot.covers > base) {
    skip = std::min<uint64_t>(snapshot.covers - base, frames.size());
  }

  uint64_t replayed = 0;
  uint64_t dropped = stats.records_dropped;
  // Rows recovered with a persisted sequence keep it — that is what lets
  // the proxy re-merge N shard windows into the exact cross-shard arrival
  // order — and the shared counter is advanced past it so new records
  // never collide. Legacy rows (headerless snapshot) take fresh numbers.
  auto admit = [&](uint64_t row_seq, bool seq_known, const Instance& x,
                   Label y) {
    if (!schema_->ValidateInstance(x).ok() ||
        !schema_->ValidateLabel(y).ok()) {
      // A poisoned row in a tampered file is dropped, not admitted.
      ++dropped;
      return;
    }
    if (seq_known) {
      // Recovery runs shard-sequentially on one thread; a plain
      // load/store max is race-free here.
      if (seq->load(std::memory_order_relaxed) <= row_seq) {
        seq->store(row_seq + 1, std::memory_order_relaxed);
      }
    } else {
      row_seq = seq->fetch_add(1, std::memory_order_relaxed);
    }
    PushRowLocked(row_seq, x, y);
    ++replayed;
  };
  for (size_t row = 0; row < snapshot.rows.size(); ++row) {
    const bool seq_known = snapshot.covers_valid;
    admit(seq_known ? snapshot.seqs[row] : 0, seq_known,
          snapshot.rows.instance(row), snapshot.rows.label(row));
  }
  for (size_t i = static_cast<size_t>(skip); i < frames.size(); ++i) {
    admit(frames[i].seq, true, frames[i].x, frames[i].y);
  }

  // Total ever recorded: the covers count (or the log base) accounts for
  // everything compacted away, including rows evicted from the window.
  const uint64_t covered =
      snapshot.covers_valid ? snapshot.covers
                            : static_cast<uint64_t>(snapshot.rows.size());
  total_recorded_.store(std::max<uint64_t>(covered, base + frames.size()),
                        std::memory_order_release);

  if (ins_.shard_recovered_records != nullptr && replayed > 0) {
    ins_.shard_recovered_records->Add(replayed);
  }
  if (ins_.agg_records_recovered != nullptr && replayed > 0) {
    ins_.agg_records_recovered->Add(replayed);
  }
  if (dropped > 0) {
    if (ins_.shard_salvage_dropped != nullptr) {
      ins_.shard_salvage_dropped->Add(dropped);
    }
    if (ins_.agg_records_dropped != nullptr) {
      ins_.agg_records_dropped->Add(dropped);
    }
  }

  // Start the new process on a clean generation whenever the recovered
  // state differs from (snapshot, empty log): fold it into a fresh
  // snapshot + reset log. Fail-soft — a failed fold leaves the previous
  // generation readable and the shard serving.
  if (stats.records_recovered > 0 || stats.bytes_discarded > 0 ||
      (snapshot.covers_valid && snapshot.covers != base)) {
    Status folded = CompactLocked();
    if (!folded.ok()) {
      if (ins_.compaction_failures != nullptr) {
        ins_.compaction_failures->Increment();
      }
      if (wal_->poisoned()) SetStateLocked(State::kReadOnly);
    }
  }
  SyncFsyncCountersLocked();
  return Status::Ok();
}

Status ContextShard::Record(const Instance& x, Label y,
                            std::atomic<uint64_t>* seq) {
  std::lock_guard<std::mutex> lock(mu_);
  return RecordLocked(x, y, seq);
}

Status ContextShard::RecordLocked(const Instance& x, Label y,
                                  std::atomic<uint64_t>* seq) {
  const State state = state_.load(std::memory_order_relaxed);
  if (state == State::kQuarantined) {
    return Status::Unavailable(
        "context shard " + std::to_string(options_.index) +
        " is quarantined (" + quarantine_reason_ + "); RepairShard() to "
        "re-admit it");
  }
  if (state == State::kReadOnly) {
    // The poisoned log can only be trusted again once rewritten from
    // scratch; compaction is exactly that rewrite.
    Status healed = CompactLocked();
    if (!healed.ok()) {
      if (ins_.compaction_failures != nullptr) {
        ins_.compaction_failures->Increment();
      }
      return Status::Unavailable(
          "context shard " + std::to_string(options_.index) +
          " is read-only: wal is poisoned by a failed fsync and could not "
          "be rewritten (" + healed.message() + ")");
    }
    SetStateLocked(State::kActive);
  }
  // The sequence is claimed before the WAL write so the number on disk is
  // the number the row serves under; a failed append leaves a gap in the
  // global order, which recovery tolerates (sequences are sparse per
  // shard anyway).
  const uint64_t row_seq = seq->fetch_add(1, std::memory_order_relaxed);
  if (wal_ != nullptr) {
    Status appended;
    {
      obs::ScopedLatency latency(ins_.registry, ins_.wal_append_us);
      appended = wal_->Append(x, y, row_seq);
    }
    if (!appended.ok()) {
      if (wal_->poisoned()) SetStateLocked(State::kReadOnly);
      return appended;
    }
    if (ins_.shard_wal_appends != nullptr) {
      ins_.shard_wal_appends->Increment();
    }
    if (ins_.agg_records_logged != nullptr) {
      ins_.agg_records_logged->Increment();
    }
    SyncFsyncCountersLocked();
    if (wal_->poisoned()) {
      // sync_every fired on this append and the fsync failed: the bytes
      // may never reach disk, so the append must not report OK.
      SetStateLocked(State::kReadOnly);
      return Status::Unavailable(
          "context shard " + std::to_string(options_.index) +
          " wal fsync failed; the record is not durable and the shard is "
          "read-only until the log is rewritten");
    }
  }
  PushRowLocked(row_seq, x, y);
  total_recorded_.fetch_add(1, std::memory_order_release);
  if (wal_ != nullptr && options_.compact_threshold_bytes > 0 &&
      wal_->size_bytes() >= options_.compact_threshold_bytes) {
    Status compacted = CompactLocked();
    if (!compacted.ok()) {
      // The record itself is durable and applied; a failed compaction
      // only means the log stays long. Count it and keep serving unless
      // the WAL came out poisoned.
      if (ins_.compaction_failures != nullptr) {
        ins_.compaction_failures->Increment();
      }
      if (wal_->poisoned()) SetStateLocked(State::kReadOnly);
    }
  }
  return Status::Ok();
}

Status ContextShard::CompactLocked() {
  if (wal_ == nullptr) return Status::Ok();
  const uint64_t covers = total_recorded_.load(std::memory_order_relaxed);
  Context rows(schema_);
  for (const Row& row : window_) rows.Add(row.x, row.y);
  Status wrote = io::AtomicWriteFile(
      env_, options_.snapshot_path, [&](std::ostream* out) {
        *out << io::kShardSnapshotMagic << "\n"
             << "covers " << covers << "\n"
             << "seqs";
        for (const Row& row : window_) *out << ' ' << row.seq;
        *out << "\n";
        return io::SaveDataset(rows, out);
      });
  // On failure the rename never happened: the previous snapshot and the
  // current log generation are both still intact and readable.
  CCE_RETURN_IF_ERROR(wrote);
  CCE_RETURN_IF_ERROR(wal_->Reset(covers));
  if (ins_.agg_compactions != nullptr) ins_.agg_compactions->Increment();
  SyncFsyncCountersLocked();
  return Status::Ok();
}

Status ContextShard::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) == State::kQuarantined) {
    return Status::FailedPrecondition("shard is quarantined");
  }
  Status compacted = CompactLocked();
  if (compacted.ok() &&
      state_.load(std::memory_order_relaxed) == State::kReadOnly) {
    SetStateLocked(State::kActive);
  }
  return compacted;
}

Status ContextShard::Repair() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) != State::kQuarantined) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(options_.index) + " is not quarantined");
  }
  // The damaged generation is abandoned wholesale; a fresh WAL starts the
  // shard from zero records.
  (void)env_->RemoveFile(options_.wal_path);
  (void)env_->RemoveFile(options_.snapshot_path);
  io::ContextWal::Options wal_options;
  wal_options.sync_every = options_.sync_every;
  wal_options.env = env_;
  auto opened = io::ContextWal::Open(options_.wal_path, wal_options,
                                     nullptr, nullptr);
  if (!opened.ok()) return opened.status();
  wal_ = std::move(opened).value();
  wal_fsyncs_exported_ = 0;
  window_.clear();
  window_size_.store(0, std::memory_order_release);
  front_seq_.store(UINT64_MAX, std::memory_order_release);
  total_recorded_.store(0, std::memory_order_release);
  quarantine_reason_.clear();
  if (drift_ != nullptr) {
    drift_ = std::make_unique<DriftMonitor>(schema_, options_.drift);
  }
  SetStateLocked(State::kActive);
  if (ins_.shard_repairs != nullptr) ins_.shard_repairs->Increment();
  SyncFsyncCountersLocked();
  return Status::Ok();
}

void ContextShard::SnapshotInto(std::vector<Row>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->insert(out->end(), window_.begin(), window_.end());
}

bool ContextShard::PopFront(Row* evicted) {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_.empty()) return false;
  if (evicted != nullptr) *evicted = std::move(window_.front());
  window_.pop_front();
  window_size_.store(window_.size(), std::memory_order_release);
  front_seq_.store(window_.empty() ? UINT64_MAX : window_.front().seq,
                   std::memory_order_release);
  return true;
}

bool ContextShard::DriftAlarmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_ != nullptr && drift_->Alarmed();
}

bool ContextShard::wal_poisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ != nullptr && wal_->poisoned();
}

std::string ContextShard::quarantine_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_reason_;
}

uint64_t ContextShard::last_salvage_truncated_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_salvage_truncated_bytes_;
}

std::string ContextShard::last_quarantine_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_quarantine_reason_;
}

std::string ContextShard::last_quarantine_cause() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_quarantine_cause_;
}

}  // namespace cce::serving
