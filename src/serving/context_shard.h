#ifndef CCE_SERVING_CONTEXT_SHARD_H_
#define CCE_SERVING_CONTEXT_SHARD_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/cce.h"
#include "core/dataset.h"
#include "core/types.h"
#include "io/context_wal.h"
#include "io/env.h"
#include "obs/metrics.h"

namespace cce::serving {

/// One fault domain of the proxy's recorded context: a slice of the rolling
/// window plus its own write-ahead log, snapshot/compaction cycle, drift
/// monitor and write lock. The proxy routes each recorded pair to the shard
/// chosen by ShardFor(instance) so concurrent Records on different shards
/// never contend, and a damaged shard never takes the others down.
///
/// Every row carries a proxy-global sequence number assigned under the
/// shard lock at record time; Explain merges shard windows by sequence, so
/// the merged context reproduces the exact arrival order and relative keys
/// are bit-identical to a 1-shard configuration.
///
/// States (fail-soft discipline; Create never fails for I/O damage):
///
///   active      — recording and serving normally.
///   read-only   — the WAL is poisoned (failed fsync, or failed rollback
///                 after a torn append): no append may claim durability, so
///                 Record fails with kUnavailable. The shard still serves
///                 its rows. Each Record first retries compaction, which
///                 rewrites the log on a fresh handle and re-activates.
///   quarantined — recovery could not salvage the shard's files (unreadable
///                 or unparseable snapshot/WAL). The shard serves nothing
///                 and refuses Record until Repair() starts a fresh
///                 generation. Only a *schema clash* escapes the fail-soft
///                 rule: a snapshot describing a different feature space
///                 means the directory belongs to another deployment, and
///                 Recover returns a hard kInvalidArgument instead.
///
/// Thread safety: all methods may be called concurrently; mutations are
/// serialised by an internal mutex, cheap readers are lock-free atomics.
class ContextShard {
 public:
  enum class State { kActive = 0, kReadOnly = 1, kQuarantined = 2 };

  struct Options {
    /// Shard index, for labels and error messages.
    size_t index = 0;
    /// WAL path; empty = in-memory shard (durability disabled).
    std::string wal_path;
    std::string snapshot_path;
    /// fsync cadence (see ContextWal::Options).
    size_t sync_every = 1;
    /// Snapshot + truncate once the shard's log exceeds this; 0 = never.
    uint64_t compact_threshold_bytes = 4 * 1024 * 1024;
    /// I/O surface; null means io::Env::Default().
    io::Env* env = nullptr;
    /// Per-shard succinctness drift monitor.
    bool monitor_drift = false;
    DriftMonitor::Options drift;
  };

  /// Registry cells the shard reports into, created by the proxy (owned by
  /// its registry). Cells prefixed `shard_` carry a {shard="<i>"} label;
  /// the `agg_` ones are the proxy-wide legacy aggregates.
  struct Instruments {
    obs::Counter* shard_wal_appends = nullptr;
    obs::Counter* shard_wal_fsyncs = nullptr;
    obs::Counter* shard_recovered_records = nullptr;
    obs::Counter* shard_salvage_dropped = nullptr;
    obs::Counter* shard_repairs = nullptr;
    obs::Gauge* shard_quarantined = nullptr;  // 0/1
    obs::Gauge* shard_read_only = nullptr;    // 0/1
    /// Bytes the last salvage truncated off this shard's log (gauge: the
    /// most recent recovery's damage, not a lifetime sum).
    obs::Gauge* shard_salvage_truncated_bytes = nullptr;
    /// Quarantine events attributed to the file that caused them
    /// ({cause="snapshot"} / {cause="wal"}).
    obs::Counter* shard_quarantines_snapshot = nullptr;
    obs::Counter* shard_quarantines_wal = nullptr;
    obs::Counter* agg_records_logged = nullptr;
    obs::Counter* agg_fsyncs = nullptr;
    obs::Counter* agg_compactions = nullptr;
    obs::Counter* agg_records_recovered = nullptr;
    obs::Counter* agg_records_dropped = nullptr;
    obs::Counter* compaction_failures = nullptr;
    obs::Histogram* wal_append_us = nullptr;
    /// Registry whose clock times wal_append_us; null skips the latency.
    const obs::Registry* registry = nullptr;
  };

  /// One context row with its global arrival sequence number.
  struct Row {
    uint64_t seq = 0;
    Instance x;
    Label y = 0;
  };

  ContextShard(std::shared_ptr<const Schema> schema, const Options& options,
               const Instruments& instruments);

  /// Which of `num_shards` shards owns `x` (FNV-1a over the value ids).
  /// Stable across runs and shard-count-independent inputs to the hash, so
  /// a directory written with N shards re-routes cleanly under M (orphan
  /// adoption).
  static size_t ShardFor(const Instance& x, size_t num_shards);

  /// Replays this shard's snapshot + WAL, assigning fresh global sequence
  /// numbers from `seq` in replay order (snapshot rows, then log frames).
  /// Fail-soft: I/O damage quarantines the shard and returns OK; only a
  /// schema clash is a hard error. Rows are schema-validated; invalid ones
  /// are dropped and counted. When anything was replayed or discarded the
  /// shard folds the recovered state into a fresh generation (compaction).
  Status Recover(std::atomic<uint64_t>* seq);

  /// Appends (x, y): WAL first (durable per the sync policy), then the
  /// window, tagged with a sequence number drawn from `seq` under the
  /// shard lock. kUnavailable while quarantined; while read-only, retries
  /// compaction first and only fails if the log still cannot be rewritten.
  /// `x` must already be schema-validated by the proxy boundary.
  Status Record(const Instance& x, Label y, std::atomic<uint64_t>* seq);

  /// Appends copies of the shard's rows to `out` (no ordering guarantee
  /// beyond per-shard sequence order; the caller merges by seq).
  void SnapshotInto(std::vector<Row>* out) const;

  /// Evicts the oldest row; false when the window is empty. The evicted
  /// row stays in the WAL until the next compaction (same policy the
  /// 1-shard proxy always had). When `evicted` is non-null the popped row
  /// is moved into it — the explain cache's delta ring needs the row's
  /// (x, y) to revalidate cached keys against the slide.
  bool PopFront(Row* evicted = nullptr);

  /// Writes the window to the snapshot (with a covers-through marker) and
  /// resets the WAL to a fresh generation. A failure leaves the previous
  /// snapshot + log generation intact and readable.
  Status Compact();

  /// Re-admits a quarantined shard with an empty window and a fresh WAL
  /// generation (the damaged files are removed). kFailedPrecondition when
  /// the shard is not quarantined.
  Status Repair();

  State state() const { return state_.load(std::memory_order_acquire); }
  /// Sequence number of the oldest row; UINT64_MAX when empty.
  uint64_t front_seq() const {
    return front_seq_.load(std::memory_order_acquire);
  }
  size_t window_size() const {
    return window_size_.load(std::memory_order_acquire);
  }
  /// Pairs ever recorded into this shard, including compacted-away ones.
  uint64_t total_recorded() const {
    return total_recorded_.load(std::memory_order_acquire);
  }
  bool DriftAlarmed() const;
  bool wal_poisoned() const;
  /// Why the shard is quarantined; empty while not quarantined.
  std::string quarantine_reason() const;
  /// Bytes the last recovery's salvage truncated off the WAL (0 when the
  /// log came back clean). Sticky across compactions so operators can see
  /// the damage after the shard healed itself.
  uint64_t last_salvage_truncated_bytes() const;
  /// The most recent quarantine's reason and causing file ("snapshot" or
  /// "wal"). Unlike quarantine_reason(), these survive Repair(): they
  /// answer "what happened to this shard" rather than "what is wrong now".
  std::string last_quarantine_reason() const;
  std::string last_quarantine_cause() const;
  size_t index() const { return options_.index; }

  /// Exclusive hold on the shard's mutex, for callers that must freeze
  /// several shards at once (the proxy's published-sequence barrier).
  /// While held, no Record can claim a sequence number in this shard.
  std::unique_lock<std::mutex> AcquireLock() const {
    return std::unique_lock<std::mutex>(mu_);
  }

 private:
  /// Marks the shard quarantined with `reason`, attributed to the damaged
  /// file class `cause` ("snapshot" or "wal"); returns OK (the fail-soft
  /// translation of an unrecoverable error).
  Status QuarantineLocked(const std::string& reason, const char* cause);
  Status RecordLocked(const Instance& x, Label y, std::atomic<uint64_t>* seq);
  Status CompactLocked();
  /// Exports wal_->fsyncs() deltas into the per-shard + aggregate cells.
  void SyncFsyncCountersLocked();
  void SetStateLocked(State state);
  void PushRowLocked(uint64_t seq, const Instance& x, Label y);

  std::shared_ptr<const Schema> schema_;
  Options options_;
  io::Env* env_;
  Instruments ins_;

  mutable std::mutex mu_;
  std::deque<Row> window_;
  std::unique_ptr<io::ContextWal> wal_;  // null for in-memory shards
  std::unique_ptr<DriftMonitor> drift_;
  std::string quarantine_reason_;
  std::string last_quarantine_reason_;
  std::string last_quarantine_cause_;
  uint64_t last_salvage_truncated_bytes_ = 0;
  uint64_t wal_fsyncs_exported_ = 0;

  std::atomic<State> state_{State::kActive};
  std::atomic<uint64_t> front_seq_{UINT64_MAX};
  std::atomic<size_t> window_size_{0};
  std::atomic<uint64_t> total_recorded_{0};
};

}  // namespace cce::serving

#endif  // CCE_SERVING_CONTEXT_SHARD_H_
