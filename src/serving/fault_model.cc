#include "serving/fault_model.h"

#include <algorithm>
#include <string>

namespace cce::serving {

FaultInjectingModel::FaultInjectingModel(const Model* model,
                                         const Options& options,
                                         SleepFn sleep)
    : model_(model),
      options_(options),
      sleep_(std::move(sleep)),
      rng_(options.seed) {}

Result<Label> FaultInjectingModel::Predict(const Instance& x) {
  ++stats_.calls;

  if (options_.fail_forever) {
    ++stats_.transient_failures;
    return Status::Unavailable("injected: backend outage (fail_forever)");
  }

  // Draw the schedule before branching so the random stream consumed per
  // call is fixed — the schedule stays comparable across configurations
  // with the same seed.
  const bool start_fault =
      options_.failure_rate > 0.0 && rng_.Bernoulli(options_.failure_rate);
  const bool fault_transient =
      options_.transient_fraction >= 1.0 ||
      rng_.Bernoulli(std::max(0.0, options_.transient_fraction));
  const bool spike = options_.latency_spike_rate > 0.0 &&
                     rng_.Bernoulli(options_.latency_spike_rate);
  // Drawn after the original three so schedules of pre-existing
  // configurations are unchanged for the same seed.
  const bool start_overload =
      options_.overload_burst_rate > 0.0 &&
      rng_.Bernoulli(options_.overload_burst_rate);

  if (burst_remaining_ == 0 && start_fault) {
    burst_remaining_ = std::max(1, options_.burst_length);
    burst_transient_ = fault_transient;
  }

  if (burst_remaining_ > 0) {
    --burst_remaining_;
    if (burst_transient_) {
      ++stats_.transient_failures;
      return Status::Unavailable("injected: transient fault");
    }
    ++stats_.permanent_failures;
    return Status::Internal("injected: permanent fault");
  }

  if (overload_remaining_ == 0 && start_overload) {
    overload_remaining_ = std::max(1, options_.overload_burst_length);
    ++stats_.overload_bursts;
  }
  if (overload_remaining_ > 0) {
    // Brownout: the call succeeds but crawls — the backend is overloaded,
    // not down, so retries and breakers must NOT fire; only admission
    // control and deadlines help.
    --overload_remaining_;
    ++stats_.overloaded_calls;
    if (sleep_) sleep_(options_.overload_latency);
    ++stats_.successes;
    return model_->Predict(x);
  }

  if (spike) {
    ++stats_.latency_spikes;
    if (sleep_) sleep_(options_.latency_spike);
  }

  ++stats_.successes;
  return model_->Predict(x);
}

}  // namespace cce::serving
