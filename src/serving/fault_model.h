#ifndef CCE_SERVING_FAULT_MODEL_H_
#define CCE_SERVING_FAULT_MODEL_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "common/random.h"
#include "common/status.h"
#include "core/model.h"
#include "core/types.h"
#include "serving/resilience.h"

namespace cce::serving {

/// A ModelEndpoint decorator that injects faults into an otherwise healthy
/// model, so every failure mode the resilience layer must survive is
/// reproducible in tests and benches from a single seed:
///
///   - transient errors (kUnavailable) at a configurable rate,
///   - permanent errors (kInternal, non-retryable) at a configurable split,
///   - correlated failure bursts (one fault knocks out the next k calls),
///   - latency spikes (simulated via an injectable sleep),
///   - hard outages (`fail_forever`, e.g. a dead backend).
///
/// The fault schedule is a pure function of (seed, call sequence): two
/// instances with identical options observe identical schedules, and the
/// schedule does not depend on the instances being predicted.
class FaultInjectingModel : public ModelEndpoint {
 public:
  struct Options {
    /// Per-call probability of starting a fault (or fault burst).
    double failure_rate = 0.0;
    /// Among injected faults, the fraction that are transient
    /// (kUnavailable, retryable); the rest are permanent (kInternal).
    double transient_fraction = 1.0;
    /// A fault affects this many consecutive calls (correlated failures);
    /// 1 = independent faults.
    int burst_length = 1;
    /// Per-call probability of a latency spike on an otherwise
    /// successful call.
    double latency_spike_rate = 0.0;
    /// Duration of an injected latency spike.
    std::chrono::milliseconds latency_spike{20};
    /// Per-call probability of the backend entering an *overload burst*:
    /// the next `overload_burst_length` calls still succeed, but each one
    /// takes `overload_latency` (a brownout, not an outage). This is the
    /// fault that drives the proxy's admission control in stress tests —
    /// a slow backend inflates in-flight work until shedding kicks in.
    double overload_burst_rate = 0.0;
    /// Consecutive slow calls per overload burst.
    int overload_burst_length = 8;
    /// Injected latency of each call inside an overload burst.
    std::chrono::milliseconds overload_latency{50};
    /// Every call fails with kUnavailable: a hard outage.
    bool fail_forever = false;
    /// Seed for the deterministic fault schedule.
    uint64_t seed = 42;
  };

  /// Counters for assertions and observability.
  struct Stats {
    uint64_t calls = 0;
    uint64_t successes = 0;
    uint64_t transient_failures = 0;
    uint64_t permanent_failures = 0;
    uint64_t latency_spikes = 0;
    uint64_t overload_bursts = 0;
    uint64_t overloaded_calls = 0;
  };

  using SleepFn = std::function<void(std::chrono::milliseconds)>;

  /// Wraps `model` (not owned, must outlive this). `sleep` implements the
  /// latency spikes; the default does not actually sleep — it only accounts
  /// the spike in stats — keeping tests fast.
  FaultInjectingModel(const Model* model, const Options& options,
                      SleepFn sleep = nullptr);

  Result<Label> Predict(const Instance& x) override;

  const Stats& stats() const { return stats_; }

  const Options& options() const { return options_; }

 private:
  const Model* model_;
  Options options_;
  SleepFn sleep_;
  Rng rng_;
  Stats stats_;
  /// Remaining calls of the current fault burst (0 = healthy).
  int burst_remaining_ = 0;
  /// Whether the current burst is transient or permanent.
  bool burst_transient_ = true;
  /// Remaining slow (but successful) calls of the current overload burst.
  int overload_remaining_ = 0;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_FAULT_MODEL_H_
