#include "serving/overload.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace cce::serving {

const char* RequestClassName(RequestClass cls) {
  switch (cls) {
    case RequestClass::kPredict:
      return "predict";
    case RequestClass::kRecord:
      return "record";
    case RequestClass::kExplain:
      return "explain";
    case RequestClass::kCounterfactuals:
      return "counterfactuals";
  }
  return "unknown";
}

int64_t ParseRetryAfterMs(const Status& status) {
  static constexpr char kTag[] = "retry_after_ms=";
  const std::string& message = status.message();
  const size_t pos = message.find(kTag);
  if (pos == std::string::npos) return -1;
  const char* digits = message.c_str() + pos + sizeof(kTag) - 1;
  char* end = nullptr;
  const long long value = std::strtoll(digits, &end, 10);
  if (end == digits || value < 0) return -1;
  return static_cast<int64_t>(value);
}

bool CodelDetector::Observe(std::chrono::nanoseconds sojourn,
                            std::chrono::steady_clock::time_point now) {
  if (sojourn <= options_.target) {
    // One good sojourn proves the queue drains: leave shedding mode.
    above_target_ = false;
    shedding_ = false;
    return shedding_;
  }
  if (!above_target_) {
    above_target_ = true;
    first_above_ = now;
  } else if (now - first_above_ >= options_.interval) {
    shedding_ = true;
  }
  return shedding_;
}

AdaptiveConcurrency::AdaptiveConcurrency(const Options& options)
    : options_(options) {
  options_.min = std::max(1, options_.min);
  options_.max = std::max(options_.min, options_.max);
  options_.increase_every = std::max(1, options_.increase_every);
  options_.decrease_factor =
      std::clamp(options_.decrease_factor, 0.05, 0.95);
  limit_ = std::clamp(options_.initial, options_.min, options_.max);
}

void AdaptiveConcurrency::OnCompletion(std::chrono::nanoseconds latency) {
  if (latency > options_.latency_target) {
    fast_streak_ = 0;
    const int cut = std::max(
        options_.min,
        static_cast<int>(std::floor(limit_ * options_.decrease_factor)));
    // A slow completion at the floor keeps the floor; only count real cuts.
    if (cut < limit_) {
      limit_ = cut;
      ++decreases_;
    }
    return;
  }
  if (++fast_streak_ >= options_.increase_every) {
    fast_streak_ = 0;
    if (limit_ < options_.max) {
      ++limit_;
      ++increases_;
    }
  }
}

ExplainCache::ExplainCache(const Options& options, obs::Registry* registry)
    : options_(options) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->GetCounter(
      "cce_cache_hits_total",
      "Explain-cache lookups answered by a fresh enough entry.");
  misses_ = registry->GetCounter(
      "cce_cache_misses_total",
      "Explain-cache lookups that found no servable entry.");
  stale_drops_ = registry->GetCounter(
      "cce_cache_stale_drops_total",
      "Cache entries dropped at lookup because the delta ring no longer "
      "covered their stamp.");
  insertions_ = registry->GetCounter(
      "cce_cache_insertions_total",
      "Relative keys inserted into the explain cache.");
  revalidations_ = registry->GetCounter(
      "cce_cache_revalidations_total",
      "Cache entries re-proven conformant against the current window by a "
      "delta replay.");
  revalidation_failures_ = registry->GetCounter(
      "cce_cache_revalidation_failures_total",
      "Cache entries dropped because a window delta broke their "
      "conformity.");
}

ExplainCache::Stats ExplainCache::stats() const {
  Stats stats;
  stats.hits = hits_->Value();
  stats.misses = misses_->Value();
  stats.stale_drops = stale_drops_->Value();
  stats.insertions = insertions_->Value();
  stats.revalidations = revalidations_->Value();
  stats.revalidation_failures = revalidation_failures_->Value();
  return stats;
}

void ExplainCache::RecordAdd(const Instance& x, Label y) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(delta_mu_);
  deltas_.push_back(Delta{++delta_seq_, /*add=*/true, x, y});
  while (deltas_.size() > options_.revalidation_window) deltas_.pop_front();
}

void ExplainCache::RecordRemove(const Instance& x, Label y) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(delta_mu_);
  deltas_.push_back(Delta{++delta_seq_, /*add=*/false, x, y});
  while (deltas_.size() > options_.revalidation_window) deltas_.pop_front();
}

uint64_t ExplainCache::delta_seq() const {
  std::lock_guard<std::mutex> lock(delta_mu_);
  return delta_seq_;
}

void ExplainCache::Clear() {
  entries_.clear();
  index_.clear();
  std::lock_guard<std::mutex> lock(delta_mu_);
  deltas_.clear();
}

ExplainCache::Freshness ExplainCache::Revalidate(Entry* entry) {
  std::lock_guard<std::mutex> lock(delta_mu_);
  if (entry->stamp == delta_seq_) return Freshness::kFresh;
  // Ring invariant: it holds exactly (delta_seq_ - size, delta_seq_]. A
  // stamp at or before the tail has unobservable deltas — unverifiable.
  if (delta_seq_ - entry->stamp > deltas_.size()) {
    return Freshness::kUncovered;
  }
  uint64_t violators = entry->violators;
  uint64_t rows = entry->window_rows;
  for (const Delta& delta : deltas_) {
    if (delta.seq <= entry->stamp) continue;
    rows += delta.add ? 1 : uint64_t{0} - 1;
    // The delta row moves this key's violator count only if it matches the
    // cached instance on every key feature AND is labelled differently —
    // the definition of a violator surviving the key.
    bool agrees = true;
    for (FeatureId f : entry->result.key) {
      if (delta.x[f] != entry->key.x[f]) {
        agrees = false;
        break;
      }
    }
    if (agrees && delta.y != entry->key.y) {
      violators += delta.add ? 1 : uint64_t{0} - 1;
    }
  }
  const auto tolerated = static_cast<uint64_t>(
      std::floor((1.0 - options_.alpha) * static_cast<double>(rows) + 1e-9));
  if (violators > tolerated) return Freshness::kBroken;
  entry->stamp = delta_seq_;
  entry->violators = violators;
  entry->window_rows = rows;
  entry->result.achieved_alpha =
      rows == 0 ? 1.0
                : 1.0 - static_cast<double>(violators) /
                            static_cast<double>(rows);
  return Freshness::kRevalidated;
}

size_t ExplainCache::CacheKeyHash::operator()(const CacheKey& key) const {
  // FNV-1a over the value ids + label; instances are short (tens of
  // features), so this is cheaper than building a string key.
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  for (ValueId v : key.x) mix(v);
  mix(0x9E3779B97F4A7C15ull ^ key.y);
  return static_cast<size_t>(hash);
}

void ExplainCache::Put(const Instance& x, Label y, uint64_t stamp,
                       size_t window_rows, const KeyResult& key) {
  if (options_.capacity == 0) return;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    // A delta landed between the caller's window snapshot and now: the
    // key may or may not include that row, so its violator bookkeeping
    // cannot be trusted against any stamp. Skip — the next quiet Explain
    // will cache cleanly.
    if (delta_seq_ != stamp) return;
  }
  // achieved_alpha = 1 - violators/|I| exactly (both sides are exact
  // integer counts), so the violator count survives the round trip.
  const auto violators = static_cast<uint64_t>(std::llround(
      (1.0 - key.achieved_alpha) * static_cast<double>(window_rows)));
  CacheKey cache_key{x, y};
  auto found = index_.find(cache_key);
  if (found != index_.end()) {
    found->second->result = key;
    found->second->stamp = stamp;
    found->second->violators = violators;
    found->second->window_rows = window_rows;
    entries_.splice(entries_.begin(), entries_, found->second);
    insertions_->Increment();
    return;
  }
  entries_.push_front(
      Entry{std::move(cache_key), key, stamp, violators, window_rows});
  index_[entries_.front().key] = entries_.begin();
  insertions_->Increment();
  while (entries_.size() > options_.capacity) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
  }
}

std::optional<KeyResult> ExplainCache::Get(const Instance& x, Label y) {
  if (options_.capacity == 0) return std::nullopt;
  auto found = index_.find(CacheKey{x, y});
  if (found == index_.end()) {
    misses_->Increment();
    return std::nullopt;
  }
  Entry& entry = *found->second;
  switch (Revalidate(&entry)) {
    case Freshness::kFresh:
      break;
    case Freshness::kRevalidated:
      revalidations_->Increment();
      break;
    case Freshness::kUncovered:
      entries_.erase(found->second);
      index_.erase(found);
      stale_drops_->Increment();
      misses_->Increment();
      return std::nullopt;
    case Freshness::kBroken:
      // The window slide actually broke this key's conformity: only now
      // does the caller pay for a fresh SRK run.
      entries_.erase(found->second);
      index_.erase(found);
      revalidation_failures_->Increment();
      misses_->Increment();
      return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, found->second);
  hits_->Increment();
  KeyResult result = entry.result;
  result.cached = true;
  return result;
}

OverloadController::OverloadController(const Options& options,
                                       obs::Registry* registry)
    : options_(options),
      clock_(options.clock),
      predict_bucket_(options.predict_bucket, options.clock),
      record_bucket_(options.record_bucket, options.clock),
      explain_bucket_(options.explain_bucket, options.clock),
      codel_(options.codel),
      concurrency_(options.concurrency) {
  if (!clock_) {
    clock_ = [] { return Clock::now(); };
  }
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry = owned_registry_.get();
  }
  static constexpr RequestClass kClasses[] = {
      RequestClass::kPredict, RequestClass::kRecord, RequestClass::kExplain,
      RequestClass::kCounterfactuals};
  for (RequestClass cls : kClasses) {
    admitted_[static_cast<int>(cls)] = registry->GetCounter(
        "cce_admitted_total",
        "Requests admitted by the overload controller, by class.",
        {{"class", RequestClassName(cls)}});
  }
  const auto shed = [registry](const char* cause) {
    return registry->GetCounter(
        "cce_shed_total", "Requests shed by the admission layer, by cause.",
        {{"cause", cause}});
  };
  shed_rate_limited_ = shed("rate_limited");
  shed_queue_full_ = shed("queue_full");
  shed_deadline_unmeetable_ = shed("deadline_unmeetable");
  shed_queue_deadline_ = shed("queue_deadline");
  shed_codel_ = shed("codel");
  queue_waits_ = registry->GetCounter(
      "cce_explain_queue_waits_total",
      "Expensive-class admissions that had to queue for a slot.");
  concurrency_increases_ = registry->GetCounter(
      "cce_concurrency_adjustments_total",
      "AIMD concurrency-limit adjustments, by direction.",
      {{"direction", "up"}});
  concurrency_decreases_ = registry->GetCounter(
      "cce_concurrency_adjustments_total",
      "AIMD concurrency-limit adjustments, by direction.",
      {{"direction", "down"}});
  concurrency_limit_gauge_ = registry->GetGauge(
      "cce_concurrency_limit",
      "Live AIMD limit on in-flight expensive-class requests.");
  concurrency_limit_gauge_->Set(concurrency_.limit());
  in_flight_gauge_ = registry->GetGauge(
      "cce_expensive_in_flight",
      "Expensive-class requests currently holding an admission slot.");
  latency_ewma_gauge_ = registry->GetGauge(
      "cce_explain_latency_ewma_us",
      "EWMA of observed expensive-class service latency, microseconds.");
  queue_wait_us_ = registry->GetHistogram(
      "cce_explain_queue_wait_us",
      "Queueing delay (sojourn) of expensive-class admissions, "
      "microseconds.");
}

Status OverloadController::Shed(const std::string& reason,
                                std::chrono::milliseconds retry_after) {
  const int64_t ms = std::max<int64_t>(1, retry_after.count());
  return Status::ResourceExhausted("overload: " + reason +
                                   "; retry_after_ms=" + std::to_string(ms));
}

double OverloadController::EstimatedTotalUs() const {
  if (!have_latency_) return 0.0;
  const int limit = std::max(1, concurrency_.limit());
  const double queue_ahead =
      in_flight_ >= limit ? static_cast<double>(waiters_ + 1) : 0.0;
  return ewma_latency_us_ * (1.0 + queue_ahead / limit);
}

Status OverloadController::AdmitCheap(RequestClass cls) {
  std::lock_guard<std::mutex> lock(mu_);
  TokenBucket& bucket =
      cls == RequestClass::kPredict ? predict_bucket_ : record_bucket_;
  if (!bucket.TryAcquire()) {
    shed_rate_limited_->Increment();
    return Shed(std::string(RequestClassName(cls)) + " rate limit",
                bucket.RetryAfter());
  }
  admitted_[static_cast<int>(cls)]->Increment();
  return Status::Ok();
}

Result<OverloadController::Permit> OverloadController::AdmitExpensive(
    RequestClass cls, const Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!explain_bucket_.TryAcquire()) {
    shed_rate_limited_->Increment();
    return Shed(std::string(RequestClassName(cls)) + " rate limit",
                explain_bucket_.RetryAfter());
  }

  const Clock::time_point enqueued = clock_();
  const auto estimate_ms = [this] {
    return std::chrono::milliseconds(
        static_cast<int64_t>(EstimatedTotalUs() / 1000.0));
  };

  // Deadline-aware shedding: a request whose budget cannot cover the
  // predicted queue wait + service time would only occupy a slot to miss
  // its deadline anyway — reject it now, while retrying later can work.
  if (options_.shed_unmeetable_deadlines && !deadline.infinite() &&
      have_latency_) {
    const double remaining_us =
        std::chrono::duration<double, std::micro>(deadline.remaining())
            .count();
    if (remaining_us < EstimatedTotalUs()) {
      shed_deadline_unmeetable_->Increment();
      return Shed("deadline below predicted queue+service time",
                  estimate_ms());
    }
  }

  // CoDel verdict from past sojourns: under sustained buildup, shed new
  // arrivals while the standing queue drains.
  if (codel_.shedding() && in_flight_ >= concurrency_.limit()) {
    shed_codel_->Increment();
    return Shed("queue delay above target (CoDel)",
                std::max<std::chrono::milliseconds>(
                    codel_.options().interval, estimate_ms()));
  }

  const auto admit = [&](std::chrono::nanoseconds sojourn) -> Permit {
    ++in_flight_;
    in_flight_gauge_->Set(in_flight_);
    codel_.Observe(sojourn, clock_());
    queue_wait_us_->Observe(
        std::chrono::duration_cast<std::chrono::microseconds>(sojourn)
            .count());
    const bool pressure = waiters_ > 0 || codel_.shedding() ||
                          in_flight_ >= concurrency_.limit();
    admitted_[static_cast<int>(cls)]->Increment();
    return Permit(this, clock_(), pressure, sojourn);
  };

  if (in_flight_ < concurrency_.limit() && waiters_ == 0) {
    return admit(std::chrono::nanoseconds::zero());
  }

  if (waiters_ >= options_.max_queue) {
    shed_queue_full_->Increment();
    return Shed("admission queue full", estimate_ms());
  }

  ++waiters_;
  queue_waits_->Increment();
  const auto slot_available = [this] {
    return in_flight_ < concurrency_.limit();
  };
  bool got_slot;
  if (deadline.infinite()) {
    slot_free_.wait(lock, slot_available);
    got_slot = true;
  } else {
    got_slot = slot_free_.wait_until(lock, deadline.expiry(), slot_available);
  }
  --waiters_;
  const std::chrono::nanoseconds sojourn = clock_() - enqueued;
  if (!got_slot) {
    // The budget died in the queue: that is a deadline miss, not a
    // retryable rejection — the caller's remaining budget is zero.
    shed_queue_deadline_->Increment();
    codel_.Observe(sojourn, clock_());
    return Status::DeadlineExceeded(
        "deadline expired while queued for an explain slot");
  }
  return admit(sojourn);
}

void OverloadController::OnCompletionLocked(
    std::chrono::nanoseconds latency) {
  const int limit_before = concurrency_.limit();
  concurrency_.OnCompletion(latency);
  const int limit_after = concurrency_.limit();
  if (limit_after > limit_before) {
    concurrency_increases_->Increment();
  } else if (limit_after < limit_before) {
    concurrency_decreases_->Increment();
  }
  if (limit_after != limit_before) {
    concurrency_limit_gauge_->Set(limit_after);
  }
}

void OverloadController::Release(Clock::time_point admitted_at) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::chrono::nanoseconds latency = clock_() - admitted_at;
    --in_flight_;
    in_flight_gauge_->Set(in_flight_);
    OnCompletionLocked(latency);
    const double latency_us =
        std::chrono::duration<double, std::micro>(latency).count();
    if (!have_latency_) {
      ewma_latency_us_ = latency_us;
      have_latency_ = true;
    } else {
      ewma_latency_us_ += options_.latency_ewma_alpha *
                          (latency_us - ewma_latency_us_);
    }
    latency_ewma_gauge_->Set(static_cast<int64_t>(ewma_latency_us_));
  }
  // The limit may have moved in either direction: wake every waiter to
  // re-evaluate rather than guessing how many slots opened.
  slot_free_.notify_all();
}

bool OverloadController::UnderPressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return codel_.shedding() || waiters_ > 0 ||
         in_flight_ >= concurrency_.limit();
}

OverloadController::Stats OverloadController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.admitted_predicts =
      admitted_[static_cast<int>(RequestClass::kPredict)]->Value();
  stats.admitted_records =
      admitted_[static_cast<int>(RequestClass::kRecord)]->Value();
  stats.admitted_explains =
      admitted_[static_cast<int>(RequestClass::kExplain)]->Value();
  stats.admitted_counterfactuals =
      admitted_[static_cast<int>(RequestClass::kCounterfactuals)]->Value();
  stats.shed_rate_limited = shed_rate_limited_->Value();
  stats.shed_queue_full = shed_queue_full_->Value();
  stats.shed_deadline_unmeetable = shed_deadline_unmeetable_->Value();
  stats.shed_queue_deadline = shed_queue_deadline_->Value();
  stats.shed_codel = shed_codel_->Value();
  stats.queue_waits = queue_waits_->Value();
  stats.concurrency_limit = concurrency_.limit();
  stats.in_flight = in_flight_;
  stats.concurrency_increases = concurrency_.increases();
  stats.concurrency_decreases = concurrency_.decreases();
  stats.explain_latency_ewma_us = static_cast<int64_t>(ewma_latency_us_);
  return stats;
}

}  // namespace cce::serving
