#include "serving/overload.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace cce::serving {

const char* RequestClassName(RequestClass cls) {
  switch (cls) {
    case RequestClass::kPredict:
      return "predict";
    case RequestClass::kRecord:
      return "record";
    case RequestClass::kExplain:
      return "explain";
    case RequestClass::kCounterfactuals:
      return "counterfactuals";
  }
  return "unknown";
}

int64_t ParseRetryAfterMs(const Status& status) {
  static constexpr char kTag[] = "retry_after_ms=";
  const std::string& message = status.message();
  const size_t pos = message.find(kTag);
  if (pos == std::string::npos) return -1;
  const char* digits = message.c_str() + pos + sizeof(kTag) - 1;
  char* end = nullptr;
  const long long value = std::strtoll(digits, &end, 10);
  if (end == digits || value < 0) return -1;
  return static_cast<int64_t>(value);
}

bool CodelDetector::Observe(std::chrono::nanoseconds sojourn,
                            std::chrono::steady_clock::time_point now) {
  if (sojourn <= options_.target) {
    // One good sojourn proves the queue drains: leave shedding mode.
    above_target_ = false;
    shedding_ = false;
    return shedding_;
  }
  if (!above_target_) {
    above_target_ = true;
    first_above_ = now;
  } else if (now - first_above_ >= options_.interval) {
    shedding_ = true;
  }
  return shedding_;
}

AdaptiveConcurrency::AdaptiveConcurrency(const Options& options)
    : options_(options) {
  options_.min = std::max(1, options_.min);
  options_.max = std::max(options_.min, options_.max);
  options_.increase_every = std::max(1, options_.increase_every);
  options_.decrease_factor =
      std::clamp(options_.decrease_factor, 0.05, 0.95);
  limit_ = std::clamp(options_.initial, options_.min, options_.max);
}

void AdaptiveConcurrency::OnCompletion(std::chrono::nanoseconds latency) {
  if (latency > options_.latency_target) {
    fast_streak_ = 0;
    const int cut = std::max(
        options_.min,
        static_cast<int>(std::floor(limit_ * options_.decrease_factor)));
    // A slow completion at the floor keeps the floor; only count real cuts.
    if (cut < limit_) {
      limit_ = cut;
      ++decreases_;
    }
    return;
  }
  if (++fast_streak_ >= options_.increase_every) {
    fast_streak_ = 0;
    if (limit_ < options_.max) {
      ++limit_;
      ++increases_;
    }
  }
}

size_t ExplainCache::CacheKeyHash::operator()(const CacheKey& key) const {
  // FNV-1a over the value ids + label; instances are short (tens of
  // features), so this is cheaper than building a string key.
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  for (ValueId v : key.x) mix(v);
  mix(0x9E3779B97F4A7C15ull ^ key.y);
  return static_cast<size_t>(hash);
}

void ExplainCache::Put(const Instance& x, Label y, uint64_t generation,
                       const KeyResult& key) {
  if (options_.capacity == 0) return;
  CacheKey cache_key{x, y};
  auto found = index_.find(cache_key);
  if (found != index_.end()) {
    found->second->result = key;
    found->second->generation = generation;
    entries_.splice(entries_.begin(), entries_, found->second);
    ++stats_.insertions;
    return;
  }
  entries_.push_front(Entry{std::move(cache_key), key, generation});
  index_[entries_.front().key] = entries_.begin();
  ++stats_.insertions;
  while (entries_.size() > options_.capacity) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
  }
}

std::optional<KeyResult> ExplainCache::Get(const Instance& x, Label y,
                                           uint64_t generation) {
  if (options_.capacity == 0) return std::nullopt;
  auto found = index_.find(CacheKey{x, y});
  if (found == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const Entry& entry = *found->second;
  if (generation < entry.generation ||
      generation - entry.generation > options_.max_generation_lag) {
    // Too stale to serve (or from a rolled-back generation): drop so the
    // slot is free for a fresh key.
    entries_.erase(found->second);
    index_.erase(found);
    ++stats_.stale_drops;
    ++stats_.misses;
    return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, found->second);
  ++stats_.hits;
  KeyResult result = entry.result;
  result.cached = true;
  return result;
}

OverloadController::OverloadController(const Options& options)
    : options_(options),
      clock_(options.clock),
      predict_bucket_(options.predict_bucket, options.clock),
      record_bucket_(options.record_bucket, options.clock),
      explain_bucket_(options.explain_bucket, options.clock),
      codel_(options.codel),
      concurrency_(options.concurrency) {
  if (!clock_) {
    clock_ = [] { return Clock::now(); };
  }
}

Status OverloadController::Shed(const std::string& reason,
                                std::chrono::milliseconds retry_after) {
  const int64_t ms = std::max<int64_t>(1, retry_after.count());
  return Status::ResourceExhausted("overload: " + reason +
                                   "; retry_after_ms=" + std::to_string(ms));
}

double OverloadController::EstimatedTotalUs() const {
  if (!have_latency_) return 0.0;
  const int limit = std::max(1, concurrency_.limit());
  const double queue_ahead =
      in_flight_ >= limit ? static_cast<double>(waiters_ + 1) : 0.0;
  return ewma_latency_us_ * (1.0 + queue_ahead / limit);
}

Status OverloadController::AdmitCheap(RequestClass cls) {
  std::lock_guard<std::mutex> lock(mu_);
  TokenBucket& bucket =
      cls == RequestClass::kPredict ? predict_bucket_ : record_bucket_;
  if (!bucket.TryAcquire()) {
    ++stats_.shed_rate_limited;
    return Shed(std::string(RequestClassName(cls)) + " rate limit",
                bucket.RetryAfter());
  }
  if (cls == RequestClass::kPredict) {
    ++stats_.admitted_predicts;
  } else {
    ++stats_.admitted_records;
  }
  return Status::Ok();
}

Result<OverloadController::Permit> OverloadController::AdmitExpensive(
    RequestClass cls, const Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!explain_bucket_.TryAcquire()) {
    ++stats_.shed_rate_limited;
    return Shed(std::string(RequestClassName(cls)) + " rate limit",
                explain_bucket_.RetryAfter());
  }

  const Clock::time_point enqueued = clock_();
  const auto estimate_ms = [this] {
    return std::chrono::milliseconds(
        static_cast<int64_t>(EstimatedTotalUs() / 1000.0));
  };

  // Deadline-aware shedding: a request whose budget cannot cover the
  // predicted queue wait + service time would only occupy a slot to miss
  // its deadline anyway — reject it now, while retrying later can work.
  if (options_.shed_unmeetable_deadlines && !deadline.infinite() &&
      have_latency_) {
    const double remaining_us =
        std::chrono::duration<double, std::micro>(deadline.remaining())
            .count();
    if (remaining_us < EstimatedTotalUs()) {
      ++stats_.shed_deadline_unmeetable;
      return Shed("deadline below predicted queue+service time",
                  estimate_ms());
    }
  }

  // CoDel verdict from past sojourns: under sustained buildup, shed new
  // arrivals while the standing queue drains.
  if (codel_.shedding() && in_flight_ >= concurrency_.limit()) {
    ++stats_.shed_codel;
    return Shed("queue delay above target (CoDel)",
                std::max<std::chrono::milliseconds>(
                    codel_.options().interval, estimate_ms()));
  }

  const auto admit = [&](std::chrono::nanoseconds sojourn) -> Permit {
    ++in_flight_;
    codel_.Observe(sojourn, clock_());
    const bool pressure = waiters_ > 0 || codel_.shedding() ||
                          in_flight_ >= concurrency_.limit();
    if (cls == RequestClass::kExplain) {
      ++stats_.admitted_explains;
    } else {
      ++stats_.admitted_counterfactuals;
    }
    return Permit(this, clock_(), pressure, sojourn);
  };

  if (in_flight_ < concurrency_.limit() && waiters_ == 0) {
    return admit(std::chrono::nanoseconds::zero());
  }

  if (waiters_ >= options_.max_queue) {
    ++stats_.shed_queue_full;
    return Shed("admission queue full", estimate_ms());
  }

  ++waiters_;
  ++stats_.queue_waits;
  const auto slot_available = [this] {
    return in_flight_ < concurrency_.limit();
  };
  bool got_slot;
  if (deadline.infinite()) {
    slot_free_.wait(lock, slot_available);
    got_slot = true;
  } else {
    got_slot = slot_free_.wait_until(lock, deadline.expiry(), slot_available);
  }
  --waiters_;
  const std::chrono::nanoseconds sojourn = clock_() - enqueued;
  if (!got_slot) {
    // The budget died in the queue: that is a deadline miss, not a
    // retryable rejection — the caller's remaining budget is zero.
    ++stats_.shed_queue_deadline;
    codel_.Observe(sojourn, clock_());
    return Status::DeadlineExceeded(
        "deadline expired while queued for an explain slot");
  }
  return admit(sojourn);
}

void OverloadController::Release(Clock::time_point admitted_at) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::chrono::nanoseconds latency = clock_() - admitted_at;
    --in_flight_;
    concurrency_.OnCompletion(latency);
    const double latency_us =
        std::chrono::duration<double, std::micro>(latency).count();
    if (!have_latency_) {
      ewma_latency_us_ = latency_us;
      have_latency_ = true;
    } else {
      ewma_latency_us_ += options_.latency_ewma_alpha *
                          (latency_us - ewma_latency_us_);
    }
  }
  // The limit may have moved in either direction: wake every waiter to
  // re-evaluate rather than guessing how many slots opened.
  slot_free_.notify_all();
}

bool OverloadController::UnderPressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return codel_.shedding() || waiters_ > 0 ||
         in_flight_ >= concurrency_.limit();
}

OverloadController::Stats OverloadController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.concurrency_limit = concurrency_.limit();
  stats.in_flight = in_flight_;
  stats.concurrency_increases = concurrency_.increases();
  stats.concurrency_decreases = concurrency_.decreases();
  stats.explain_latency_ewma_us = static_cast<int64_t>(ewma_latency_us_);
  return stats;
}

}  // namespace cce::serving
