#ifndef CCE_SERVING_OVERLOAD_H_
#define CCE_SERVING_OVERLOAD_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/deadline.h"
#include "common/status.h"
#include "common/token_bucket.h"
#include "core/key_result.h"
#include "core/types.h"
#include "obs/metrics.h"

namespace cce::serving {

/// Admission class of a proxy request. Predict and Record are cheap and
/// latency-critical — they must stay fast even when the proxy is drowning
/// in explanation work. Explain and Counterfactuals run combinatorial key
/// searches whose cost is highly skewed across instances, so they are the
/// sheddable classes: rate-limited, concurrency-bounded and queued.
enum class RequestClass { kPredict, kRecord, kExplain, kCounterfactuals };

const char* RequestClassName(RequestClass cls);

/// Parses the "retry_after_ms=N" hint the admission layer embeds in every
/// kResourceExhausted shed; -1 when the status carries no hint.
int64_t ParseRetryAfterMs(const Status& status);

/// CoDel-style persistent-queue-delay detector (Nichols & Jacobson): a
/// queue is only *bad* when its delay stays above `target` for a full
/// `interval` — transient bursts that drain quickly are healthy and must
/// not trigger shedding. The admission layer feeds it the queueing delay
/// (sojourn) of each admitted request; once sustained buildup is detected
/// it sheds new arrivals until a delay back under target is observed.
///
/// Deterministic state machine over (sojourn, now) observations; time is
/// supplied by the caller, so tests drive it with a manual clock.
class CodelDetector {
 public:
  struct Options {
    /// Acceptable standing queue delay.
    std::chrono::milliseconds target{5};
    /// How long the delay must stay above target before shedding starts.
    std::chrono::milliseconds interval{100};
  };

  explicit CodelDetector(const Options& options) : options_(options) {}

  /// Observes one admitted request's queueing delay at time `now`.
  /// Returns the (possibly updated) shedding state.
  bool Observe(std::chrono::nanoseconds sojourn,
               std::chrono::steady_clock::time_point now);

  bool shedding() const { return shedding_; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  bool shedding_ = false;
  bool above_target_ = false;
  std::chrono::steady_clock::time_point first_above_{};
};

/// Gradient-free adaptive concurrency limit for the expensive classes,
/// AIMD on observed completion latency against a target (the scheme of
/// TCP congestion control and Netflix's concurrency-limits): a completion
/// under target is additive increase (+1 after every `increase_every`
/// fast completions), one over target is multiplicative decrease. The
/// limit therefore tracks the largest parallelism the machine sustains
/// while keeping individual searches responsive.
///
/// Pure function of the completion sequence — no randomness — so tests
/// replaying the same latencies always see the same limits.
class AdaptiveConcurrency {
 public:
  struct Options {
    int initial = 4;
    int min = 1;
    int max = 64;
    /// Completion latency above which the limit is cut.
    std::chrono::milliseconds latency_target{100};
    /// Multiplicative decrease factor in (0, 1).
    double decrease_factor = 0.5;
    /// Fast completions required per +1 additive increase.
    int increase_every = 4;
  };

  explicit AdaptiveConcurrency(const Options& options);

  /// Feeds one completion's observed latency into the controller.
  void OnCompletion(std::chrono::nanoseconds latency);

  int limit() const { return limit_; }
  uint64_t increases() const { return increases_; }
  uint64_t decreases() const { return decreases_; }

 private:
  Options options_;
  int limit_;
  int fast_streak_ = 0;
  uint64_t increases_ = 0;
  uint64_t decreases_ = 0;
};

/// Small LRU cache of recently computed relative keys, keyed by the
/// (discretized instance, label) pair. The cached rung of the degradation
/// ladder: under pressure an identical instance is answered from here — a
/// real, recently minimal key — before the proxy falls back to a padded
/// degraded key or sheds.
///
/// Entries are *generation-fresh*, not bounded-stale: every window change
/// (row recorded, row evicted) is appended to a bounded delta ring, and a
/// lookup replays the deltas the entry has not yet seen. A delta row
/// touches an entry only when it agrees with the cached instance on every
/// key feature; with a different label it moves the entry's violator
/// count. The entry is served — with a refreshed achieved_alpha — while
/// its key stays alpha-conformant against the *current* window, and is
/// dropped the moment conformity actually broke (the caller re-runs SRK).
/// Entries whose stamp the ring no longer covers are unverifiable and
/// dropped on lookup.
///
/// The LRU/index state is not thread-safe (the proxy uses it under its own
/// mutex); the delta ring has an internal mutex ordered strictly after
/// every proxy lock, so Record-path delta appends need no proxy-wide lock.
/// Counters live in a cce::obs registry (the proxy's, when provided) so
/// HealthSnapshot and the exposition endpoints read the same cells —
/// docs/metrics.md.
class ExplainCache {
 public:
  struct Options {
    /// Entry capacity; 0 disables the cache entirely.
    size_t capacity = 128;
    /// Window-change deltas (records + evictions) retained for
    /// revalidation. An entry stamped before the ring's tail cannot be
    /// proven fresh and is dropped on lookup.
    size_t revalidation_window = 1024;
    /// Conformity bound entries are revalidated against (the proxy wires
    /// its read-path alpha here).
    double alpha = 1.0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Lookups that found an entry the delta ring no longer covers
    /// (entry dropped unverifiable).
    uint64_t stale_drops = 0;
    uint64_t insertions = 0;
    /// Entries re-proven conformant against the current window by a
    /// delta replay.
    uint64_t revalidations = 0;
    /// Entries dropped because a window delta broke their conformity.
    uint64_t revalidation_failures = 0;
  };

  /// `registry` receives the cache's counters; null creates a private one.
  explicit ExplainCache(const Options& options,
                        obs::Registry* registry = nullptr);

  /// Appends one recorded row to the delta ring. Thread-safe.
  void RecordAdd(const Instance& x, Label y);

  /// Appends one evicted row to the delta ring. Thread-safe.
  void RecordRemove(const Instance& x, Label y);

  /// Sequence number of the newest delta (0 before any). Thread-safe. The
  /// proxy reads this *before* snapshotting the window; Put accepts the
  /// entry only if no delta landed in between, so an entry's violator
  /// bookkeeping is always exact with respect to its stamp.
  uint64_t delta_seq() const;

  /// Caches `key` for (x, y), computed against a window of `window_rows`
  /// rows as of delta `stamp`, evicting the least-recently-used entry at
  /// capacity. Dropped silently when deltas advanced past `stamp` (the
  /// key's window membership would be ambiguous).
  void Put(const Instance& x, Label y, uint64_t stamp, size_t window_rows,
           const KeyResult& key);

  /// Cached key for (x, y), revalidated against every delta since its
  /// stamp and marked `cached`; nullopt on miss, broken conformity, or an
  /// uncoverable stamp.
  std::optional<KeyResult> Get(const Instance& x, Label y);

  /// Drops every entry and the delta ring (window rebuilt out-of-band,
  /// e.g. shard repair: deltas were never observed, so nothing cached can
  /// be proven fresh).
  void Clear();

  /// Snapshot assembled from the registry counters (the single source).
  Stats stats() const;
  size_t size() const { return entries_.size(); }

 private:
  struct CacheKey {
    Instance x;
    Label y;
    bool operator==(const CacheKey& other) const {
      return y == other.y && x == other.x;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const;
  };
  struct Entry {
    CacheKey key;
    KeyResult result;
    /// Newest delta folded into this entry's bookkeeping.
    uint64_t stamp;
    /// Rows agreeing with x on every key feature but labelled != y, and
    /// the window size, both as of `stamp` — exactly what conformity
    /// needs: conformant iff violators <= floor((1-alpha)*window_rows).
    uint64_t violators;
    uint64_t window_rows;
  };
  struct Delta {
    uint64_t seq;
    bool add;  // true = recorded row, false = evicted row
    Instance x;
    Label y;
  };
  enum class Freshness { kFresh, kRevalidated, kUncovered, kBroken };

  /// Replays the deltas since entry->stamp (under delta_mu_) and either
  /// advances the entry's bookkeeping or reports why it cannot be served.
  Freshness Revalidate(Entry* entry);

  Options options_;
  /// Front = most recently used.
  std::list<Entry> entries_;
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  /// Fallback registry when the caller supplied none.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* stale_drops_;
  obs::Counter* insertions_;
  obs::Counter* revalidations_;
  obs::Counter* revalidation_failures_;

  /// Guards the ring and delta_seq_ only; ordered after every proxy lock
  /// and never held while calling out.
  mutable std::mutex delta_mu_;
  /// Invariant: holds exactly the deltas (delta_seq_ - size, delta_seq_].
  std::deque<Delta> deltas_;
  uint64_t delta_seq_ = 0;
};

/// The per-class admission layer in front of every public proxy entry
/// point (DESIGN.md §8). Three mechanisms compose:
///
///   1. per-class token buckets — sustained rate + burst budget per class,
///      so a flood of Explains cannot starve Predict of admission;
///   2. a bounded, deadline-aware admission queue for the expensive
///      classes — arrivals whose deadline cannot cover the predicted
///      queue wait + service time are shed immediately, sustained queue
///      buildup sheds via the CoDel detector, and a full queue sheds with
///      a computed retry-after;
///   3. an adaptive (AIMD) concurrency limit bounding in-flight key
///      searches, so explanation work degrades gracefully instead of
///      oversubscribing every core.
///
/// Every shed is kResourceExhausted with a "retry_after_ms=N" hint in the
/// message (ParseRetryAfterMs). Thread-safe; the expensive-class admission
/// blocks (bounded by the caller's deadline) waiting for a slot.
class OverloadController {
 public:
  using Clock = std::chrono::steady_clock;
  using ClockFn = std::function<Clock::time_point()>;

  struct Options {
    /// Master switch, read by the proxy: when false the proxy does not
    /// construct a controller and every request is admitted unchecked
    /// (the pre-admission behaviour).
    bool enabled = false;

    /// Per-class token buckets. Default refill 0 = unlimited.
    TokenBucket::Options predict_bucket;
    TokenBucket::Options record_bucket;
    /// Shared by Explain and Counterfactuals (one expensive-work budget).
    TokenBucket::Options explain_bucket;

    /// Expensive-class requests allowed to wait for a slot; arrivals
    /// beyond this are shed.
    size_t max_queue = 32;

    CodelDetector::Options codel;
    AdaptiveConcurrency::Options concurrency;

    /// Shed an expensive arrival when its deadline is smaller than the
    /// EWMA-predicted queue wait + service time (it would only burn a
    /// slot to miss anyway).
    bool shed_unmeetable_deadlines = true;
    /// Smoothing of the Explain service-latency estimate.
    double latency_ewma_alpha = 0.2;

    /// Injectable clock for sojourn/latency measurement (tests).
    ClockFn clock;
  };

  struct Stats {
    uint64_t admitted_predicts = 0;
    uint64_t admitted_records = 0;
    uint64_t admitted_explains = 0;
    uint64_t admitted_counterfactuals = 0;
    /// Sheds by cause, all reported as kResourceExhausted + retry-after
    /// (except queue-deadline expiry, which is kDeadlineExceeded: that
    /// budget is already spent).
    uint64_t shed_rate_limited = 0;
    uint64_t shed_queue_full = 0;
    uint64_t shed_deadline_unmeetable = 0;
    uint64_t shed_queue_deadline = 0;
    uint64_t shed_codel = 0;
    /// Expensive admissions that had to queue for a slot.
    uint64_t queue_waits = 0;
    int concurrency_limit = 0;
    int in_flight = 0;
    uint64_t concurrency_increases = 0;
    uint64_t concurrency_decreases = 0;
    /// EWMA of observed expensive-class service latency.
    int64_t explain_latency_ewma_us = 0;
  };

  /// Move-only admission slot for an expensive request; destruction
  /// releases the slot and feeds the observed service latency into the
  /// AIMD limiter.
  class Permit {
   public:
    Permit(Permit&& other) noexcept { *this = std::move(other); }
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        ReleaseNow();
        controller_ = other.controller_;
        admitted_at_ = other.admitted_at_;
        pressure_ = other.pressure_;
        queue_wait_ = other.queue_wait_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    ~Permit() { ReleaseNow(); }

    /// True when the request was admitted under load (had to queue, the
    /// limiter is saturated, or CoDel flagged sustained buildup): the
    /// caller should prefer a cheaper rung of the degradation ladder.
    bool under_pressure() const { return pressure_; }

    std::chrono::nanoseconds queue_wait() const { return queue_wait_; }

   private:
    friend class OverloadController;
    Permit(OverloadController* controller, Clock::time_point admitted_at,
           bool pressure, std::chrono::nanoseconds queue_wait)
        : controller_(controller),
          admitted_at_(admitted_at),
          pressure_(pressure),
          queue_wait_(queue_wait) {}

    void ReleaseNow() {
      if (controller_ != nullptr) controller_->Release(admitted_at_);
      controller_ = nullptr;
    }

    OverloadController* controller_ = nullptr;
    Clock::time_point admitted_at_{};
    bool pressure_ = false;
    std::chrono::nanoseconds queue_wait_{0};
  };

  /// `registry` receives the admission counters, gauges and the queue-wait
  /// histogram (docs/metrics.md); null creates a private registry. Stats and
  /// HealthSnapshot are assembled from those cells — there is no parallel
  /// set of ad-hoc counters.
  explicit OverloadController(const Options& options,
                              obs::Registry* registry = nullptr);

  /// Token-bucket-only admission for the cheap, latency-critical classes
  /// (kPredict / kRecord). Never blocks.
  Status AdmitCheap(RequestClass cls);

  /// Full admission for the expensive classes (kExplain /
  /// kCounterfactuals): token bucket, deadline feasibility, CoDel state,
  /// then a bounded wait for a concurrency slot. Blocks at most until
  /// `deadline`.
  Result<Permit> AdmitExpensive(RequestClass cls, const Deadline& deadline);

  /// True while the expensive path is saturated (slots full or CoDel
  /// shedding) — the proxy's cue to prefer cached answers.
  bool UnderPressure() const;

  Stats stats() const;

 private:
  friend class Permit;

  /// Releases one expensive slot; `admitted_at` dates the service start.
  void Release(Clock::time_point admitted_at);

  /// kResourceExhausted carrying the machine-readable retry-after hint.
  static Status Shed(const std::string& reason,
                     std::chrono::milliseconds retry_after);

  /// Predicted wait+service budget for one more queued request, in µs;
  /// caller holds mu_.
  double EstimatedTotalUs() const;

  /// Feeds the AIMD controller one completion and mirrors the resulting
  /// limit (and any adjustment) into the registry; caller holds mu_.
  void OnCompletionLocked(std::chrono::nanoseconds latency);

  Options options_;
  ClockFn clock_;

  /// Fallback registry when the caller supplied none.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Counter* admitted_[4];  // indexed by RequestClass
  obs::Counter* shed_rate_limited_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_deadline_unmeetable_;
  obs::Counter* shed_queue_deadline_;
  obs::Counter* shed_codel_;
  obs::Counter* queue_waits_;
  obs::Counter* concurrency_increases_;
  obs::Counter* concurrency_decreases_;
  obs::Gauge* concurrency_limit_gauge_;
  obs::Gauge* in_flight_gauge_;
  obs::Gauge* latency_ewma_gauge_;
  obs::Histogram* queue_wait_us_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  TokenBucket predict_bucket_;
  TokenBucket record_bucket_;
  TokenBucket explain_bucket_;
  CodelDetector codel_;
  AdaptiveConcurrency concurrency_;
  int in_flight_ = 0;
  size_t waiters_ = 0;
  double ewma_latency_us_ = 0.0;
  bool have_latency_ = false;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_OVERLOAD_H_
